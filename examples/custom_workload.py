#!/usr/bin/env python3
"""Build a custom task-parallel application against the public API.

This example shows the programmer-facing surface of the library:

1. describe a workload as tasks with ``in``/``out``/``inout`` pointer
   annotations (a blocked map/reduce pipeline with a stencil exchange),
2. check its dependence structure (critical path, ideal speedup),
3. run it on the runtime of your choice and inspect scheduling statistics,
   including the custom-instruction counts of the Picos Delegates.

Run with::

    python examples/custom_workload.py
"""

from __future__ import annotations

from repro import PhentosRuntime, SerialRuntime, SimConfig, Task, TaskProgram
from repro.eval import format_table
from repro.runtime.task import in_dep, inout_dep, out_dep

#: Modelled base addresses for the pipeline's blocks.
INPUT_BASE = 0x1000_0000
STAGE_BASE = 0x2000_0000
ACCUM_ADDR = 0x3000_0000


def build_pipeline(num_blocks: int = 24, map_cycles: int = 6_000,
                   stencil_cycles: int = 4_000,
                   reduce_cycles: int = 1_500) -> TaskProgram:
    """A three-stage pipeline: map each block, exchange with neighbours,
    then reduce everything into one accumulator."""
    tasks = []
    index = 0
    # Stage 1: independent map over every input block.
    for block in range(num_blocks):
        tasks.append(Task(
            index=index, payload_cycles=map_cycles,
            dependences=(in_dep(INPUT_BASE + 4096 * block),
                         out_dep(STAGE_BASE + 4096 * block)),
            name=f"map_{block}",
        ))
        index += 1
    # Stage 2: stencil exchange — each block reads its neighbours' outputs.
    for block in range(num_blocks):
        deps = [inout_dep(STAGE_BASE + 4096 * block)]
        if block > 0:
            deps.append(in_dep(STAGE_BASE + 4096 * (block - 1)))
        if block < num_blocks - 1:
            deps.append(in_dep(STAGE_BASE + 4096 * (block + 1)))
        tasks.append(Task(index=index, payload_cycles=stencil_cycles,
                          dependences=tuple(deps), name=f"stencil_{block}"))
        index += 1
    # Stage 3: reduction chain into a single accumulator.
    for block in range(num_blocks):
        tasks.append(Task(
            index=index, payload_cycles=reduce_cycles,
            dependences=(in_dep(STAGE_BASE + 4096 * block),
                         inout_dep(ACCUM_ADDR)),
            name=f"reduce_{block}",
        ))
        index += 1
    return TaskProgram(name="map-stencil-reduce", tasks=tasks)


def main() -> None:
    config = SimConfig()
    program = build_pipeline()
    print(f"Program: {program.name}")
    print(f"  tasks             : {program.num_tasks}")
    print(f"  serial work       : {program.serial_cycles} cycles")
    print(f"  critical path     : {program.critical_path_cycles()} cycles")
    print(f"  ideal speedup (8c): {program.ideal_speedup(8):.2f}x\n")

    serial = SerialRuntime(config).run(program)
    phentos = PhentosRuntime(config).run(program)
    print(format_table(
        ["metric", "serial", "phentos (8 cores)"],
        [
            ["elapsed cycles", serial.elapsed_cycles, phentos.elapsed_cycles],
            ["speedup vs serial", "1.00x",
             f"{serial.elapsed_cycles / phentos.elapsed_cycles:.2f}x"],
            ["core utilisation", "100%", f"{phentos.utilization * 100:.0f}%"],
        ],
    ))

    print("\nPicos Delegate instruction counts (summed over the 8 cores):")
    interesting = ["rocc_submission_request", "rocc_submit_three_packets",
                   "rocc_ready_task_request", "rocc_fetch_sw_id",
                   "rocc_fetch_picos_id", "rocc_retire_task"]
    rows = []
    for key in interesting:
        total = sum(value for name, value in phentos.stats.items()
                    if name.endswith(key))
        rows.append([key.replace("rocc_", "").replace("_", " "), int(total)])
    print(format_table(["custom instruction", "executed"], rows))


if __name__ == "__main__":
    main()
