#!/usr/bin/env python3
"""Register a third-party workload and run it through the Study API.

This example proves the drop-in extension path end to end, with **no
edits to the library**:

1. ``@register_workload`` registers a fibonacci task graph — the classic
   recursive call tree, one task per call, children feeding parents
   through ``in``/``out`` pointer annotations — under the name
   ``fibonacci``,
2. :class:`repro.api.Study` sweeps it across the registered runtimes and
   returns a typed :class:`~repro.api.StudyResult`,
3. the same workload is immediately runnable from the command line
   (``--plugin`` imports this file into a fresh CLI process)::

       python -m repro run figure9 --workload fibonacci \
           --plugin examples/custom_workload.py
       python -m repro workloads --tag example \
           --plugin examples/custom_workload.py

Run with::

    PYTHONPATH=src python examples/custom_workload.py
"""

from __future__ import annotations

from repro import SimConfig, Study
from repro.eval import benchmarks_report
from repro.registry import register_workload, workload
from repro.runtime.task import Task, TaskProgram, in_dep, out_dep

#: Modelled base address of the per-call result slots.
RESULT_BASE = 0x6000_0000
_SLOT_STRIDE = 64


@register_workload(
    "fibonacci",
    tags=("example", "recursive", "irregular"),
    defaults={"depth": 12, "task_cycles": 2_000},
    description="Naive recursive fibonacci call tree, one task per call",
)
def fibonacci_program(*, depth: int, task_cycles: int) -> TaskProgram:
    """The fib(depth) call tree as a task DAG.

    Every call becomes one task writing its result slot; an internal call
    additionally reads the slots of its two children, so the runtime
    discovers the reduction tree through dependences alone — no barriers.
    """
    if not 0 <= depth <= 18:
        raise ValueError("depth must be between 0 and 18")
    tasks = []

    def emit(n: int) -> int:
        """Emit the subtree computing fib(n); return its result address."""
        slot = RESULT_BASE + len(tasks) * _SLOT_STRIDE
        if n < 2:
            tasks.append(Task(index=len(tasks), payload_cycles=task_cycles,
                              dependences=(out_dep(slot),),
                              name=f"fib_leaf_{n}_{len(tasks)}"))
            return slot
        left = emit(n - 1)
        right = emit(n - 2)
        slot = RESULT_BASE + len(tasks) * _SLOT_STRIDE
        tasks.append(Task(index=len(tasks), payload_cycles=task_cycles,
                          dependences=(in_dep(left), in_dep(right),
                                       out_dep(slot)),
                          name=f"fib_{n}_{len(tasks)}"))
        return slot

    emit(depth)
    return TaskProgram(name=f"fibonacci-{depth}", tasks=tasks)


def main() -> None:
    spec = workload("fibonacci")
    program = spec.build()
    print(f"Registered workload: {spec.name}  (tags: {', '.join(spec.tags)})")
    print(f"  {spec.description}")
    print(f"  tasks             : {program.num_tasks}")
    print(f"  serial work       : {program.serial_cycles} cycles")
    print(f"  critical path     : {program.critical_path_cycles()} cycles")
    print(f"  ideal speedup (8c): {program.ideal_speedup(8):.2f}x\n")

    result = (
        Study(SimConfig())
        .workloads("fibonacci")
        .runtimes("phentos", "nanos-rv")
        .label("example:fibonacci")
        .run()
    )
    print(f"Study {result.label!r} "
          f"({len(result.runs())} case(s) at {result.core_counts[0]} cores)")
    print(benchmarks_report(result.runs(), runtimes=result.runtimes))
    for runtime in result.runtimes:
        print(f"  geomean speedup {runtime:<9}: "
              f"{result.geomean(runtime):.2f}x over serial")

    print("\nThe same workload is now a first-class CLI citizen "
          "(--plugin imports this file into a fresh process):")
    print("  python -m repro run figure9 --workload fibonacci "
          "--plugin examples/custom_workload.py")
    print("  python -m repro workloads --tag example "
          "--plugin examples/custom_workload.py")


if __name__ == "__main__":
    main()
