#!/usr/bin/env python3
"""Quickstart: run one task-parallel program on every runtime model.

The example builds the blackscholes workload (4K options, 32-option blocks),
executes it on the serial baseline and on the four task-scheduling runtimes
the paper evaluates — Nanos-SW (software-only), Nanos-RV and Phentos (both
using the custom Picos instructions) and Nanos-AXI (the Picos++/MMIO
baseline) — and prints the elapsed cycles and speedups.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import RUNTIMES, SimConfig
from repro.apps import blackscholes_program
from repro.eval import format_table


def main() -> None:
    config = SimConfig()  # the paper's 8-core, 80 MHz prototype
    program = blackscholes_program("4K", block_size=32)
    print(f"Workload: {program.name} — {program.num_tasks} tasks, "
          f"mean task size {program.mean_task_cycles:.0f} cycles\n")

    serial = RUNTIMES["serial"](config).run(program)
    rows = [["serial", 1, serial.elapsed_cycles, "1.00x",
             f"{serial.serial_cycles / 80_000:.2f} ms"]]
    for name in ("nanos-sw", "nanos-axi", "nanos-rv", "phentos"):
        runtime = RUNTIMES[name](config)
        result = runtime.run(program)
        rows.append([
            name,
            result.num_cores,
            result.elapsed_cycles,
            f"{serial.elapsed_cycles / result.elapsed_cycles:.2f}x",
            f"{result.elapsed_cycles / 80_000:.2f} ms",
        ])
    print(format_table(
        ["runtime", "cores", "elapsed (cycles)", "speedup vs serial",
         "time @ 80 MHz"],
        rows,
    ))
    print("\nExpected shape: Phentos > Nanos-RV > Nanos-AXI > Nanos-SW, with "
          "Nanos-SW below 1x at this granularity.")


if __name__ == "__main__":
    main()
