#!/usr/bin/env python3
"""Granularity sweep: where does each runtime stop paying off?

The paper's central argument is that the maximum task throughput (MTT) of a
scheduling runtime bounds the task granularity it can exploit: the higher
the per-task scheduling overhead, the coarser the tasks must be before the
eight cores are kept busy.  This example sweeps the task size of a uniform
independent-task workload from ~100 cycles to ~1M cycles and reports the
speedup of each runtime over serial execution, alongside the analytic
Equation-1 bound derived from the measured Task-Chain overhead.

Run with::

    python examples/granularity_sweep.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import RUNTIMES, SimConfig
from repro.apps import task_free_program
from repro.eval import format_table, measure_lifetime_overhead, speedup_bound


def sweep(task_sizes, num_tasks, config) -> None:
    runtimes = ("nanos-sw", "nanos-rv", "phentos")
    bounds = {
        name: measure_lifetime_overhead(name, "task-chain", 1,
                                        num_tasks=60, config=config)
        for name in runtimes
    }
    print("Measured Task-Chain (1 dep) lifetime overheads: "
          + ", ".join(f"{name}={cycles:.0f}cy" for name, cycles in bounds.items())
          + "\n")

    headers = ["task size (cy)"]
    for name in runtimes:
        headers.extend([f"{name}", f"{name} bound"])
    rows = []
    for task_size in task_sizes:
        program = task_free_program(num_tasks=num_tasks, num_dependences=1,
                                    payload_cycles=task_size,
                                    name=f"uniform-{task_size}")
        serial = RUNTIMES["serial"](config).run(program)
        row = [task_size]
        for name in runtimes:
            result = RUNTIMES[name](config).run(program)
            measured = serial.elapsed_cycles / result.elapsed_cycles
            bound = speedup_bound(task_size, bounds[name],
                                  config.machine.num_cores)
            row.extend([f"{measured:.2f}x", f"{bound:.2f}x"])
        rows.append(row)
    print(format_table(headers, rows))
    print("\nReading the table: Phentos already profits from ~1000-cycle "
          "tasks, Nanos-RV needs tens of thousands of cycles, Nanos-SW "
          "hundreds of thousands — the crossover structure of Figures 6/10.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer sizes and tasks (for smoke testing)")
    args = parser.parse_args()
    config = SimConfig()
    if args.quick:
        sizes = [500, 5_000, 50_000]
        num_tasks = 48
    else:
        sizes = [200, 1_000, 5_000, 20_000, 100_000, 500_000]
        num_tasks = 96
    sweep(sizes, num_tasks, config)


if __name__ == "__main__":
    main()
