#!/usr/bin/env python3
"""Reproduce every table and figure of the paper's evaluation in one go.

Runs, in order: the Figure 7 overhead matrix, the Figure 6 MTT bounds, the
Figure 9 benchmark sweep (with Figures 8 and 10 and the headline summary
derived from it) and the Table II resource breakdown, printing each in the
same rows/series the paper reports.  Use ``--quick`` for a reduced sweep,
``--jobs N`` to fan the sweep out over N host processes and ``--cache-dir``
to serve repeated runs from the result cache.

Run with::

    python examples/reproduce_paper.py --quick --jobs 8

The expensive experiments (the Figure 7 matrix, the Figure 9 sweep, the
Table II model) run through :class:`repro.harness.ExperimentEngine` — the
same execution path as ``python -m repro run`` — so they parallelise and
cache; the derived figures are then computed from the same runs, with the
Figure 6 curves deliberately reused for Figure 10's overlay.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro import SimConfig
from repro.eval import (
    benchmarks_report,
    bounds_report,
    comparisons_report,
    default_task_sizes,
    figure6_mtt_bounds,
    figure8_granularity,
    figure10_bounds_vs_measured,
    granularity_report,
    headline_report,
    headline_summary,
    overhead_report,
    resources_report,
)
from repro.harness import ExperimentEngine, Progress


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced benchmark sweep and fewer tasks")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="host processes for the benchmark sweep")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="serve repeated runs from this result cache")
    args = parser.parse_args()
    config = SimConfig()
    engine = ExperimentEngine(config=config, jobs=args.jobs,
                              cache_dir=args.cache_dir, progress=Progress())
    started = time.time()
    num_tasks = 60 if args.quick else 120

    banner("Figure 7 — lifetime Task Scheduling overhead (cycles per task)")
    print(overhead_report(engine.run("figure7", num_tasks=num_tasks)))

    banner("Figure 6 — MTT-derived maximum speedup bounds (8 cores)")
    curves = figure6_mtt_bounds(config, task_sizes=default_task_sizes(2, 5, 8),
                                num_tasks=num_tasks)
    print(bounds_report(curves))

    banner("Figure 9 — benchmark sweep (speedup over serial)")
    runs = engine.run("figure9", quick=args.quick)
    print(benchmarks_report(runs))

    banner("Figure 8 — speedup versus task granularity")
    print(granularity_report(figure8_granularity(runs), runtime="phentos"))

    banner("Figure 10 — measured speedups versus MTT bounds")
    comparisons = figure10_bounds_vs_measured(runs, config, curves)
    print(comparisons_report(comparisons, tolerance=1.15))

    banner("Table II — FPGA resource usage breakdown")
    print(resources_report(engine.run("table2")))

    banner("Headline summary (abstract / conclusion numbers)")
    print(headline_report(headline_summary(runs)))

    stats = engine.cache_stats
    if stats.lookups:
        print(f"\nCache: {stats.hits} hit(s), {stats.misses} miss(es)")
    print(f"Total host time: {time.time() - started:.1f} s")


if __name__ == "__main__":
    main()
