#!/usr/bin/env python3
"""Reproduce every table and figure of the paper's evaluation in one go.

Runs, in order: the Figure 7 overhead matrix, the Figure 6 MTT bounds, the
Figure 9 benchmark sweep (with Figures 8 and 10 and the headline summary
derived from it) and the Table II resource breakdown, printing each in the
same rows/series the paper reports.  Use ``--quick`` for a reduced sweep
(a few minutes instead of tens of minutes on slow machines).

Run with::

    python examples/reproduce_paper.py --quick
"""

from __future__ import annotations

import argparse
import time

from repro import SimConfig
from repro.eval import (
    benchmarks_report,
    bounds_report,
    default_task_sizes,
    figure6_mtt_bounds,
    figure7_overhead,
    figure8_granularity,
    figure9_benchmarks,
    figure10_bounds_vs_measured,
    format_table,
    granularity_report,
    headline_report,
    headline_summary,
    overhead_report,
    resources_report,
    table2_resources,
)


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced benchmark sweep and fewer tasks")
    args = parser.parse_args()
    config = SimConfig()
    started = time.time()
    num_tasks = 60 if args.quick else 120

    banner("Figure 7 — lifetime Task Scheduling overhead (cycles per task)")
    print(overhead_report(figure7_overhead(config, num_tasks=num_tasks)))

    banner("Figure 6 — MTT-derived maximum speedup bounds (8 cores)")
    curves = figure6_mtt_bounds(config, task_sizes=default_task_sizes(2, 5, 8),
                                num_tasks=num_tasks)
    print(bounds_report(curves))

    banner("Figure 9 — benchmark sweep (speedup over serial)")
    runs = figure9_benchmarks(config, quick=args.quick)
    print(benchmarks_report(runs))

    banner("Figure 8 — speedup versus task granularity")
    print(granularity_report(figure8_granularity(runs), runtime="phentos"))

    banner("Figure 10 — measured speedups versus MTT bounds")
    comparisons = figure10_bounds_vs_measured(runs, config, curves)
    rows = []
    for platform, comparison in comparisons.items():
        best = max(speedup for _, speedup in comparison.measured)
        rows.append([platform, f"{best:.2f}x",
                     len(comparison.violations(tolerance=1.15))])
    print(format_table(["platform", "best measured speedup",
                        "points above the analytic bound"], rows))

    banner("Table II — FPGA resource usage breakdown")
    print(resources_report(table2_resources(config)))

    banner("Headline summary (abstract / conclusion numbers)")
    print(headline_report(headline_summary(runs)))

    print(f"\nTotal host time: {time.time() - started:.1f} s")


if __name__ == "__main__":
    main()
