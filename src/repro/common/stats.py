"""Lightweight statistics counters shared by every simulated component.

Each hardware module and runtime keeps a :class:`Stats` instance.  Counters
are created lazily on first use, so modules simply call ``stats.incr(name)``
or ``stats.add(name, value)`` and the evaluation harness later merges all
scopes into a single report.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Tuple

__all__ = ["Stats", "Histogram", "geometric_mean", "merge_stats"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly-positive values.

    The paper reports geometric-mean speedups (2.13x, 13.19x, 6.20x); this is
    the helper every harness uses to compute the same statistic.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class Histogram:
    """A tiny streaming histogram: count, sum, min, max, sum of squares."""

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the recorded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the recorded samples (0.0 when empty)."""
        if not self.count:
            return 0.0
        mean = self.mean
        return max(self.total_sq / self.count - mean * mean, 0.0)

    @property
    def stddev(self) -> float:
        """Population standard deviation of the recorded samples."""
        return math.sqrt(self.variance)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one."""
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class Stats:
    """Named counters and histograms for one simulated component."""

    def __init__(self, scope: str = "") -> None:
        self.scope = scope
        self._counters: Dict[str, float] = defaultdict(float)
        self._histograms: Dict[str, Histogram] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount`` (default 1)."""
        self._counters[name] += amount

    def add(self, name: str, amount: float) -> None:
        """Alias of :meth:`incr` that reads better for non-unit amounts."""
        self._counters[name] += amount

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram()
        self._histograms[name].observe(value)

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Histogram:
        """Histogram ``name`` (an empty one if never observed)."""
        return self._histograms.get(name, Histogram())

    def counters(self) -> Mapping[str, float]:
        """Read-only view of all counters."""
        return dict(self._counters)

    def histograms(self) -> Mapping[str, Histogram]:
        """Read-only view of all histograms."""
        return dict(self._histograms)

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate over ``(qualified_name, value)`` counter pairs."""
        prefix = f"{self.scope}." if self.scope else ""
        for name, value in self._counters.items():
            yield prefix + name, value

    def reset(self) -> None:
        """Zero every counter and drop every histogram."""
        self._counters.clear()
        self._histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stats(scope={self.scope!r}, counters={dict(self._counters)!r})"


def merge_stats(stats: Iterable[Stats]) -> Dict[str, float]:
    """Merge many scoped :class:`Stats` into one flat counter dictionary."""
    merged: Dict[str, float] = defaultdict(float)
    for stat in stats:
        for name, value in stat.items():
            merged[name] += value
    return dict(merged)
