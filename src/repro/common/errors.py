"""Exception hierarchy shared by every subsystem of the reproduction.

The simulator distinguishes between *user errors* (bad configuration, bad
workload description) and *model errors* (an internal invariant of the
simulated hardware or runtime was violated).  Keeping the hierarchy in one
module lets callers catch :class:`ReproError` to handle anything raised by
the library while still being able to discriminate finer categories.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "ProtocolError",
    "QueueError",
    "MemoryModelError",
    "RuntimeModelError",
    "WorkloadError",
    "PicosError",
    "EvaluationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of the supported range."""


class SimulationError(ReproError):
    """The discrete-event engine detected an internal inconsistency."""


class DeadlockError(SimulationError):
    """The simulation cannot make progress although processes are blocked.

    Raised when the event queue drains while processes are still waiting on
    queues or events, or when a watchdog horizon is exceeded.  This mirrors
    the deadlock scenarios discussed in Section IV-C of the paper.
    """


class ProtocolError(ReproError):
    """A hardware module was driven in a way its interface does not allow."""


class QueueError(ProtocolError):
    """Illegal operation on a decoupled queue (e.g. pop from empty)."""


class MemoryModelError(ReproError):
    """The coherence/cache model was asked to do something unsupported."""


class RuntimeModelError(ReproError):
    """A task-scheduling runtime model violated one of its invariants."""


class WorkloadError(ReproError):
    """A benchmark/application produced an invalid task program."""


class PicosError(ProtocolError):
    """The Picos device was driven outside its packet protocol."""


class EvaluationError(ReproError):
    """An experiment harness was asked for an unknown or failed experiment."""
