"""Machine, cost-model and simulation configuration objects.

Every cycle cost used anywhere in the simulator lives here, in one of the
frozen dataclasses below.  The defaults describe the paper's prototype:

* an eight-core, in-order Rocket Chip running at 80 MHz,
* per-core 32 KB / 8-way L1 data and instruction caches kept coherent with
  MESI and **no shared L2**, so dirty lines travel through main memory,
* DDR main memory clocked at 667 MHz (so memory latency, expressed in core
  cycles, is comparatively small),
* the Picos task scheduler reached through per-core RoCC Picos Delegates and
  one chip-wide Picos Manager.

The cost models for the software runtimes (Nanos and Phentos) describe the
*operations* those runtimes perform per scheduling event; the cycle charge of
each operation is then computed against the simulated memory system at run
time, so that effects such as cache-line bouncing emerge rather than being
hard-coded.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

__all__ = [
    "CACHE_LINE_BYTES",
    "MachineConfig",
    "MemoryCosts",
    "RoccCosts",
    "PicosCosts",
    "AxiCosts",
    "NanosCosts",
    "PhentosCosts",
    "CostModel",
    "SimConfig",
    "default_machine",
    "default_cost_model",
]

#: Cache line size of the Rocket Chip prototype, in bytes.
CACHE_LINE_BYTES = 64


def _positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def _non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


@dataclass(frozen=True)
class MachineConfig:
    """Chip-level parameters of the simulated SoC."""

    num_cores: int = 8
    core_clock_mhz: float = 80.0
    memory_clock_mhz: float = 667.0
    l1_size_bytes: int = 32 * 1024
    l1_ways: int = 8
    cache_line_bytes: int = CACHE_LINE_BYTES
    has_shared_l2: bool = False
    isa: str = "rv64gc"
    fpga: str = "ZCU102-ES2"

    def __post_init__(self) -> None:
        _positive("num_cores", self.num_cores)
        _positive("core_clock_mhz", self.core_clock_mhz)
        _positive("memory_clock_mhz", self.memory_clock_mhz)
        _positive("l1_size_bytes", self.l1_size_bytes)
        _positive("l1_ways", self.l1_ways)
        _positive("cache_line_bytes", self.cache_line_bytes)
        if self.l1_size_bytes % (self.l1_ways * self.cache_line_bytes) != 0:
            raise ConfigurationError(
                "l1_size_bytes must be divisible by l1_ways * cache_line_bytes"
            )

    @property
    def l1_sets(self) -> int:
        """Number of sets in each L1 cache."""
        return self.l1_size_bytes // (self.l1_ways * self.cache_line_bytes)

    @property
    def memory_clock_ratio(self) -> float:
        """Memory clock expressed in core clocks (667 MHz / 80 MHz ≈ 8.3)."""
        return self.memory_clock_mhz / self.core_clock_mhz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a core-cycle count to wall-clock seconds on the prototype."""
        return cycles / (self.core_clock_mhz * 1e6)


@dataclass(frozen=True)
class MemoryCosts:
    """Latency, in core cycles, of the memory-hierarchy events we model.

    Because the prototype has no shared L2 and main memory is clocked much
    faster than the cores, a main-memory access is only a few tens of core
    cycles; what hurts is the *number* of coherence round trips, exactly as
    the paper argues when discussing cache-line bouncing under MESI.
    """

    l1_hit: int = 2
    l1_miss_to_memory: int = 28
    #: Dirty line in another core's L1: writeback through memory + refill.
    dirty_remote_transfer: int = 52
    #: Invalidation round trip charged to the writer on an upgrade.
    invalidate_remote: int = 12
    #: Extra cycles of an atomic read-modify-write over a plain access.
    atomic_rmw_extra: int = 10
    store_buffer_drain: int = 4
    #: Fractional slowdown of a task payload per *other* core concurrently
    #: executing payloads.  Models contention on the single memory path (no
    #: shared L2, one DDR controller) and is the reason measured speedups
    #: saturate around 5.6x on eight cores rather than at 8x, as the paper
    #: observes for its -O3 baselines.
    payload_contention_per_core: float = 0.06

    def __post_init__(self) -> None:
        for name, value in dataclasses.asdict(self).items():
            _non_negative(f"MemoryCosts.{name}", value)


@dataclass(frozen=True)
class RoccCosts:
    """Cycle costs of issuing RoCC custom instructions from a Rocket core."""

    #: Pipeline cost of any RoCC instruction (decode + operand read + resp).
    issue: int = 2
    #: Extra cycles when the instruction must cross into Picos Manager.
    manager_handshake: int = 1
    #: Cycles for the blocking Retire Task round trip to the round-robin
    #: arbiter (usually immediately granted, per Section IV-E.7).
    retire_roundtrip: int = 2

    def __post_init__(self) -> None:
        for name, value in dataclasses.asdict(self).items():
            _non_negative(f"RoccCosts.{name}", value)


@dataclass(frozen=True)
class PicosCosts:
    """Latency/throughput parameters of the Picos device itself.

    Derived from the descriptions in Yazdanpanah et al. and Tan et al.: Picos
    ingests one 32-bit submission packet per cycle, needs a handful of cycles
    of dependence analysis per descriptor, and produces a ready task as three
    32-bit packets over an eight-cycle window (half of which the per-core
    ready queues hide from the application, Section IV-F.2).
    """

    submission_packet_cycles: int = 1
    #: Dependence-analysis pipeline depth per dependence of a new task.
    dependence_analysis_cycles: int = 4
    #: Fixed cycles to insert a task into the task reservation station.
    task_insert_cycles: int = 6
    #: Cycles for Picos to emit the three ready packets of one ready task.
    ready_emit_cycles: int = 30
    #: Cycles to process one retirement packet (queue pop + TRS update).
    retire_cycles: int = 8
    #: Cycles of dependence-chain resolution per dependant woken by a
    #: retirement; exposed on the critical path of chained workloads.
    wakeup_per_dependant_cycles: int = 55
    #: Capacity of the task reservation station (in-flight + pending tasks).
    max_in_flight_tasks: int = 256
    #: Depth of the hardware submission / ready / retirement queues.
    submission_queue_depth: int = 64
    ready_queue_depth: int = 16
    retirement_queue_depth: int = 16

    def __post_init__(self) -> None:
        for name, value in dataclasses.asdict(self).items():
            _non_negative(f"PicosCosts.{name}", value)
        _positive("PicosCosts.max_in_flight_tasks", self.max_in_flight_tasks)


@dataclass(frozen=True)
class AxiCosts:
    """Communication costs of the Picos++/AXI baseline (Tan et al. 2017).

    The baseline reaches the scheduler through MMIO/AXI transactions managed
    by a DMA-like module on a Zynq SoC.  The paper scales those published
    numbers by the Cortex-A9 / Rocket IPC ratio (Fig. 7 caption); the values
    below are calibrated so the Nanos-AXI lifetime overheads land in the
    13k–19k cycle band of Fig. 7.
    """

    #: Cycles for one MMIO/AXI write burst carrying a task descriptor.
    submit_transaction: int = 900
    #: Cycles for one MMIO/AXI read polling/fetching a ready task.
    ready_transaction: int = 650
    #: Cycles for the retirement MMIO write.
    retire_transaction: int = 400
    #: Additional per-dependence descriptor marshalling cost.
    per_dependence: int = 260
    #: Cycles of the DMA-mediated transfer that moves ready-task descriptors
    #: from Picos++ into the CPU-visible buffer.  Chained workloads pay it
    #: once per task (nothing can be prefetched); parallel workloads amortise
    #: it over whole batches, which is why the AXI baseline degrades most on
    #: dependence chains (Figure 7).
    dma_refill_cycles: int = 4200

    def __post_init__(self) -> None:
        for name, value in dataclasses.asdict(self).items():
            _non_negative(f"AxiCosts.{name}", value)


@dataclass(frozen=True)
class NanosCosts:
    """Operation counts of the Nanos runtime per scheduling event.

    Nanos (both the `plain` software plugin and the `picos` plugin) pays for
    its plugin architecture: virtual dispatch, descriptor allocation, a
    central scheduler singleton protected by mutexes, and condition-variable
    system calls when workers go idle.  These counts describe *what Nanos
    does*; the cycle charge is computed against the simulated memory system.

    The values are calibrated so that the Task-Free / Task-Chain lifetime
    overheads land in the Figure 7 bands: ~12–13k cycles per task for
    Nanos-RV (dependence inference offloaded to Picos, Nanos machinery kept)
    and ~25k–99k cycles per task for Nanos-SW (inference and graph
    management in software, growing with the dependence count).
    """

    # -- core Nanos machinery, paid by Nanos-SW, Nanos-RV and Nanos-AXI ---
    #: Plain instructions per task submission (WorkDescriptor allocation,
    #: plugin dispatch, scheduler bookkeeping).
    submit_instructions: int = 3900
    #: Shared cache lines touched (read/write) when creating a descriptor.
    submit_shared_lines: int = 10
    #: Virtual calls per submission (each an extra dependent load).
    submit_virtual_calls: int = 12
    #: Mutex acquire/release pairs per submission.
    submit_mutex_ops: int = 3
    #: Work-fetch path: scheduler singleton pop through the plugin API.
    fetch_instructions: int = 2500
    fetch_shared_lines: int = 8
    fetch_virtual_calls: int = 8
    fetch_mutex_ops: int = 2
    #: Task retirement path (notify scheduler, release descriptor).
    retire_instructions: int = 2600
    retire_shared_lines: int = 8
    retire_virtual_calls: int = 8
    retire_mutex_ops: int = 2
    # -- picos plugin marshalling (Nanos-RV / Nanos-AXI only) -------------
    #: Instructions to marshal one dependence into submission packets.
    plugin_per_dependence_instructions: int = 40
    # -- software dependence inference and graph management (Nanos-SW) ----
    #: Instructions to insert the task into the software dependence graph.
    graph_insert_instructions: int = 6200
    graph_insert_shared_lines: int = 8
    #: Cost per dependence whose address was never seen before (hash-map
    #: insert, allocation, occasional rehash — amortised).
    dep_new_address_instructions: int = 4100
    dep_new_address_shared_lines: int = 8
    #: Cost per dependence on an address already in the map (lookup + append
    #: to the reader/writer lists).
    dep_known_address_instructions: int = 1100
    dep_known_address_shared_lines: int = 4
    #: Cost of waking the successors of a retiring task (graph update under
    #: the graph lock) — paid per retirement that has at least one successor.
    retire_successor_update_instructions: int = 12600
    retire_successor_shared_lines: int = 10
    # -- system interaction ------------------------------------------------
    #: Cycles of a futex-style syscall when a condition variable blocks.
    syscall_cycles: int = 1400
    #: A worker performs one condition-variable syscall every
    #: ``idle_checks_per_syscall`` failed work-fetch attempts.
    idle_checks_per_syscall: int = 12
    #: Extra cycles per virtual call (indirect branch + dependent load miss).
    virtual_call_cycles: int = 14
    #: Instructions per taskwait poll iteration of the main thread.
    taskwait_poll_instructions: int = 60

    def __post_init__(self) -> None:
        for name, value in dataclasses.asdict(self).items():
            _non_negative(f"NanosCosts.{name}", value)
        _positive("NanosCosts.idle_checks_per_syscall", self.idle_checks_per_syscall)


@dataclass(frozen=True)
class PhentosCosts:
    """Operation counts of the Phentos fly-weight runtime (Section V-B)."""

    #: Plain inlined instructions per submission (header-only, no plugins).
    submit_instructions: int = 50
    #: Inlined instructions per monitored pointer parameter (packing the
    #: address and directionality into submission packets and metadata).
    submit_per_dependence_instructions: int = 7
    #: Cache lines of the Task Metadata Array written per submission
    #: (1 for up to 7 dependences, 2 for up to 15 — selected per program).
    metadata_lines_small: int = 1
    metadata_lines_large: int = 2
    #: Dependences that still fit the one-cache-line metadata element.
    small_element_max_deps: int = 7
    fetch_instructions: int = 35
    retire_instructions: int = 20
    #: Failed work-fetch attempts between updates of the shared retirement
    #: counter (design goal 5 of Section V-B).
    fetch_failures_per_counter_update: int = 8
    #: Cycles between polls of the shared counter while in taskwait
    #: (the paper uses 10–100 depending on the taskwait flavour).
    taskwait_poll_interval: int = 40

    def __post_init__(self) -> None:
        for name, value in dataclasses.asdict(self).items():
            _non_negative(f"PhentosCosts.{name}", value)
        _positive(
            "PhentosCosts.fetch_failures_per_counter_update",
            self.fetch_failures_per_counter_update,
        )
        _positive("PhentosCosts.taskwait_poll_interval", self.taskwait_poll_interval)


@dataclass(frozen=True)
class CostModel:
    """Bundle of every cost table used by the simulation."""

    memory: MemoryCosts = field(default_factory=MemoryCosts)
    rocc: RoccCosts = field(default_factory=RoccCosts)
    picos: PicosCosts = field(default_factory=PicosCosts)
    axi: AxiCosts = field(default_factory=AxiCosts)
    nanos: NanosCosts = field(default_factory=NanosCosts)
    phentos: PhentosCosts = field(default_factory=PhentosCosts)


@dataclass(frozen=True)
class SimConfig:
    """Top-level configuration handed to :class:`repro.cpu.soc.SoC`."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    costs: CostModel = field(default_factory=CostModel)
    #: Hard cycle limit after which the engine raises ``DeadlockError``.
    max_cycles: int = 5_000_000_000
    #: Emit per-event traces (expensive; for debugging only).
    trace: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        _positive("SimConfig.max_cycles", self.max_cycles)

    def with_cores(self, num_cores: int) -> "SimConfig":
        """Return a copy of this configuration with a different core count."""
        machine = dataclasses.replace(self.machine, num_cores=num_cores)
        return dataclasses.replace(self, machine=machine)


def default_machine() -> MachineConfig:
    """The paper's prototype: 8 in-order cores, 32 KB L1s, no shared L2."""
    return MachineConfig()


def default_cost_model() -> CostModel:
    """Cost model calibrated against Figure 7 of the paper."""
    return CostModel()
