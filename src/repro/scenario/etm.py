"""Built-in execution-time models: constant, uniform, lognormal.

An ETM resamples each task's payload as jitter around its *nominal*
cost, so the task graph's shape (dependences, taskwait phases) is
untouched while per-task granularity varies.  The uniform and lognormal
multipliers are mean-1 by construction, keeping the expected total work
equal to the deterministic program's.

Zero-cost tasks stay at zero (several microbenchmarks use empty tasks
to isolate runtime overhead — jitter must not invent work for them);
any positive nominal cost samples to at least one cycle.
"""

from __future__ import annotations

import math

from repro.common.errors import ReproError
from repro.registry import register_etm
from repro.scenario.stream import Pcg64Stream

__all__ = ["ConstantEtm", "UniformEtm", "LognormalEtm"]


def _apply_multiplier(nominal: int, multiplier: float) -> int:
    if nominal <= 0:
        return nominal
    return max(1, int(round(nominal * multiplier)))


@register_etm("constant", tags=("builtin",), defaults={"factor": 1.0})
class ConstantEtm:
    """Deterministic scaling of every nominal cost by ``factor``."""

    def __init__(self, factor: float = 1.0) -> None:
        if factor <= 0:
            raise ReproError("constant ETM factor must be positive")
        self.factor = float(factor)

    def sample(self, stream: Pcg64Stream, nominal: int) -> int:
        return _apply_multiplier(nominal, self.factor)


@register_etm("uniform", tags=("builtin",), defaults={"low": 0.8, "high": 1.2})
class UniformEtm:
    """Multiplier drawn uniformly from ``[low, high]`` (mean-1 default)."""

    def __init__(self, low: float = 0.8, high: float = 1.2) -> None:
        if low <= 0 or high < low:
            raise ReproError("uniform ETM needs 0 < low <= high")
        self.low = float(low)
        self.high = float(high)

    def sample(self, stream: Pcg64Stream, nominal: int) -> int:
        multiplier = self.low + (self.high - self.low) * stream.random()
        return _apply_multiplier(nominal, multiplier)


@register_etm("lognormal", tags=("builtin",), defaults={"sigma": 0.25})
class LognormalEtm:
    """Lognormal multiplier normalised to mean 1.

    ``exp(N(-sigma²/2, sigma))`` has expectation exactly 1, so jitter
    reshapes the cost distribution's tail without shifting total work.
    """

    def __init__(self, sigma: float = 0.25) -> None:
        if sigma <= 0:
            raise ReproError("lognormal ETM sigma must be positive")
        self.sigma = float(sigma)

    def sample(self, stream: Pcg64Stream, nominal: int) -> int:
        multiplier = math.exp(
            stream.normal(-0.5 * self.sigma * self.sigma, self.sigma))
        return _apply_multiplier(nominal, multiplier)
