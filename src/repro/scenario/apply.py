"""Compiling a :class:`ScenarioSpec` against one benchmark case.

:func:`compile_scenario` is called exactly once per (case, scenario)
pair — in whatever process executes the unit — and performs every
random draw that is shared across runtimes:

* the execution-time model resamples each task's payload,
* the arrival model lays out each task's ``release_cycle``,
* the deadline factor stamps ``deadline_cycle`` on released tasks.

Each runtime then gets its own :class:`ScenarioRun` carrying the
scheduler policy (with a stream derived from the runtime's name, so
policies draw independent but reproducible sequences per runtime) and
the latency/deadline bookkeeping that lands in ``RuntimeResult.stats``.

Determinism is structural: every stream is derived from
``(seed, case-identity, role)`` via :func:`~repro.scenario.stream.derive_stream`,
so a warm pool worker, a fresh retry worker and an in-process serial
run all draw identical sequences.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

import repro.registry as registry
from repro.runtime.task import TaskProgram
from repro.scenario.schedulers import TaskView
from repro.scenario.spec import (DEFAULT_ARRIVAL, DEFAULT_ETM,
                                 DEFAULT_SCHEDULER, ScenarioSpec)
from repro.scenario.stream import derive_stream

__all__ = ["CompiledScenario", "ScenarioRun", "compile_scenario",
           "scenario_case_context"]


def scenario_case_context(case: Any) -> Dict[str, Any]:
    """The case-identity dict that seeds stream derivation.

    Accepts anything shaped like a
    :class:`~repro.eval.experiments.BenchmarkCase` (duck-typed to avoid
    an import cycle).  Only stable, JSON-friendly identity fields enter:
    two processes materialising the same case derive the same streams.
    """
    params = getattr(case, "params", ()) or ()
    if isinstance(params, dict):
        params = sorted(params.items())
    return {
        "benchmark": case.benchmark,
        "label": case.label,
        "builder": case.builder,
        "params": [[str(key), value] for key, value in params],
    }


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return float(sorted_values[rank - 1])


class ScenarioRun:
    """Live scenario state for one runtime's execution of one case.

    Installed onto the :class:`~repro.cpu.soc.SoC` before ``_execute``:
    the runtimes gate task submission on ``release_cycle`` and report
    completions here; ready queues consult :attr:`selector` (when the
    policy is not FIFO) to decide which entry to pop.
    """

    def __init__(self, spec: ScenarioSpec, case_context: Dict[str, Any],
                 program: TaskProgram, runtime_name: str) -> None:
        self.spec = spec
        self.runtime_name = runtime_name
        self._releases = [task.release_cycle for task in program.tasks]
        self._payloads = [task.payload_cycles for task in program.tasks]
        self._deadlines = [task.deadline_cycle for task in program.tasks]
        self._completions: Dict[int, int] = {}
        self._view = TaskView(self._payloads, self._deadlines)
        policy = registry.scheduler(spec.scheduler).create(
            **dict(spec.scheduler_params))
        if getattr(policy, "passthrough", False):
            self.selector = None
        else:
            stream = derive_stream(spec.seed, case_context, "scheduler",
                                   runtime_name)
            view = self._view

            def selector(items: Sequence[object]) -> int:
                return policy.select(items, view, stream)

            self.selector = selector

    # ------------------------------------------------------------------ #
    # Hooks called from the simulation
    # ------------------------------------------------------------------ #
    def install(self, soc: Any) -> None:
        """Attach this run to ``soc`` (and its Picos work-fetch queue)."""
        soc.scenario = self
        work_fetch = getattr(getattr(soc, "manager", None), "work_fetch", None)
        if work_fetch is not None:
            self.attach_queue(work_fetch.rocc_ready_queue)

    def attach_queue(self, queue: Any) -> None:
        """Point a ready queue's selector at this run's policy.

        A no-op for FIFO, so the default policy keeps the queues'
        zero-overhead ``popleft`` fast path.
        """
        if self.selector is not None:
            queue.selector = self.selector

    def note_completion(self, index: int, now: int) -> None:
        """Record that task ``index`` finished executing at cycle ``now``."""
        self._completions[index] = now

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[str, float]:
        """Latency percentiles and deadline misses for ``RuntimeResult.stats``.

        Latency is completion minus release — the paper's sojourn time
        under the modelled arrival process.  Percentiles use the
        nearest-rank definition so they are exact sample statistics.
        """
        latencies = sorted(
            float(now - self._releases[index])
            for index, now in self._completions.items()
            if 0 <= index < len(self._releases))
        deadline_tasks = sum(1 for deadline in self._deadlines
                             if deadline is not None)
        misses = sum(
            1 for index, now in self._completions.items()
            if 0 <= index < len(self._deadlines)
            and self._deadlines[index] is not None
            and now > self._deadlines[index])
        mean = (sum(latencies) / len(latencies)) if latencies else 0.0
        return {
            "scenario.tasks": float(len(self._completions)),
            "scenario.latency_mean": mean,
            "scenario.latency_p50": _percentile(latencies, 0.50),
            "scenario.latency_p95": _percentile(latencies, 0.95),
            "scenario.latency_p99": _percentile(latencies, 0.99),
            "scenario.deadline_tasks": float(deadline_tasks),
            "scenario.deadline_misses": float(misses),
        }


class CompiledScenario:
    """A scenario bound to one case: the transformed program plus streams."""

    def __init__(self, spec: ScenarioSpec, case_context: Dict[str, Any],
                 program: TaskProgram) -> None:
        self.spec = spec
        self.case_context = case_context
        self.program = program

    def runtime_run(self, runtime_name: str) -> ScenarioRun:
        """A fresh :class:`ScenarioRun` for one runtime execution."""
        return ScenarioRun(self.spec, self.case_context, self.program,
                           runtime_name)


def _resample_payloads(spec: ScenarioSpec, case_context: Dict[str, Any],
                       payloads: List[int]) -> List[int]:
    model = registry.etm(spec.etm).create(**dict(spec.etm_params))
    stream = derive_stream(spec.seed, case_context, "etm")
    return [model.sample(stream, nominal) for nominal in payloads]


def _release_schedule(spec: ScenarioSpec, case_context: Dict[str, Any],
                      count: int, mean_task_cycles: float) -> List[int]:
    model = registry.arrival(spec.arrival).create(**dict(spec.arrival_params))
    stream = derive_stream(spec.seed, case_context, "arrival")
    gaps = model.inter_arrivals(stream, count, mean_task_cycles)
    if len(gaps) != count:
        raise registry.RegistryError(
            f"arrival model {spec.arrival!r} returned {len(gaps)} gaps "
            f"for {count} tasks")
    releases: List[int] = []
    clock = 0
    for gap in gaps:
        clock += max(0, int(gap))
        releases.append(clock)
    return releases


def compile_scenario(spec: ScenarioSpec, case_context: Dict[str, Any],
                     program: TaskProgram) -> CompiledScenario:
    """Apply ``spec`` to ``program``, drawing every shared random choice.

    The arrival model sees the *nominal* program's mean task cost (the
    case's published granularity) so offered load is independent of the
    ETM draw; both built-in jitter models are mean-1 anyway.
    """
    payloads = [task.payload_cycles for task in program.tasks]
    if spec.etm != DEFAULT_ETM or spec.etm_params:
        payloads = _resample_payloads(spec, case_context, payloads)
    releases: Optional[List[int]] = None
    if spec.arrival != DEFAULT_ARRIVAL or spec.arrival_params:
        releases = _release_schedule(spec, case_context, len(payloads),
                                     program.mean_task_cycles)
    if spec.scheduler != DEFAULT_SCHEDULER or spec.scheduler_params:
        # Validate the policy name eagerly (did-you-mean at compile time,
        # not mid-simulation), even though instantiation is per-runtime.
        registry.scheduler(spec.scheduler)
    tasks = []
    for task in program.tasks:
        release = releases[task.index] if releases is not None else 0
        deadline: Optional[int] = None
        if spec.deadline_factor > 0:
            slack = max(1, int(round(spec.deadline_factor
                                     * payloads[task.index])))
            deadline = release + slack
        tasks.append(replace(task,
                             payload_cycles=payloads[task.index],
                             release_cycle=release,
                             deadline_cycle=deadline))
    transformed = TaskProgram(
        name=program.name,
        tasks=tasks,
        taskwait_after=set(program.taskwait_after),
        serial_sections_cycles=program.serial_sections_cycles,
        parameters=dict(program.parameters),
    )
    return CompiledScenario(spec, case_context, transformed)
