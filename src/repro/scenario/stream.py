"""Deterministic random streams for stochastic scenarios.

The stochastic layer must draw *identical* sequences no matter where a
unit executes — serial backend, warm process-pool worker, or a fresh
retry worker.  Relying on :mod:`random` (process-global state) or NumPy
(optional dependency in workers) would break that, so this module ships
a small pure-Python PCG64 (XSL-RR 128/64) generator whose entire state
is derived from a SHA-256 hash of a canonical JSON context.  Two
processes that derive a stream from the same ``(seed, *context)`` pair
therefore produce bit-identical draws.

The generator follows the PCG64 reference construction (O'Neill, 2014):
a 128-bit LCG state advanced with the canonical multiplier, output via
an xor-shift-low + random-rotate of the high word.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Optional, Sequence

__all__ = ["Pcg64Stream", "derive_stream", "stream_key"]

_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK128 = (1 << 128) - 1
_INV_2_53 = 1.0 / (1 << 53)


def _context_jsonable(value: Any) -> Any:
    """Coerce a stream-derivation context into canonical JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _context_jsonable(val)
                for key, val in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_context_jsonable(item) for item in value]
    raise TypeError(
        f"stream context elements must be JSON-like, got {type(value)!r}")


def stream_key(seed: int, context: Sequence[Any]) -> str:
    """Canonical hash of ``(seed, *context)`` naming one stream."""
    payload = json.dumps(_context_jsonable([seed, list(context)]),
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class Pcg64Stream:
    """PCG64 XSL-RR 128/64 with float/int/normal helpers."""

    def __init__(self, state: int, increment: int) -> None:
        self._state = state & _MASK128
        # The increment must be odd for the LCG to reach full period.
        self._inc = (increment | 1) & _MASK128
        self._spare_normal: Optional[float] = None
        # Warm up once so correlated seeds decorrelate immediately.
        self.next64()

    def next64(self) -> int:
        state = self._state
        self._state = (state * _MULT + self._inc) & _MASK128
        xored = ((state >> 64) ^ state) & 0xFFFFFFFFFFFFFFFF
        rot = state >> 122
        return ((xored >> rot) | (xored << (64 - rot))) & 0xFFFFFFFFFFFFFFFF

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of entropy."""
        return (self.next64() >> 11) * _INV_2_53

    def randrange(self, bound: int) -> int:
        """Unbiased integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("randrange bound must be positive")
        threshold = (1 << 64) - ((1 << 64) % bound)
        while True:
            draw = self.next64()
            if draw < threshold:
                return draw % bound

    def expovariate(self, mean: float) -> float:
        """Exponential draw with the given mean (not rate)."""
        if mean <= 0:
            raise ValueError("expovariate mean must be positive")
        return -mean * math.log(1.0 - self.random())

    def normal(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Gaussian draw via Box-Muller (caches the spare deviate)."""
        spare = self._spare_normal
        if spare is not None:
            self._spare_normal = None
            return mu + sigma * spare
        while True:
            u1 = self.random()
            if u1 > 0.0:
                break
        u2 = self.random()
        radius = math.sqrt(-2.0 * math.log(u1))
        theta = 2.0 * math.pi * u2
        self._spare_normal = radius * math.sin(theta)
        return mu + sigma * radius * math.cos(theta)


def derive_stream(seed: int, *context: Any) -> Pcg64Stream:
    """Derive an independent :class:`Pcg64Stream` from ``(seed, *context)``.

    The 256-bit digest of the canonical context feeds the 128-bit state
    and 128-bit increment, so distinct contexts land on statistically
    independent streams and every process derives the same one.
    """
    digest = hashlib.sha256(
        stream_key(seed, context).encode("ascii")).digest()
    state = int.from_bytes(digest[:16], "big")
    increment = int.from_bytes(digest[16:], "big")
    return Pcg64Stream(state, increment)
