"""Stochastic scenario layer: arrivals, execution-time jitter, schedulers.

The deterministic harness runs each task graph exactly once with the
paper's FIFO Picos policy.  This package makes runs *production-shaped*
while keeping them bit-reproducible:

* :mod:`~repro.scenario.arrivals` — when tasks become submittable
  (periodic, Poisson, bursty 2-state MMPP),
* :mod:`~repro.scenario.etm` — how task costs jitter around their
  nominal cycles (constant, uniform, lognormal),
* :mod:`~repro.scenario.schedulers` — which ready task the simulated
  queues serve next (FIFO, priority/EDF, random, LIFO work-stealing),

all registered through :func:`repro.registry.register_arrival` /
``register_etm`` / ``register_scheduler`` and selected by a frozen
:class:`ScenarioSpec` that rides through case units into cache keys.
Every random draw comes from a :class:`~repro.scenario.stream.Pcg64Stream`
derived from ``(seed, case identity, role)``, so serial runs, warm pool
workers and retry workers produce byte-identical results.
"""

from repro.scenario.spec import ScenarioSpec, canonical_scenario
from repro.scenario.stream import Pcg64Stream, derive_stream, stream_key
from repro.scenario import arrivals as _arrivals  # noqa: F401 (register)
from repro.scenario import etm as _etm  # noqa: F401 (register)
from repro.scenario import schedulers as _schedulers  # noqa: F401 (register)
from repro.scenario.apply import (
    CompiledScenario,
    ScenarioRun,
    compile_scenario,
    scenario_case_context,
)

__all__ = [
    "ScenarioSpec",
    "canonical_scenario",
    "Pcg64Stream",
    "derive_stream",
    "stream_key",
    "CompiledScenario",
    "ScenarioRun",
    "compile_scenario",
    "scenario_case_context",
]
