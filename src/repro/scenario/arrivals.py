"""Built-in arrival models: periodic, Poisson, bursty (2-state MMPP).

An arrival model turns a task count into a sequence of *inter-arrival
gaps* in cycles; the scenario compiler accumulates them into each task's
``release_cycle``.  Gaps are expressed relative to the program's mean
task cost so one ``load`` knob means the same thing across workloads:
``load=1.0`` releases on average one task per mean-task-time (a single
core at 100% utilisation), ``load=4.0`` four times as fast.

Models draw exclusively from the :class:`~repro.scenario.stream.Pcg64Stream`
they are handed, never from global randomness, so a fixed seed fixes the
release schedule bit-for-bit in every backend.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ReproError
from repro.registry import register_arrival
from repro.scenario.stream import Pcg64Stream

__all__ = ["PeriodicArrivals", "PoissonArrivals", "BurstyArrivals"]


def _gap_scale(mean_task_cycles: float, load: float) -> float:
    """Mean inter-arrival gap in cycles for a given offered load."""
    if load <= 0:
        raise ReproError("arrival load must be positive")
    return max(float(mean_task_cycles), 1.0) / load


@register_arrival("periodic", tags=("builtin",), defaults={"load": 1.0})
class PeriodicArrivals:
    """Constant inter-arrival gap of one mean task time per ``1/load``."""

    def __init__(self, load: float = 1.0) -> None:
        self.load = float(load)

    def inter_arrivals(self, stream: Pcg64Stream, count: int,
                       mean_task_cycles: float) -> List[int]:
        gap = max(1, int(round(_gap_scale(mean_task_cycles, self.load))))
        return [gap] * count


@register_arrival("poisson", tags=("builtin",), defaults={"load": 1.0})
class PoissonArrivals:
    """Exponential inter-arrival gaps (memoryless Poisson process)."""

    def __init__(self, load: float = 1.0) -> None:
        self.load = float(load)

    def inter_arrivals(self, stream: Pcg64Stream, count: int,
                       mean_task_cycles: float) -> List[int]:
        mean_gap = _gap_scale(mean_task_cycles, self.load)
        return [max(0, int(round(stream.expovariate(mean_gap))))
                for _ in range(count)]


@register_arrival("bursty", tags=("builtin",),
                  defaults={"load": 1.0, "burst": 8.0, "switch": 0.1})
class BurstyArrivals:
    """Two-state MMPP: exponential gaps alternating fast/slow phases.

    In the *burst* phase gaps shrink by ``burst``×; in the *lull* phase
    they stretch by ``burst``×, keeping the long-run geometric-mean gap
    at the ``load``-implied value.  After every arrival the phase flips
    with probability ``switch``, so ``1/switch`` is the expected phase
    length in tasks.
    """

    def __init__(self, load: float = 1.0, burst: float = 8.0,
                 switch: float = 0.1) -> None:
        if burst < 1.0:
            raise ReproError("bursty burst factor must be >= 1")
        if not 0.0 < switch <= 1.0:
            raise ReproError("bursty switch probability must be in (0, 1]")
        self.load = float(load)
        self.burst = float(burst)
        self.switch = float(switch)

    def inter_arrivals(self, stream: Pcg64Stream, count: int,
                       mean_task_cycles: float) -> List[int]:
        mean_gap = _gap_scale(mean_task_cycles, self.load)
        in_burst = stream.random() < 0.5
        gaps: List[int] = []
        for _ in range(count):
            phase_mean = (mean_gap / self.burst if in_burst
                          else mean_gap * self.burst)
            gaps.append(max(0, int(round(stream.expovariate(phase_mean)))))
            if stream.random() < self.switch:
                in_burst = not in_burst
        return gaps
