"""Declarative description of one stochastic scenario.

A :class:`ScenarioSpec` names an arrival model, an execution-time model
(ETM), a scheduler policy, a seed, and an optional deadline factor.  It
is a frozen, hashable dataclass made only of JSON-friendly scalars and
tuples so it can ride inside :class:`~repro.harness.runner.CaseUnit`
payloads to pool workers and inside cache-key fingerprints.

The default spec — no arrival jitter, no ETM jitter, the paper's FIFO
Picos policy, seed 0 — describes exactly what the harness did before the
stochastic layer existed.  :func:`canonical_scenario` maps that default
(and ``None``) to ``None`` so default cache keys omit the scenario
component entirely and stay byte-identical with pre-scenario releases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.common.errors import ReproError

__all__ = ["ScenarioSpec", "canonical_scenario"]

ParamItems = Tuple[Tuple[str, Any], ...]

#: Component names describing "leave the harness deterministic".
DEFAULT_ARRIVAL = "none"
DEFAULT_ETM = "none"
DEFAULT_SCHEDULER = "fifo"


def _canonical_params(params: Optional[Mapping[str, Any]]) -> ParamItems:
    if not params:
        return ()
    items = []
    for key in sorted(params):
        value = params[key]
        if not isinstance(value, (bool, int, float, str)):
            raise ReproError(
                f"scenario parameter {key!r} must be a scalar, "
                f"got {type(value).__name__}")
        items.append((str(key), value))
    return tuple(items)


@dataclass(frozen=True)
class ScenarioSpec:
    """One stochastic scenario: models, scheduler, seed, deadlines."""

    arrival: str = DEFAULT_ARRIVAL
    arrival_params: ParamItems = ()
    etm: str = DEFAULT_ETM
    etm_params: ParamItems = ()
    scheduler: str = DEFAULT_SCHEDULER
    scheduler_params: ParamItems = ()
    seed: int = 0
    deadline_factor: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ReproError("scenario seed must be an integer")
        if self.deadline_factor < 0:
            raise ReproError("deadline_factor must be non-negative")

    @staticmethod
    def make(arrival: str = DEFAULT_ARRIVAL,
             etm: str = DEFAULT_ETM,
             scheduler: str = DEFAULT_SCHEDULER,
             seed: int = 0,
             deadline_factor: float = 0.0,
             arrival_params: Optional[Mapping[str, Any]] = None,
             etm_params: Optional[Mapping[str, Any]] = None,
             scheduler_params: Optional[Mapping[str, Any]] = None,
             ) -> "ScenarioSpec":
        """Build a spec from plain dicts, canonicalising parameter order."""
        return ScenarioSpec(
            arrival=arrival,
            arrival_params=_canonical_params(arrival_params),
            etm=etm,
            etm_params=_canonical_params(etm_params),
            scheduler=scheduler,
            scheduler_params=_canonical_params(scheduler_params),
            seed=seed,
            deadline_factor=deadline_factor,
        )

    @property
    def is_default(self) -> bool:
        """True when this spec reproduces the deterministic harness.

        The seed participates: ``seed=3`` with all-default models is
        *not* the default, so distinct seeds never share a cache key
        even before any stochastic model is selected.
        """
        return (self.arrival == DEFAULT_ARRIVAL
                and not self.arrival_params
                and self.etm == DEFAULT_ETM
                and not self.etm_params
                and self.scheduler == DEFAULT_SCHEDULER
                and not self.scheduler_params
                and self.seed == 0
                and self.deadline_factor == 0.0)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return ScenarioSpec(
            arrival=self.arrival, arrival_params=self.arrival_params,
            etm=self.etm, etm_params=self.etm_params,
            scheduler=self.scheduler,
            scheduler_params=self.scheduler_params,
            seed=seed, deadline_factor=self.deadline_factor)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``bursty+lognormal/random@seed7``."""

        def fmt(name: str, params: ParamItems) -> str:
            if not params:
                return name
            inner = ",".join(f"{key}={value}" for key, value in params)
            return f"{name}({inner})"

        text = "+".join((fmt(self.arrival, self.arrival_params),
                         fmt(self.etm, self.etm_params)))
        text += "/" + fmt(self.scheduler, self.scheduler_params)
        if self.deadline_factor:
            text += f"!d{self.deadline_factor:g}"
        return f"{text}@seed{self.seed}"

    def context(self) -> Dict[str, Any]:
        """JSON-friendly view used in stream derivation and cache keys."""
        return {
            "arrival": [self.arrival, [list(item) for item
                                       in self.arrival_params]],
            "etm": [self.etm, [list(item) for item in self.etm_params]],
            "scheduler": [self.scheduler, [list(item) for item
                                           in self.scheduler_params]],
            "seed": self.seed,
            "deadline_factor": self.deadline_factor,
        }


def canonical_scenario(
        scenario: Optional[ScenarioSpec]) -> Optional[ScenarioSpec]:
    """Map the default scenario (or ``None``) to ``None``.

    Cache keys and sweep memo keys include the scenario component only
    when this returns a spec, which keeps every pre-scenario fingerprint
    byte-identical (mirroring ``canonical_runtime_selection``).
    """
    if scenario is None or scenario.is_default:
        return None
    return scenario
