"""Built-in scheduler policies applied to the simulated ready queues.

The paper's Picos hardware (and the Nanos software fallback) serve
ready tasks strictly FIFO.  A scheduler policy replaces the *choice of
which queued entry to pop* while leaving every cost model, handshake
and queue-capacity effect intact: the policy sees the queue's current
entries plus a :class:`TaskView` resolving each entry to its task's
payload and deadline, and returns the index to dequeue.

``select`` must be a pure function of ``(items, view, stream draws)``:
the simulation is single-threaded and deterministic, so a seeded stream
makes even the ``random`` policy bit-reproducible across backends.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.registry import register_scheduler
from repro.scenario.stream import Pcg64Stream

__all__ = ["TaskView", "FifoScheduler", "PriorityScheduler",
           "RandomScheduler", "LifoScheduler"]


class TaskView:
    """Resolves ready-queue entries to task attributes for policies.

    Queue entries are either software task indices (Nanos software
    scheduler queue) or ``ReadyTask`` packets carrying a ``sw_id``
    (Picos work-fetch queue); :meth:`sw_id` normalises both.
    """

    def __init__(self, payloads: Sequence[int],
                 deadlines: Sequence[Optional[int]]) -> None:
        self._payloads = payloads
        self._deadlines = deadlines

    @staticmethod
    def sw_id(item: object) -> int:
        if isinstance(item, int):
            return item
        return int(getattr(item, "sw_id"))

    def payload(self, sw_id: int) -> int:
        if 0 <= sw_id < len(self._payloads):
            return self._payloads[sw_id]
        return 0

    def deadline(self, sw_id: int) -> Optional[int]:
        if 0 <= sw_id < len(self._deadlines):
            return self._deadlines[sw_id]
        return None


@register_scheduler("fifo", tags=("builtin", "paper"))
class FifoScheduler:
    """The paper's policy: first-in first-out (hot path untouched)."""

    #: Marks this policy as the identity — no selector is installed, so
    #: the queues keep their zero-overhead ``popleft`` fast path.
    passthrough = True

    def select(self, items: Sequence[object], view: TaskView,
               stream: Pcg64Stream) -> int:
        return 0


@register_scheduler("priority", tags=("builtin",))
class PriorityScheduler:
    """Earliest-deadline-first, falling back to shortest-job-first.

    Entries with a deadline always outrank entries without one; ties
    break on the smaller software task id so the order is total and
    reproducible.
    """

    def select(self, items: Sequence[object], view: TaskView,
               stream: Pcg64Stream) -> int:
        best_index = 0
        best_key = None
        for index, item in enumerate(items):
            sw_id = view.sw_id(item)
            deadline = view.deadline(sw_id)
            key = ((0, deadline, sw_id) if deadline is not None
                   else (1, view.payload(sw_id), sw_id))
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return best_index


@register_scheduler("random", tags=("builtin",))
class RandomScheduler:
    """Uniform random pick from the ready entries (seeded stream)."""

    def select(self, items: Sequence[object], view: TaskView,
               stream: Pcg64Stream) -> int:
        return stream.randrange(len(items))


@register_scheduler("lifo", tags=("builtin", "work-stealing"))
class LifoScheduler:
    """Newest-first pick — the work-stealing owner's LIFO discipline.

    Serving the most recently enqueued ready task models the hot-cache
    owner path of a work-stealing deque (the FIFO default corresponds
    to the thief path).
    """

    def select(self, items: Sequence[object], view: TaskView,
               stream: Pcg64Stream) -> int:
        return len(items) - 1
