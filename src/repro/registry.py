"""Plugin registries for workloads and runtimes.

Scenario growth used to require cross-layer edits: a new benchmark meant
hand-editing three parallel dicts in :mod:`repro.eval.experiments`
(``CASE_BUILDERS``, ``CASE_RUNTIMES``, ``_COMPARED_RUNTIMES``) plus the
CLI.  This module turns both axes into drop-in plugins:

* :func:`register_workload` — decorate a case-builder function (keyword
  arguments → :class:`~repro.runtime.task.TaskProgram`) with a name, tags
  and default parameters.  A workload may also declare ``paper_cases``, a
  callable returning the :class:`CaseInput` list it contributes to the
  Figure 9 sweep.
* :func:`register_runtime` — decorate a :class:`~repro.runtime.base.Runtime`
  subclass with a name, tags and a ``rank`` fixing the paper's plotting
  order.

``repro.apps.*`` and ``repro.runtime.*`` self-register on import; any
registry lookup triggers those imports lazily (:func:`_ensure_populated`),
so ``import repro.registry`` alone is enough to see every built-in entry.
Third-party code registers the same way — see ``examples/custom_workload.py``
and ``docs/extending.md``.

Name lookups never raise a bare :class:`KeyError`: unknown names raise
:class:`RegistryError` with a did-you-mean suggestion and the full list of
registered names (:func:`suggest`).
"""

from __future__ import annotations

import difflib
import hashlib
import importlib
import importlib.util
import os
import sys
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.common.errors import ReproError

__all__ = [
    "RegistryError",
    "CaseInput",
    "WorkloadSpec",
    "RuntimeSpec",
    "ScenarioComponentSpec",
    "Registry",
    "WORKLOADS",
    "RUNTIMES",
    "ARRIVALS",
    "ETMS",
    "SCHEDULERS",
    "register_workload",
    "register_runtime",
    "register_arrival",
    "register_etm",
    "register_scheduler",
    "ensure_workload",
    "ensure_runtime",
    "ensure_arrival",
    "ensure_etm",
    "ensure_scheduler",
    "load_plugin",
    "plugin_file_of",
    "workload",
    "runtime",
    "arrival",
    "etm",
    "scheduler",
    "workload_names",
    "runtime_names",
    "arrival_names",
    "etm_names",
    "scheduler_names",
    "case_runtime_names",
    "compared_runtime_names",
    "scaled_size",
    "suggest",
]


class RegistryError(ReproError):
    """A registry was asked for an unknown name or given a duplicate one."""


def suggest(name: str, known: Sequence[str]) -> str:
    """A human-readable "did you mean …?" suffix for an unknown ``name``."""
    matches = difflib.get_close_matches(name, list(known), n=1, cutoff=0.5)
    hint = f" — did you mean {matches[0]!r}?" if matches else ""
    return f"{hint} (registered: {', '.join(sorted(known)) or 'none'})"


def scaled_size(value: int, scale: float, minimum: int = 1) -> int:
    """Scale a problem-size parameter, clamped to ``minimum``.

    Shared by every workload's ``paper_cases`` enumeration so reduced-scale
    sweeps shrink all benchmarks the same way.
    """
    return max(int(round(value * scale)), minimum)


@dataclass(frozen=True)
class CaseInput:
    """One benchmark input a workload contributes to the Figure 9 sweep.

    ``benchmark`` is the report/series name (may differ from the workload
    name: the two stream variants share one builder), ``label`` the x-axis
    label and ``params`` the builder keyword arguments.
    """

    benchmark: str
    label: str
    params: Mapping[str, object]


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry describing one workload (task-program builder).

    ``builder`` maps keyword arguments to a
    :class:`~repro.runtime.task.TaskProgram`; ``defaults`` are the keyword
    arguments a bare ``build()`` uses; ``paper_cases`` (optional) enumerates
    the benchmark inputs the workload contributes to sweeps, as
    ``paper_cases(quick=..., scale=...) -> List[CaseInput]``.
    """

    name: str
    builder: Callable
    tags: Tuple[str, ...] = ()
    defaults: Tuple[Tuple[str, object], ...] = ()
    description: str = ""
    paper_cases: Optional[Callable[..., List[CaseInput]]] = None

    def build(self, **params: object):
        """Build the workload's task program (defaults merged under params)."""
        merged = dict(self.defaults)
        merged.update(params)
        return self.builder(**merged)

    def cases(self, quick: bool = False, scale: float = 1.0) -> List[CaseInput]:
        """The benchmark inputs this workload contributes to a sweep.

        Workloads registered without ``paper_cases`` contribute one case
        built from their default parameters.
        """
        if self.paper_cases is not None:
            return list(self.paper_cases(quick=quick, scale=scale))
        return [CaseInput(self.name, "default", dict(self.defaults))]


@dataclass(frozen=True)
class RuntimeSpec:
    """Registry entry describing one runtime model.

    ``rank`` fixes presentation order (the paper plots serial, Nanos-SW,
    Nanos-RV, Phentos); registration order is deliberately irrelevant so
    plugin import order cannot reshuffle reports.  Tags give runtimes their
    roles: ``baseline`` (the serial reference), ``case`` (runs in every
    Figure 9 case), ``compared`` (plotted in Figures 8/9/10).
    """

    name: str
    cls: Type
    tags: Tuple[str, ...] = ()
    rank: int = 100
    description: str = ""

    def create(self, config=None):
        """Instantiate the runtime under ``config``."""
        return self.cls(config)


@dataclass(frozen=True)
class ScenarioComponentSpec:
    """Registry entry for one stochastic-scenario component.

    Shared by the arrival-model, execution-time-model and scheduler
    registries: ``factory`` maps keyword arguments to a model instance
    (see :mod:`repro.scenario` for the three protocols), ``defaults``
    are merged under user parameters exactly like workload defaults.
    """

    name: str
    factory: Callable
    tags: Tuple[str, ...] = ()
    defaults: Tuple[Tuple[str, object], ...] = ()
    description: str = ""

    def create(self, **params: object):
        """Instantiate the component (defaults merged under params)."""
        merged = dict(self.defaults)
        merged.update(params)
        return self.factory(**merged)


class Registry:
    """An ordered, name-keyed plugin registry with tag filtering."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, object] = {}

    def add(self, spec) -> None:
        """Register ``spec``; duplicate names are rejected."""
        name = spec.name
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} name must be a non-empty string")
        existing = self._entries.get(name)
        if existing is not None and existing != spec:
            raise RegistryError(
                f"duplicate {self.kind} name {name!r}: already registered "
                f"as {existing!r}"
            )
        self._entries[name] = spec

    def remove(self, name: str) -> None:
        """Drop ``name`` (for tests and plugin teardown); unknown is a no-op."""
        self._entries.pop(name, None)

    def get(self, name: str):
        """The spec registered under ``name`` (did-you-mean on unknown)."""
        _ensure_populated()
        spec = self._entries.get(name)
        if spec is None:
            raise RegistryError(
                f"unknown {self.kind} {name!r}"
                f"{suggest(name, list(self._entries))}"
            )
        return spec

    def names(self, tags: Optional[Sequence[str]] = None) -> List[str]:
        """Registered names in registration order, optionally tag-filtered."""
        return [spec.name for spec in self.specs(tags)]

    def specs(self, tags: Optional[Sequence[str]] = None) -> List[object]:
        """Registered specs in registration order, optionally tag-filtered.

        ``tags`` selects specs carrying *every* listed tag.
        """
        _ensure_populated()
        selected = list(self._entries.values())
        if tags:
            wanted = set(tags)
            selected = [spec for spec in selected
                        if wanted.issubset(set(spec.tags))]
        return selected

    def registered(self) -> List[object]:
        """Specs registered *so far*, without triggering the lazy imports.

        For self-registration call sites (``repro.runtime.__init__`` builds
        its legacy ``RUNTIMES`` dict mid-import); everyone else should use
        :meth:`specs`, which guarantees the built-ins are loaded.
        """
        return list(self._entries.values())

    def __contains__(self, name: object) -> bool:
        _ensure_populated()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        _ensure_populated()
        return iter(list(self._entries))

    def __len__(self) -> int:
        _ensure_populated()
        return len(self._entries)


#: The global workload registry (``repro.apps.*`` self-register on import).
WORKLOADS = Registry("workload")

#: The global runtime registry (``repro.runtime.*`` self-register on import).
RUNTIMES = Registry("runtime")

#: Arrival models for stochastic scenarios (``repro.scenario`` built-ins).
ARRIVALS = Registry("arrival")

#: Execution-time models for stochastic scenarios.
ETMS = Registry("etm")

#: Scheduler policies applied to the simulated ready queues.
SCHEDULERS = Registry("scheduler")

_populated = False


def _ensure_populated() -> None:
    """Import the built-in workload/runtime packages exactly once.

    Registration happens as a side effect of importing ``repro.apps`` and
    ``repro.runtime``, so a bare ``import repro.registry`` followed by any
    lookup sees every built-in entry without eager imports at module load.
    """
    global _populated
    if _populated:
        return
    _populated = True  # set first: the imports below re-enter via decorators
    import repro.apps  # noqa: F401  (self-registration side effect)
    import repro.runtime  # noqa: F401  (self-registration side effect)
    import repro.scenario  # noqa: F401  (self-registration side effect)


def register_workload(
    name: str,
    tags: Sequence[str] = (),
    defaults: Optional[Mapping[str, object]] = None,
    description: str = "",
    paper_cases: Optional[Callable[..., List[CaseInput]]] = None,
) -> Callable:
    """Decorator registering a case-builder function as a workload.

    The builder takes keyword arguments and returns a
    :class:`~repro.runtime.task.TaskProgram`.  ``name`` becomes the
    :attr:`BenchmarkCase.builder <repro.eval.experiments.BenchmarkCase>`
    key, so it is part of every case cache fingerprint — rename a workload
    and its cached results are (correctly) never addressed again.
    """
    def decorate(builder: Callable) -> Callable:
        WORKLOADS.add(WorkloadSpec(
            name=name,
            builder=builder,
            tags=tuple(tags),
            defaults=tuple(sorted((defaults or {}).items())),
            description=description or (builder.__doc__ or "").strip()
                .split("\n")[0],
            paper_cases=paper_cases,
        ))
        return builder
    return decorate


def register_runtime(
    name: str,
    tags: Sequence[str] = (),
    rank: int = 100,
    description: str = "",
) -> Callable:
    """Decorator registering a :class:`Runtime` subclass under ``name``."""
    def decorate(cls: Type) -> Type:
        RUNTIMES.add(RuntimeSpec(
            name=name,
            cls=cls,
            tags=tuple(tags),
            rank=rank,
            description=description or (cls.__doc__ or "").strip()
                .split("\n")[0],
        ))
        return cls
    return decorate


def _register_scenario_component(
    registry: Registry,
    name: str,
    tags: Sequence[str],
    defaults: Optional[Mapping[str, object]],
    description: str,
) -> Callable:
    def decorate(factory: Callable) -> Callable:
        registry.add(ScenarioComponentSpec(
            name=name,
            factory=factory,
            tags=tuple(tags),
            defaults=tuple(sorted((defaults or {}).items())),
            description=description or (factory.__doc__ or "").strip()
                .split("\n")[0],
        ))
        return factory
    return decorate


def register_arrival(
    name: str,
    tags: Sequence[str] = (),
    defaults: Optional[Mapping[str, object]] = None,
    description: str = "",
) -> Callable:
    """Decorator registering an arrival-model factory under ``name``.

    The factory maps keyword arguments to an object exposing
    ``inter_arrivals(stream, count, mean_task_cycles) -> List[int]``
    (see :mod:`repro.scenario.arrivals`).  Like workload names, the
    name enters the cache fingerprint of every case that selects it.
    """
    return _register_scenario_component(ARRIVALS, name, tags, defaults,
                                        description)


def register_etm(
    name: str,
    tags: Sequence[str] = (),
    defaults: Optional[Mapping[str, object]] = None,
    description: str = "",
) -> Callable:
    """Decorator registering an execution-time-model factory.

    The factory maps keyword arguments to an object exposing
    ``sample(stream, nominal_cycles) -> int``
    (see :mod:`repro.scenario.etm`).
    """
    return _register_scenario_component(ETMS, name, tags, defaults,
                                        description)


def register_scheduler(
    name: str,
    tags: Sequence[str] = (),
    defaults: Optional[Mapping[str, object]] = None,
    description: str = "",
) -> Callable:
    """Decorator registering a scheduler-policy factory.

    The factory maps keyword arguments to an object exposing
    ``select(items, view, stream) -> int`` (an index into ``items``), or
    carrying ``passthrough = True`` for the paper's FIFO hot path
    (see :mod:`repro.scenario.schedulers`).
    """
    return _register_scenario_component(SCHEDULERS, name, tags, defaults,
                                        description)


#: Module-name prefix of plugins loaded from a ``.py`` file path.  Such
#: synthetic modules are not importable by name in another process, so the
#: parallel runner ships their *file path* to workers instead of a pickled
#: reference (see :func:`plugin_file_of`).
PLUGIN_MODULE_PREFIX = "repro_plugin_"


def load_plugin(spec: str) -> None:
    """Import one plugin: a dotted module name, or a path to a ``.py`` file.

    File plugins load under a stable synthetic module name
    (:data:`PLUGIN_MODULE_PREFIX` + a digest of the absolute path), so
    loading the same file twice — CLI flag and environment both naming
    it, or a pool worker re-loading what its parent loaded — is a no-op
    rather than a duplicate registration.  Failures raise
    :class:`RegistryError` naming the plugin.
    """
    if spec.endswith(".py") or os.sep in spec:
        path = os.path.abspath(spec)
        module_name = (PLUGIN_MODULE_PREFIX
                       + hashlib.sha256(path.encode()).hexdigest()[:12])
        if module_name in sys.modules:
            return
        module_spec = importlib.util.spec_from_file_location(module_name,
                                                             path)
        if module_spec is None or module_spec.loader is None:
            raise RegistryError(f"cannot load plugin file {spec!r}")
        module = importlib.util.module_from_spec(module_spec)
        sys.modules[module_name] = module
        try:
            module_spec.loader.exec_module(module)
        except Exception as exc:
            del sys.modules[module_name]
            raise RegistryError(
                f"plugin file {spec!r} failed to import: {exc}") from exc
    else:
        try:
            importlib.import_module(spec)
        except Exception as exc:
            raise RegistryError(
                f"plugin module {spec!r} failed to import: {exc}") from exc


def plugin_file_of(obj: object) -> Optional[str]:
    """The source file of a file-loaded plugin object, else ``None``.

    Returns the ``.py`` path when ``obj`` was defined in a module loaded
    through :func:`load_plugin`'s file path branch — the form a pool
    worker must re-load by path, because the synthetic module name cannot
    be imported in another process.  ``None`` for objects from normally
    importable modules (which pickle by reference just fine).
    """
    module_name = getattr(obj, "__module__", "") or ""
    if not module_name.startswith(PLUGIN_MODULE_PREFIX):
        return None
    module = sys.modules.get(module_name)
    return getattr(module, "__file__", None)


def ensure_workload(name: str, builder: Callable) -> None:
    """Idempotently register ``builder`` under ``name`` if absent.

    The process-pool runner ships plugin builders to worker processes by
    reference and re-registers them there (a spawned worker imports only
    the ``repro`` built-ins), so a case whose builder name is not a
    built-in still resolves.  A no-op when the name is already registered.
    """
    if name not in WORKLOADS:
        WORKLOADS.add(WorkloadSpec(name=name, builder=builder))


def ensure_runtime(name: str, cls: Type, rank: int = 100) -> None:
    """Idempotently register runtime ``cls`` under ``name`` if absent.

    The worker-side counterpart of :func:`ensure_workload` for plugin
    runtime selections.
    """
    if name not in RUNTIMES:
        RUNTIMES.add(RuntimeSpec(name=name, cls=cls, rank=rank))


def ensure_arrival(name: str, factory: Callable) -> None:
    """Idempotently register arrival ``factory`` under ``name`` if absent.

    The worker-side counterpart of :func:`ensure_workload` for plugin
    arrival models shipped to pool workers by reference.
    """
    if name not in ARRIVALS:
        ARRIVALS.add(ScenarioComponentSpec(name=name, factory=factory))


def ensure_etm(name: str, factory: Callable) -> None:
    """Idempotently register ETM ``factory`` under ``name`` if absent."""
    if name not in ETMS:
        ETMS.add(ScenarioComponentSpec(name=name, factory=factory))


def ensure_scheduler(name: str, factory: Callable) -> None:
    """Idempotently register scheduler ``factory`` under ``name`` if absent."""
    if name not in SCHEDULERS:
        SCHEDULERS.add(ScenarioComponentSpec(name=name, factory=factory))


def workload(name: str) -> WorkloadSpec:
    """Look up one workload spec by name (did-you-mean on unknown)."""
    return WORKLOADS.get(name)


def runtime(name: str) -> RuntimeSpec:
    """Look up one runtime spec by name (did-you-mean on unknown)."""
    return RUNTIMES.get(name)


def arrival(name: str) -> ScenarioComponentSpec:
    """Look up one arrival-model spec by name (did-you-mean on unknown)."""
    return ARRIVALS.get(name)


def etm(name: str) -> ScenarioComponentSpec:
    """Look up one execution-time-model spec by name."""
    return ETMS.get(name)


def scheduler(name: str) -> ScenarioComponentSpec:
    """Look up one scheduler-policy spec by name."""
    return SCHEDULERS.get(name)


def workload_names(tags: Optional[Sequence[str]] = None) -> List[str]:
    """Registered workload names, optionally filtered to ``tags``."""
    return WORKLOADS.names(tags)


def runtime_names(tags: Optional[Sequence[str]] = None) -> List[str]:
    """Registered runtime names in rank order, optionally tag-filtered."""
    return [spec.name
            for spec in sorted(RUNTIMES.specs(tags), key=lambda s: s.rank)]


def arrival_names(tags: Optional[Sequence[str]] = None) -> List[str]:
    """Registered arrival-model names, optionally filtered to ``tags``."""
    return ARRIVALS.names(tags)


def etm_names(tags: Optional[Sequence[str]] = None) -> List[str]:
    """Registered execution-time-model names."""
    return ETMS.names(tags)


def scheduler_names(tags: Optional[Sequence[str]] = None) -> List[str]:
    """Registered scheduler-policy names."""
    return SCHEDULERS.names(tags)


def case_runtime_names() -> List[str]:
    """Runtimes every benchmark case runs on, in the paper's order."""
    return runtime_names(tags=("case",))


def compared_runtime_names() -> List[str]:
    """Runtimes plotted in Figures 8/9/10, in the paper's order."""
    return runtime_names(tags=("compared",))
