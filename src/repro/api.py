"""The unified Study API: one fluent front door for every execution mode.

A :class:`Study` describes *what* to evaluate — workloads (by name or tag),
runtimes, core counts, problem scale — and :meth:`Study.run` dispatches to
the right :class:`~repro.harness.engine.ExperimentEngine` machinery: a
single-machine benchmark sweep, a multi-core grid, or a full scaling study
with MTT bounds.  Everything comes back as one typed :class:`StudyResult`
that round-trips through the artifact codec
(:mod:`repro.harness.artifacts`).

    from repro.api import Study

    result = (Study()
              .workloads("jacobi", tags=["memory-bound"])
              .runtimes("phentos", "nanos-rv")
              .cores(1, 64)
              .quick()
              .run(jobs=8))
    print(result.geomean("phentos"))

Workloads and runtimes resolve through the plugin registries
(:mod:`repro.registry`), so a third-party workload registered with
``@register_workload`` is studyable with no further wiring — see
``examples/custom_workload.py`` and ``docs/extending.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro import registry
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import (
    BenchmarkCase,
    BenchmarkRun,
    checked_geometric_mean,
)
from repro.eval.scaling import ScalingCurve
from repro.scenario import ScenarioSpec, canonical_scenario

if TYPE_CHECKING:  # imported lazily at runtime (harness imports this module)
    from repro.harness.executor import UnitFailure

__all__ = ["Study", "StudyResult", "StudySweep"]


@dataclass(frozen=True)
class StudySweep:
    """All benchmark runs of one core count (and seed) of a study.

    ``seed`` is the stochastic-scenario seed the sweep ran under, or
    ``None`` for a deterministic (scenario-free) sweep.
    """

    cores: int
    runs: Tuple[BenchmarkRun, ...]
    seed: Optional[int] = None


@dataclass
class StudyResult:
    """The typed outcome of one :meth:`Study.run` invocation.

    ``sweeps`` holds the per-core-count benchmark runs (one entry for a
    plain study, one per grid column for a scaling study) and ``curves``
    the assembled :class:`~repro.eval.scaling.ScalingCurve` records when
    more than one core count was requested.  ``failures`` lists the
    :class:`~repro.harness.executor.UnitFailure` records of a
    :meth:`Study.keep_going` study whose sweep lost units — empty means
    the results are complete.  The whole record round-trips through
    :func:`repro.harness.artifacts.encode` / ``decode``.
    """

    label: str
    workloads: Tuple[str, ...]
    runtimes: Tuple[str, ...]
    core_counts: Tuple[int, ...]
    quick: bool
    scale: float
    sweeps: Tuple[StudySweep, ...] = ()
    curves: Tuple[ScalingCurve, ...] = ()
    failures: Tuple["UnitFailure", ...] = ()
    #: Where the study's telemetry trace was recorded (``Study.trace``),
    #: or None for an untraced study.
    trace_path: Optional[str] = None
    #: Human-readable description of the stochastic scenario
    #: (:meth:`~repro.scenario.ScenarioSpec.describe`), or ``None`` for a
    #: deterministic study.
    scenario: Optional[str] = None
    #: The seeds the scenario ran under (one :class:`StudySweep` per
    #: core count per seed); empty for a deterministic study.
    seeds: Tuple[int, ...] = ()

    @property
    def case_keys(self) -> List[str]:
        """Stable case identifiers of the study, in sweep order."""
        if not self.sweeps:
            return []
        return [run.case.key for run in self.sweeps[0].runs]

    def sweep_at(self, cores: int,
                 seed: Optional[int] = None) -> StudySweep:
        """The sweep executed at ``cores`` simulated cores.

        For a seeded study, ``seed`` selects among the per-seed sweeps of
        that core count (default: the first seed's).
        """
        for sweep in self.sweeps:
            if sweep.cores == cores and (seed is None or sweep.seed == seed):
                return sweep
        raise EvaluationError(
            f"study {self.label!r} has no {cores}-core sweep"
            f"{'' if seed is None else f' at seed {seed}'}; "
            f"core counts: {list(self.core_counts)}; "
            f"seeds: {list(self.seeds)}"
        )

    def runs(self, cores: Optional[int] = None) -> List[BenchmarkRun]:
        """Benchmark runs at ``cores`` (default: the widest machine)."""
        if not self.sweeps:
            return []
        if cores is None:
            return list(self.sweeps[-1].runs)
        return list(self.sweep_at(cores).runs)

    def speedups(self, runtime: str,
                 cores: Optional[int] = None) -> Dict[str, float]:
        """Speedup over serial per case for ``runtime`` at ``cores``."""
        return {run.case.key: run.speedup_vs_serial(runtime)
                for run in self.runs(cores)}

    def geomean(self, runtime: str, cores: Optional[int] = None) -> float:
        """Geometric-mean speedup over serial of ``runtime`` at ``cores``."""
        values = list(self.speedups(runtime, cores).values())
        return checked_geometric_mean(
            values, "study", f"{runtime} speedups ({self.label})")


def _study_label(workloads: Optional[Sequence[str]],
                 tags: Optional[Sequence[str]],
                 counts: Sequence[int]) -> str:
    """Default study label, e.g. ``study:jacobi+stream@1,8,64c``."""
    if workloads:
        scope = "+".join(workloads)
    elif tags:
        scope = "tag:" + "+".join(tags)
    else:
        scope = "paper"
    cores = ",".join(str(count) for count in counts)
    return f"study:{scope}@{cores}c"


class Study:
    """Fluent builder describing one evaluation study.

    Every chainable method validates eagerly (unknown workload/runtime
    names fail at the call site, with a did-you-mean suggestion) and
    returns ``self``; :meth:`run` executes the study through one
    :class:`~repro.harness.engine.ExperimentEngine` and returns a
    :class:`StudyResult`.
    """

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        self._config = config if config is not None else SimConfig()
        self._workloads: Optional[List[str]] = None
        self._workload_tags: Optional[List[str]] = None
        self._runtimes: Optional[List[str]] = None
        self._cases: Optional[List[BenchmarkCase]] = None
        self._cores: Optional[List[int]] = None
        self._quick = False
        self._scale = 1.0
        self._keep_going = False
        self._retries = 1
        self._arrival: Optional[Tuple[str, dict]] = None
        self._etm: Optional[Tuple[str, dict]] = None
        self._scheduler: Optional[Tuple[str, dict]] = None
        self._deadline_factor = 0.0
        self._seeds: Optional[List[int]] = None
        self._label: Optional[str] = None
        self._cache_dir = None
        self._cache_budget = None
        self._artifact_dir: Optional[Path] = None
        self._bench_path: Optional[Path] = None
        self._trace_path: Optional[Path] = None

    # ------------------------------------------------------------------ #
    # Scenario selection
    # ------------------------------------------------------------------ #
    def workloads(self, *names: str,
                  tags: Optional[Sequence[str]] = None) -> "Study":
        """Select workloads by registry name and/or tag.

        With names, the study sweeps exactly those workloads (optionally
        narrowed to the ones carrying every tag); with only ``tags``, every
        registered workload carrying them; with neither, the paper's
        Figure 9 set.
        """
        for name in names:
            registry.workload(name)  # did-you-mean on unknown, eagerly
        self._workloads = list(dict.fromkeys(names)) if names else None
        self._workload_tags = list(tags) if tags else None
        return self

    def runtimes(self, *names: str) -> "Study":
        """Select the runtimes to compare (default: the paper's three).

        The serial baseline always runs — every speedup is measured
        against it — so it need not (and cannot) be selected here.
        """
        if not names:
            raise EvaluationError("Study.runtimes() needs at least one name")
        for name in names:
            if name == "serial":
                raise EvaluationError(
                    "the serial baseline always runs; select the runtimes "
                    "to compare against it"
                )
            registry.runtime(name)  # did-you-mean on unknown, eagerly
        self._runtimes = list(dict.fromkeys(names))
        return self

    def cases(self, *cases: BenchmarkCase) -> "Study":
        """Sweep an explicit case list instead of registry-derived one."""
        if not cases:
            raise EvaluationError("Study.cases() needs at least one case")
        self._cases = list(cases)
        return self

    def cores(self, *counts: int) -> "Study":
        """Simulated core counts; more than one turns on scaling curves."""
        if not counts:
            raise EvaluationError("Study.cores() needs at least one count")
        for count in counts:
            if not isinstance(count, int) or count <= 0:
                raise EvaluationError(
                    f"core counts must be positive integers, got {count!r}"
                )
        self._cores = sorted(set(counts))
        return self

    # ------------------------------------------------------------------ #
    # Stochastic scenario
    # ------------------------------------------------------------------ #
    def arrivals(self, name: str, **params: object) -> "Study":
        """Release tasks over time via a registered arrival model.

        ``name`` resolves through the arrival registry (``"periodic"``,
        ``"poisson"``, ``"bursty"`` built in; ``"none"`` restores the
        default everything-ready-at-once behaviour).  ``params`` override
        the model's registered defaults, e.g. ``arrivals("bursty",
        load=0.8, burst=16)``.
        """
        if name != "none":
            registry.arrival(name)  # did-you-mean on unknown, eagerly
        self._arrival = (name, dict(params))
        return self

    def etm(self, name: str, **params: object) -> "Study":
        """Perturb task execution times via an execution-time model.

        ``name`` resolves through the ETM registry (``"constant"``,
        ``"uniform"``, ``"lognormal"`` built in; ``"none"`` keeps nominal
        payloads).
        """
        if name != "none":
            registry.etm(name)  # did-you-mean on unknown, eagerly
        self._etm = (name, dict(params))
        return self

    def scheduler(self, name: str, **params: object) -> "Study":
        """Reorder ready queues via a registered scheduler policy.

        ``name`` resolves through the scheduler registry (``"fifo"`` —
        the paper's Picos order and the default — plus ``"priority"``,
        ``"random"`` and ``"lifo"``).
        """
        registry.scheduler(name)  # did-you-mean on unknown, eagerly
        self._scheduler = (name, dict(params))
        return self

    def deadlines(self, factor: float) -> "Study":
        """Stamp per-task deadlines at ``factor`` × payload after release.

        Deadline misses are counted per run in the ``scenario.*`` stats;
        0 (the default) disables deadlines.
        """
        if factor < 0:
            raise EvaluationError("deadline factor must be >= 0")
        self._deadline_factor = float(factor)
        return self

    def seeds(self, *values: int) -> "Study":
        """Run the scenario under these explicit seeds, one sweep each.

        Each seed produces its own :class:`StudySweep` per core count
        (``StudySweep.seed`` says which); use ``.seeds(*range(5))`` for a
        5-replicate study.  Same (scenario, seed) always reproduces
        byte-identical results.
        """
        if not values:
            raise EvaluationError("Study.seeds() needs at least one seed")
        for value in values:
            if not isinstance(value, int) or isinstance(value, bool):
                raise EvaluationError(
                    f"seeds must be integers, got {value!r}")
        self._seeds = list(dict.fromkeys(values))
        return self

    def _scenario_spec(self) -> Optional[ScenarioSpec]:
        """The study's base scenario (seed 0), or ``None`` if untouched."""
        if (self._arrival is None and self._etm is None
                and self._scheduler is None and not self._deadline_factor
                and self._seeds is None):
            return None
        arrival, arrival_params = self._arrival or ("none", {})
        etm, etm_params = self._etm or ("none", {})
        scheduler, scheduler_params = self._scheduler or ("fifo", {})
        return ScenarioSpec.make(
            arrival=arrival, arrival_params=arrival_params,
            etm=etm, etm_params=etm_params,
            scheduler=scheduler, scheduler_params=scheduler_params,
            seed=0, deadline_factor=self._deadline_factor,
        )

    # ------------------------------------------------------------------ #
    # Execution knobs
    # ------------------------------------------------------------------ #
    def quick(self, enabled: bool = True) -> "Study":
        """Use the reduced (quick) input set of every workload."""
        self._quick = enabled
        return self

    def scale(self, factor: float) -> "Study":
        """Shrink problem sizes proportionally (``0 < factor <= 1``)."""
        if factor <= 0:
            raise EvaluationError("scale must be positive")
        self._scale = factor
        return self

    def keep_going(self, enabled: bool = True) -> "Study":
        """Deliver partial results instead of failing the whole study.

        With this set, a sweep unit that fails every retry becomes a
        :class:`~repro.harness.executor.UnitFailure` on
        :attr:`StudyResult.failures` while every other unit completes
        (and lands in the cache); without it, failures raise one
        aggregated :class:`~repro.harness.executor.SweepError`.
        """
        self._keep_going = enabled
        return self

    def retries(self, count: int) -> "Study":
        """Re-attempts per failed sweep unit, each in a fresh worker.

        Default 1: one retry guards against transient worker failures and
        poisoned interpreter state; 0 disables retrying.
        """
        if count < 0:
            raise EvaluationError("retries must be >= 0")
        self._retries = count
        return self

    def label(self, text: str) -> "Study":
        """Name the study (used for artifacts and bench attribution)."""
        self._label = text
        return self

    def cache(self, cache_dir, budget=None) -> "Study":
        """Enable the result cache.

        ``cache_dir`` is a directory path, a ``mem:``/``dir:``/
        ``sharded:``/``tiered:LOCAL|SHARED`` spec string, or a pre-built
        :class:`~repro.harness.cache.CacheStore`.  ``budget`` bounds the
        store's size (bytes or a ``512M``-style string) with LRU
        eviction; default unbounded (or ``$REPRO_CACHE_BUDGET``).
        """
        self._cache_dir = (Path(cache_dir)
                           if isinstance(cache_dir, (str, Path))
                           and ":" not in str(cache_dir) else cache_dir)
        self._cache_budget = budget
        return self

    def artifacts(self, artifact_dir) -> "Study":
        """Archive the :class:`StudyResult` as JSON under ``artifact_dir``."""
        self._artifact_dir = Path(artifact_dir)
        return self

    def bench(self, trajectory_path) -> "Study":
        """Record per-case sweep timings into a perf trajectory file."""
        self._bench_path = Path(trajectory_path)
        return self

    def trace(self, trace_path) -> "Study":
        """Record the study's telemetry stream as JSONL under ``path``.

        The trace carries the run manifest, the phase/sweep/unit span
        hierarchy and the cache/pool counters
        (:mod:`repro.harness.telemetry`); digest it with
        ``python -m repro trace summary PATH``.  The recorded path comes
        back on :attr:`StudyResult.trace_path`.
        """
        self._trace_path = Path(trace_path)
        return self

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, jobs: int = 1, engine=None,
            progress=None) -> StudyResult:
        """Execute the study and return its :class:`StudyResult`.

        ``jobs`` is the host process fan-out of the benchmark sweep.  A
        pre-built engine may be injected (its cache/memo is then shared
        with other studies); otherwise one is constructed from the study's
        knobs.  Single core count → one benchmark sweep
        (``ExperimentEngine.run("figure9")``); several → one batched grid
        plus assembled scaling curves against the MTT bounds.
        """
        # Imported lazily: the harness imports this module's result types
        # for its artifact codec, so the engine cannot be a top-level
        # import here.
        from repro.harness.engine import ExperimentEngine

        counts = (list(self._cores) if self._cores
                  else [self._config.machine.num_cores])
        label = self._label or _study_label(self._workloads,
                                            self._workload_tags, counts)
        owns_engine = engine is None
        if owns_engine:
            engine = ExperimentEngine(
                config=self._config,
                jobs=jobs,
                cache_dir=self._cache_dir,
                cache_budget=self._cache_budget,
                progress=progress,
                bench_path=self._bench_path,
                run_label=label,
                keep_going=self._keep_going,
                retries=self._retries,
                trace_path=self._trace_path,
            )
        failures_before = len(engine.unit_failures)
        try:
            cases = (list(self._cases) if self._cases is not None
                     else benchmark_cases_for(self._workloads,
                                              self._workload_tags,
                                              self._quick, self._scale))
            base_spec = self._scenario_spec()
            if base_spec is None:
                seeded: List[Tuple[Optional[int],
                                   Optional[ScenarioSpec]]] = [(None, None)]
            else:
                seed_values = (self._seeds if self._seeds is not None
                               else [base_spec.seed])
                seeded = [(seed, base_spec.with_seed(seed))
                          for seed in seed_values]
            curves: Tuple[ScalingCurve, ...] = ()
            if len(counts) > 1:
                # Scaling curves compare speedups, so they run under the
                # first seed only; per-seed spread lives in the sweeps.
                curves = tuple(engine.run(
                    "scaling_curves", quick=self._quick, scale=self._scale,
                    cases=cases, core_counts=counts,
                    runtimes=self._runtimes, scenario=seeded[0][1],
                ))
            sweeps = tuple(
                StudySweep(count, tuple(engine.run(
                    "figure9", quick=self._quick, scale=self._scale,
                    cases=cases, num_workers=count, runtimes=self._runtimes,
                    scenario=spec,
                )), seed=seed)
                for seed, spec in seeded
                for count in counts
            )
            # Memo-served partial sweeps re-report their failures (so a
            # shared engine cannot hide gaps); collapse the repeats.
            failures = tuple(dict.fromkeys(
                engine.unit_failures[failures_before:]))
        finally:
            if owns_engine:
                # An injected engine's warm pool belongs to the caller
                # (shared across studies); our own is done.
                engine.close()
        result = StudyResult(
            label=label,
            workloads=tuple(dict.fromkeys(run.case.builder
                                          for run in sweeps[0].runs)),
            runtimes=tuple(self._runtimes
                           if self._runtimes is not None
                           else registry.compared_runtime_names()),
            core_counts=tuple(counts),
            quick=self._quick,
            scale=self._scale,
            sweeps=sweeps,
            curves=curves,
            failures=failures,
            trace_path=(str(self._trace_path)
                        if self._trace_path is not None and owns_engine
                        else None),
            scenario=(seeded[0][1].describe()
                      if seeded[0][1] is not None
                      and canonical_scenario(seeded[0][1]) is not None
                      else None),
            seeds=tuple(seed for seed, _spec in seeded
                        if seed is not None),
        )
        if self._artifact_dir is not None:
            from repro.harness.artifacts import ArtifactStore
            store = ArtifactStore(self._artifact_dir)
            store.save(_artifact_name(label), result,
                       core_counts=list(counts), jobs=jobs)
        return result


def benchmark_cases_for(workloads: Optional[Sequence[str]],
                        tags: Optional[Sequence[str]],
                        quick: bool, scale: float) -> List[BenchmarkCase]:
    """The registry-derived case list of a study (shared with the CLI)."""
    from repro.eval.experiments import benchmark_cases
    return benchmark_cases(quick=quick, scale=scale,
                           workloads=workloads, tags=tags)


def _artifact_name(label: str) -> str:
    """A filesystem-safe artifact name for a study label."""
    safe = "".join(ch if ch.isalnum() or ch in "-_+," else "_"
                   for ch in label)
    return safe or "study"
