"""Address-space helpers: cache-line arithmetic and a simple allocator.

The runtimes and applications of this reproduction operate on *modelled*
memory: data structures (task descriptors, scheduler queues, application
blocks) are laid out in a synthetic 64-bit address space so that the cache
and coherence models can reason about which accesses share cache lines.
Nothing is ever stored at these addresses — only their line-granular
behaviour matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.common.config import CACHE_LINE_BYTES
from repro.common.errors import MemoryModelError

__all__ = ["line_of", "line_base", "span_lines", "MemoryRegion", "AddressAllocator"]


def line_of(address: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Cache-line index containing ``address``."""
    if address < 0:
        raise MemoryModelError(f"negative address {address:#x}")
    return address // line_bytes


def line_base(address: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Base byte address of the cache line containing ``address``."""
    return (address // line_bytes) * line_bytes


def span_lines(address: int, size: int,
               line_bytes: int = CACHE_LINE_BYTES) -> List[int]:
    """Cache-line indices touched by a ``size``-byte access at ``address``."""
    if size <= 0:
        raise MemoryModelError(f"access size must be positive, got {size}")
    first = line_of(address, line_bytes)
    last = line_of(address + size - 1, line_bytes)
    return list(range(first, last + 1))


@dataclass(frozen=True)
class MemoryRegion:
    """A named, contiguous region of the modelled address space."""

    name: str
    base: int
    size: int
    line_bytes: int = CACHE_LINE_BYTES

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise MemoryModelError(
                f"invalid region {self.name!r}: base={self.base}, size={self.size}"
            )

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    @property
    def lines(self) -> List[int]:
        """Every cache-line index covered by the region."""
        return span_lines(self.base, self.size, self.line_bytes)

    def address_of(self, offset: int) -> int:
        """Byte address at ``offset`` within the region (bounds checked)."""
        if not 0 <= offset < self.size:
            raise MemoryModelError(
                f"offset {offset} outside region {self.name!r} of size {self.size}"
            )
        return self.base + offset

    def element(self, index: int, element_size: int) -> int:
        """Address of the ``index``-th ``element_size``-byte element."""
        return self.address_of(index * element_size)

    def contains(self, address: int) -> bool:
        """True if ``address`` lies inside the region."""
        return self.base <= address < self.end

    def iter_elements(self, element_size: int) -> Iterator[int]:
        """Iterate over the address of every whole element in the region."""
        count = self.size // element_size
        for index in range(count):
            yield self.base + index * element_size


class AddressAllocator:
    """Bump allocator carving named regions out of the modelled address space.

    Allocations are cache-line aligned by default so that independently
    allocated structures never share a line unless a caller explicitly asks
    for packed allocation — mirroring the cache-aware data packing Phentos
    performs (design goal 6, Section V-B) and letting tests construct
    deliberate false-sharing scenarios.
    """

    def __init__(self, base: int = 0x1000_0000,
                 line_bytes: int = CACHE_LINE_BYTES) -> None:
        if base < 0:
            raise MemoryModelError("allocator base must be non-negative")
        self._next = base
        self.line_bytes = line_bytes
        self._regions: List[MemoryRegion] = []

    def allocate(self, name: str, size: int, align_to_line: bool = True) -> MemoryRegion:
        """Allocate a new region of ``size`` bytes."""
        if size <= 0:
            raise MemoryModelError(f"allocation size must be positive, got {size}")
        base = self._next
        if align_to_line and base % self.line_bytes:
            base += self.line_bytes - (base % self.line_bytes)
        region = MemoryRegion(name=name, base=base, size=size,
                              line_bytes=self.line_bytes)
        self._next = region.end
        self._regions.append(region)
        return region

    def allocate_array(self, name: str, element_size: int, count: int,
                       pad_to_line: bool = False) -> MemoryRegion:
        """Allocate an array; optionally pad each element to a full line."""
        if element_size <= 0 or count <= 0:
            raise MemoryModelError("element_size and count must be positive")
        stride = element_size
        if pad_to_line and stride % self.line_bytes:
            stride += self.line_bytes - (stride % self.line_bytes)
        return self.allocate(name, stride * count)

    @property
    def regions(self) -> List[MemoryRegion]:
        """Every region allocated so far, in allocation order."""
        return list(self._regions)

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out (including alignment padding)."""
        if not self._regions:
            return 0
        return self._regions[-1].end - self._regions[0].base
