"""MESI coherence protocol model for the per-core L1 caches.

The paper's prototype keeps the eight 32 KB L1 data caches coherent with
MESI and has **no shared L2**, so a dirty line owned by one core must be
written back to main memory before another core can read it (Section V-B).
That property is what makes cache-line bouncing so expensive on the
prototype and is the primary reason spin-waiting on shared counters hurts.

The model tracks, per cache line, which cores hold it and in which state
(Modified / Exclusive / Shared / Invalid) and answers the question every
simulated memory access asks: *how many core cycles does this access cost
and which remote copies does it invalidate?*
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.config import MemoryCosts
from repro.common.errors import MemoryModelError
from repro.common.stats import Stats

__all__ = ["LineState", "AccessType", "AccessResult", "CoherenceDirectory"]


class LineState(enum.Enum):
    """MESI state of one cache line in one core's L1."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class AccessType(enum.Enum):
    """Kind of memory access a core performs against a line."""

    READ = "read"
    WRITE = "write"
    RMW = "rmw"  # atomic read-modify-write (amoadd/lr-sc)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one line access: its latency and coherence side effects."""

    cycles: int
    hit: bool
    new_state: LineState
    invalidated: Tuple[int, ...] = ()
    writeback_through_memory: bool = False


class CoherenceDirectory:
    """Directory-style bookkeeping of every L1 line state in the system.

    The directory is deliberately *behavioural*: it does not store data, only
    states, and it resolves each access instantaneously while charging the
    appropriate latency.  Concurrency effects (two cores writing the same
    line in the same cycle) are serialised by the event engine because each
    access is performed inside a core's process.
    """

    def __init__(self, num_cores: int, costs: MemoryCosts,
                 stats: Optional[Stats] = None) -> None:
        if num_cores <= 0:
            raise MemoryModelError("num_cores must be positive")
        self.num_cores = num_cores
        self.costs = costs
        self.stats = stats if stats is not None else Stats("coherence")
        # line -> {core: state}; absent cores are Invalid.
        self._lines: Dict[int, Dict[int, LineState]] = {}

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def state_of(self, core: int, line: int) -> LineState:
        """MESI state of ``line`` in ``core``'s L1."""
        self._check_core(core)
        return self._lines.get(line, {}).get(core, LineState.INVALID)

    def sharers(self, line: int) -> Set[int]:
        """Cores holding ``line`` in any valid state."""
        return {
            core
            for core, state in self._lines.get(line, {}).items()
            if state is not LineState.INVALID
        }

    def owner(self, line: int) -> Optional[int]:
        """The core holding ``line`` in Modified state, if any."""
        for core, state in self._lines.get(line, {}).items():
            if state is LineState.MODIFIED:
                return core
        return None

    def lines_tracked(self) -> int:
        """Number of lines with at least one valid copy (for tests)."""
        return sum(1 for line in self._lines.values()
                   if any(s is not LineState.INVALID for s in line.values()))

    # ------------------------------------------------------------------ #
    # The access model
    # ------------------------------------------------------------------ #
    def access(self, core: int, line: int, kind: AccessType) -> AccessResult:
        """Perform one access and return its latency and side effects."""
        self._check_core(core)
        if kind is AccessType.READ:
            result = self._read(core, line)
        elif kind is AccessType.WRITE:
            result = self._write(core, line, atomic=False)
        elif kind is AccessType.RMW:
            result = self._write(core, line, atomic=True)
        else:  # pragma: no cover - enum is exhaustive
            raise MemoryModelError(f"unknown access type {kind!r}")
        self._record(result, kind)
        return result

    def evict(self, core: int, line: int) -> int:
        """Evict ``line`` from ``core``'s L1, returning the cycle cost."""
        state = self.state_of(core, line)
        self._set(core, line, LineState.INVALID)
        if state is LineState.MODIFIED:
            self.stats.incr("writebacks")
            return self.costs.store_buffer_drain + self.costs.l1_miss_to_memory
        return 0

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _read(self, core: int, line: int) -> AccessResult:
        state = self.state_of(core, line)
        if state is not LineState.INVALID:
            return AccessResult(self.costs.l1_hit, True, state)
        owner = self.owner(line)
        sharers = self.sharers(line)
        if owner is not None:
            # Dirty in a remote L1: with no shared L2 the line is written
            # back to main memory and then refilled here — the expensive
            # path the paper blames for cache-line bouncing.
            self._set(owner, line, LineState.SHARED)
            self._set(core, line, LineState.SHARED)
            return AccessResult(
                self.costs.dirty_remote_transfer, False, LineState.SHARED,
                writeback_through_memory=True,
            )
        if sharers:
            # Clean copy exists elsewhere; any Exclusive holder downgrades to
            # Shared.  The refill still comes from memory (no L2, no
            # cache-to-cache transfer of clean lines either).
            for sharer in sharers:
                if self.state_of(sharer, line) is LineState.EXCLUSIVE:
                    self._set(sharer, line, LineState.SHARED)
            self._set(core, line, LineState.SHARED)
            return AccessResult(self.costs.l1_miss_to_memory, False, LineState.SHARED)
        self._set(core, line, LineState.EXCLUSIVE)
        return AccessResult(self.costs.l1_miss_to_memory, False, LineState.EXCLUSIVE)

    def _write(self, core: int, line: int, atomic: bool) -> AccessResult:
        extra = self.costs.atomic_rmw_extra if atomic else 0
        state = self.state_of(core, line)
        others = self.sharers(line) - {core}
        if state in (LineState.MODIFIED, LineState.EXCLUSIVE):
            self._set(core, line, LineState.MODIFIED)
            return AccessResult(self.costs.l1_hit + extra, True, LineState.MODIFIED)
        if state is LineState.SHARED:
            # Upgrade: invalidate the other sharers.
            for other in others:
                self._set(other, line, LineState.INVALID)
            self._set(core, line, LineState.MODIFIED)
            cost = self.costs.l1_hit + extra
            if others:
                cost += self.costs.invalidate_remote
            return AccessResult(cost, True, LineState.MODIFIED,
                                invalidated=tuple(sorted(others)))
        # Invalid here: fetch with intent to modify.
        owner = self.owner(line)
        cost = extra
        writeback = False
        if owner is not None:
            cost += self.costs.dirty_remote_transfer
            writeback = True
        elif others:
            cost += self.costs.l1_miss_to_memory + self.costs.invalidate_remote
        else:
            cost += self.costs.l1_miss_to_memory
        for other in others:
            self._set(other, line, LineState.INVALID)
        self._set(core, line, LineState.MODIFIED)
        return AccessResult(cost, False, LineState.MODIFIED,
                            invalidated=tuple(sorted(others)),
                            writeback_through_memory=writeback)

    def _set(self, core: int, line: int, state: LineState) -> None:
        per_line = self._lines.setdefault(line, {})
        if state is LineState.INVALID:
            per_line.pop(core, None)
            if not per_line:
                self._lines.pop(line, None)
        else:
            per_line[core] = state

    def _record(self, result: AccessResult, kind: AccessType) -> None:
        self.stats.incr("accesses")
        self.stats.incr(f"accesses_{kind.value}")
        self.stats.add("access_cycles", result.cycles)
        if result.hit:
            self.stats.incr("hits")
        else:
            self.stats.incr("misses")
        if result.invalidated:
            self.stats.add("invalidations", len(result.invalidated))
        if result.writeback_through_memory:
            self.stats.incr("dirty_transfers_through_memory")

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise MemoryModelError(
                f"core {core} out of range 0..{self.num_cores - 1}"
            )
