"""Memory-hierarchy façade used by cores and runtime models.

:class:`MemorySystem` wraps the :class:`~repro.memory.mesi.CoherenceDirectory`
with the operations the rest of the simulator actually performs:

* ``load`` / ``store`` / ``atomic_rmw`` on byte addresses of arbitrary size
  (split into per-line accesses),
* :class:`SharedCounter` and :class:`SharedFlag` — modelled shared variables
  that the runtimes poll and update (these are where cache-line bouncing
  shows up),
* :class:`SoftwareMutex` — a lock built from an atomic RMW plus optional
  futex-style syscalls, matching how Nanos coordinates its shared
  structures.

Every method returns the number of core cycles the operation costs; the
calling process is responsible for yielding that latency to the engine
(usually via :meth:`repro.cpu.core.Core.mem_access`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.config import CACHE_LINE_BYTES, MemoryCosts
from repro.common.errors import MemoryModelError
from repro.common.stats import Stats
from repro.memory.address import AddressAllocator, MemoryRegion, span_lines
from repro.memory.mesi import AccessType, CoherenceDirectory

__all__ = ["MemorySystem", "SharedCounter", "SharedFlag", "SoftwareMutex"]


class MemorySystem:
    """Chip-level memory model: one coherence directory + an allocator."""

    def __init__(self, num_cores: int, costs: MemoryCosts,
                 line_bytes: int = CACHE_LINE_BYTES) -> None:
        self.num_cores = num_cores
        self.costs = costs
        self.line_bytes = line_bytes
        self.stats = Stats("memory")
        self.directory = CoherenceDirectory(num_cores, costs, self.stats)
        self.allocator = AddressAllocator(line_bytes=line_bytes)
        #: Cores currently executing task payloads, used by the bandwidth
        #: contention model (see ``MemoryCosts.payload_contention_per_core``).
        self._computing_cores: set = set()

    # ------------------------------------------------------------------ #
    # Memory-bandwidth contention between concurrently running payloads
    # ------------------------------------------------------------------ #
    def begin_compute(self, core: int) -> float:
        """Register ``core`` as executing a payload; return its slowdown.

        The returned factor (>= 1.0) scales the payload duration: every
        other core already running a payload adds
        ``payload_contention_per_core`` because all data movement shares the
        memory path of the L2-less prototype.
        """
        others = len(self._computing_cores - {core})
        self._computing_cores.add(core)
        return 1.0 + self.costs.payload_contention_per_core * others

    def end_compute(self, core: int) -> None:
        """Unregister ``core`` from the payload contention model."""
        self._computing_cores.discard(core)

    @property
    def computing_cores(self) -> int:
        """Number of cores currently executing task payloads."""
        return len(self._computing_cores)

    # ------------------------------------------------------------------ #
    # Allocation helpers
    # ------------------------------------------------------------------ #
    def allocate(self, name: str, size: int) -> MemoryRegion:
        """Allocate a named, line-aligned region of the modelled memory."""
        return self.allocator.allocate(name, size)

    def allocate_array(self, name: str, element_size: int, count: int,
                       pad_to_line: bool = False) -> MemoryRegion:
        """Allocate an array region, optionally padding elements to lines."""
        return self.allocator.allocate_array(name, element_size, count,
                                             pad_to_line=pad_to_line)

    # ------------------------------------------------------------------ #
    # Raw accesses (cycle costs returned, not yielded)
    # ------------------------------------------------------------------ #
    def load(self, core: int, address: int, size: int = 8) -> int:
        """Cycles for ``core`` to read ``size`` bytes at ``address``."""
        return self._access(core, address, size, AccessType.READ)

    def store(self, core: int, address: int, size: int = 8) -> int:
        """Cycles for ``core`` to write ``size`` bytes at ``address``."""
        return self._access(core, address, size, AccessType.WRITE)

    def atomic_rmw(self, core: int, address: int, size: int = 8) -> int:
        """Cycles for an atomic read-modify-write by ``core``."""
        return self._access(core, address, size, AccessType.RMW)

    def touch_lines(self, core: int, region: MemoryRegion,
                    write: bool = False) -> int:
        """Access every line of ``region`` once; returns total cycles."""
        kind = AccessType.WRITE if write else AccessType.READ
        cycles = 0
        for line in region.lines:
            cycles += self.directory.access(core, line, kind).cycles
        return cycles

    def _access(self, core: int, address: int, size: int, kind: AccessType) -> int:
        if size <= 0:
            raise MemoryModelError("access size must be positive")
        cycles = 0
        for line in span_lines(address, size, self.line_bytes):
            cycles += self.directory.access(core, line, kind).cycles
        return cycles

    # ------------------------------------------------------------------ #
    # Shared-variable factories
    # ------------------------------------------------------------------ #
    def shared_counter(self, name: str, initial: int = 0) -> "SharedCounter":
        """Create a modelled shared counter living on its own cache line."""
        region = self.allocate(name, self.line_bytes)
        return SharedCounter(self, region, initial)

    def shared_flag(self, name: str, initial: bool = False) -> "SharedFlag":
        """Create a modelled shared boolean flag on its own cache line."""
        region = self.allocate(name, self.line_bytes)
        return SharedFlag(self, region, initial)

    def mutex(self, name: str, syscall_cycles: int = 0,
              uncontended_spins: int = 1) -> "SoftwareMutex":
        """Create a modelled mutex (atomic word + optional futex syscalls)."""
        region = self.allocate(name, self.line_bytes)
        return SoftwareMutex(self, region, syscall_cycles, uncontended_spins)


@dataclass
class SharedCounter:
    """A shared integer counter with value semantics and modelled cost.

    The value itself is tracked functionally (so taskwait logic can be
    exact); the memory model is charged for every read and update, which is
    how the cost of spin-waiting on the retirement counter materialises.
    Observers registered with :meth:`subscribe` are notified after every
    update, which lets simulated threads sleep until the counter moves
    instead of burning one simulation event per poll.
    """

    memory: MemorySystem
    region: MemoryRegion
    value: int = 0

    def __post_init__(self) -> None:
        self._observers: List = []

    def read(self, core: int) -> Tuple[int, int]:
        """Return ``(value, cycles)`` for a read by ``core``."""
        cycles = self.memory.load(core, self.region.base)
        return self.value, cycles

    def add(self, core: int, amount: int = 1) -> int:
        """Atomically add ``amount``; returns the cycle cost."""
        cycles = self.memory.atomic_rmw(core, self.region.base)
        self.value += amount
        self._notify()
        return cycles

    def set(self, core: int, value: int) -> int:
        """Plain store of ``value``; returns the cycle cost."""
        cycles = self.memory.store(core, self.region.base)
        self.value = value
        self._notify()
        return cycles

    def subscribe(self, callback) -> None:
        """Register ``callback()`` to run after every update."""
        self._observers.append(callback)

    def unsubscribe(self, callback) -> None:
        """Remove a previously registered observer (no-op if absent)."""
        try:
            self._observers.remove(callback)
        except ValueError:
            pass

    def _notify(self) -> None:
        for callback in list(self._observers):
            callback()


@dataclass
class SharedFlag:
    """A shared boolean flag with modelled access costs."""

    memory: MemorySystem
    region: MemoryRegion
    value: bool = False

    def read(self, core: int) -> Tuple[bool, int]:
        """Return ``(value, cycles)`` for a read by ``core``."""
        cycles = self.memory.load(core, self.region.base)
        return self.value, cycles

    def write(self, core: int, value: bool) -> int:
        """Store ``value``; returns the cycle cost."""
        cycles = self.memory.store(core, self.region.base)
        self.value = value
        return cycles


class SoftwareMutex:
    """A cost model of a pthread-style mutex (atomic word + futex syscalls).

    Nanos guards its shared structures (dependence map, scheduler queue,
    task graph) with pthread mutexes.  The model charges:

    * one atomic RMW for the acquire attempt,
    * on contention (another core performed the most recent acquire and has
      not released yet), ``syscall_cycles`` for the futex sleep/wake pair
      plus a second atomic RMW,
    * one atomic RMW (plus possible invalidations) for the release.

    It is a *cost* model, not a correctness-enforcing lock: the simulated
    critical sections are already serialised at a coarser grain by the event
    engine, so the holder field is only used to detect contention.  A
    release by a core that lost the holder race to a later acquirer is
    charged normally and leaves the newer holder in place.
    """

    def __init__(self, memory: MemorySystem, region: MemoryRegion,
                 syscall_cycles: int, uncontended_spins: int) -> None:
        self.memory = memory
        self.region = region
        self.syscall_cycles = syscall_cycles
        self.uncontended_spins = max(uncontended_spins, 1)
        self.holder: Optional[int] = None
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def acquire(self, core: int) -> int:
        """Acquire the mutex for ``core``; returns the cycle cost."""
        cycles = self.memory.atomic_rmw(core, self.region.base)
        if self.holder is not None and self.holder != core:
            # Contended path: futex wait + wake once the holder releases.
            self.contended_acquisitions += 1
            cycles += self.syscall_cycles
            cycles += self.memory.atomic_rmw(core, self.region.base)
        self.holder = core
        self.acquisitions += 1
        return cycles

    def release(self, core: int) -> int:
        """Release the mutex; returns the cycle cost."""
        if self.holder == core:
            self.holder = None
        return self.memory.atomic_rmw(core, self.region.base)

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that found the lock already held."""
        if not self.acquisitions:
            return 0.0
        return self.contended_acquisitions / self.acquisitions
