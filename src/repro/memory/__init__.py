"""Memory hierarchy substrate: addresses, MESI coherence, shared variables."""

from repro.memory.address import (
    AddressAllocator,
    MemoryRegion,
    line_base,
    line_of,
    span_lines,
)
from repro.memory.hierarchy import (
    MemorySystem,
    SharedCounter,
    SharedFlag,
    SoftwareMutex,
)
from repro.memory.mesi import AccessResult, AccessType, CoherenceDirectory, LineState

__all__ = [
    "AddressAllocator",
    "MemoryRegion",
    "line_base",
    "line_of",
    "span_lines",
    "MemorySystem",
    "SharedCounter",
    "SharedFlag",
    "SoftwareMutex",
    "AccessResult",
    "AccessType",
    "CoherenceDirectory",
    "LineState",
]
