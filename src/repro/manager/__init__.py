"""Picos Manager: submission handling, work-fetch arbitration, retirement."""

from repro.manager.manager import ManagerError, PicosManager
from repro.manager.submission import PendingSubmission, SubmissionHandler
from repro.manager.workfetch import PacketEncoder, WorkFetchUnit

__all__ = [
    "ManagerError",
    "PicosManager",
    "PendingSubmission",
    "SubmissionHandler",
    "PacketEncoder",
    "WorkFetchUnit",
]
