"""Submission Handler of Picos Manager (Figure 4 of the paper).

The Submission Handler carries task descriptors from the per-core Picos
Delegates to the single Picos submission interface.  It guarantees:

1. **Atomicity** — packet sequences from different cores never interleave.
   A Guided Arbiter hands the Picos-facing interface to one core for a whole
   48-beat sequence.
2. **Compression** — cores transmit only the non-zero prefix of a descriptor
   (3 + 3·D packets); the Zero Padder appends the remaining zero packets so
   Picos always sees 48.
3. **Protocol crossing** — per-core Chisel-style buffers feed the Picos
   submission queue through a final buffer.

Software interacts with the handler only through the two non-blocking hooks
used by the delegate instructions: :meth:`announce` (Submission Request) and
:meth:`push_packet` / :meth:`push_packets` (Submit Packet / Submit Three
Packets).  Both return ``False`` instead of blocking when internal buffers
are full, which is what lets the ISA stay deadlock-free (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.config import PicosCosts
from repro.common.errors import ProtocolError
from repro.common.stats import Stats
from repro.picos.device import PicosDevice
from repro.picos.packets import PACKETS_PER_DESCRIPTOR
from repro.sim.arbiters import GuidedArbiter
from repro.sim.engine import Delay, Engine, Get, ProcessGen, Put, Wait
from repro.sim.queues import DecoupledQueue

__all__ = ["SubmissionHandler", "PendingSubmission"]

#: Depth of each core-specific submission packet buffer.
_CORE_BUFFER_DEPTH = 16
#: Depth of the announcement queue per core (outstanding Submission Requests).
_ANNOUNCE_DEPTH = 2


@dataclass
class PendingSubmission:
    """One announced-but-not-yet-forwarded task submission from a core."""

    core_id: int
    nonzero_packets: int

    def __post_init__(self) -> None:
        if not 3 <= self.nonzero_packets <= PACKETS_PER_DESCRIPTOR:
            raise ProtocolError(
                "a submission must announce between 3 and 48 packets, "
                f"got {self.nonzero_packets}"
            )
        if self.nonzero_packets % 3 != 0:
            raise ProtocolError(
                "the non-zero packet count of a descriptor is always a "
                f"multiple of three, got {self.nonzero_packets}"
            )


class SubmissionHandler:
    """Moves per-core packet streams onto the Picos submission interface."""

    def __init__(self, engine: Engine, device: PicosDevice, num_cores: int,
                 costs: PicosCosts, name: str = "submission_handler") -> None:
        self.engine = engine
        self.device = device
        self.num_cores = num_cores
        self.costs = costs
        self.name = name
        self.stats = Stats(name)
        self.arbiter = GuidedArbiter(engine, num_cores, name=f"{name}.guided")
        self._buffers: List[DecoupledQueue[int]] = [
            DecoupledQueue(engine, _CORE_BUFFER_DEPTH, name=f"{name}.buf{core}")
            for core in range(num_cores)
        ]
        self._announcements: List[DecoupledQueue[PendingSubmission]] = [
            DecoupledQueue(engine, _ANNOUNCE_DEPTH, name=f"{name}.ann{core}")
            for core in range(num_cores)
        ]
        self._pumps = [
            engine.spawn(self._pump(core), name=f"{name}.pump{core}", daemon=True)
            for core in range(num_cores)
        ]

    # ------------------------------------------------------------------ #
    # Delegate-facing non-blocking hooks
    # ------------------------------------------------------------------ #
    def announce(self, core_id: int, nonzero_packets: int) -> bool:
        """Register a Submission Request; returns False when it must retry."""
        self._check_core(core_id)
        pending = PendingSubmission(core_id, nonzero_packets)
        accepted = self._announcements[core_id].try_put(pending)
        if accepted:
            self.stats.incr("submission_requests")
        else:
            self.stats.incr("submission_request_failures")
        return accepted

    def push_packet(self, core_id: int, word: int) -> bool:
        """Buffer one 32-bit submission packet; False when the buffer is full."""
        self._check_core(core_id)
        accepted = self._buffers[core_id].try_put(word & 0xFFFFFFFF)
        if accepted:
            self.stats.incr("packets_buffered")
        else:
            self.stats.incr("packet_buffer_failures")
        return accepted

    def push_packets(self, core_id: int, words: Sequence[int]) -> bool:
        """Buffer several packets atomically (all or nothing)."""
        self._check_core(core_id)
        buffer = self._buffers[core_id]
        if buffer.capacity - len(buffer) < len(words):
            self.stats.incr("packet_buffer_failures")
            return False
        for word in words:
            buffer.try_put(word & 0xFFFFFFFF)
        self.stats.add("packets_buffered", len(words))
        return True

    def can_announce(self, core_id: int) -> bool:
        """True when a new Submission Request from ``core_id`` would succeed."""
        self._check_core(core_id)
        return self._announcements[core_id].ready

    # ------------------------------------------------------------------ #
    # The per-core pump processes
    # ------------------------------------------------------------------ #
    def _pump(self, core_id: int) -> ProcessGen:
        """Stream announced submissions from ``core_id`` into Picos."""
        while True:
            pending: PendingSubmission = yield Get(self._announcements[core_id])
            grant = self.arbiter.request(core_id, PACKETS_PER_DESCRIPTOR)
            yield Wait(grant)
            # Forward the announced non-zero prefix at one packet per cycle.
            for _ in range(pending.nonzero_packets):
                word = yield Get(self._buffers[core_id])
                yield Delay(self.costs.submission_packet_cycles)
                yield Put(self.device.submission_queue, word)
                self.arbiter.transfer_beat(core_id)
            # Zero Padder: complete the 48-packet sequence.
            for _ in range(PACKETS_PER_DESCRIPTOR - pending.nonzero_packets):
                yield Delay(self.costs.submission_packet_cycles)
                yield Put(self.device.submission_queue, 0)
                self.arbiter.transfer_beat(core_id)
            self.stats.incr("descriptors_forwarded")
            self.stats.add(
                "zero_packets_padded",
                PACKETS_PER_DESCRIPTOR - pending.nonzero_packets,
            )

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ProtocolError(
                f"core {core_id} out of range 0..{self.num_cores - 1}"
            )
