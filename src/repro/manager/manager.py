"""Picos Manager: the chip-wide glue between the cores and Picos.

The Manager (Section IV-F, Figure 5) is instantiated once in the SoC and is
visible to every core's Picos Delegate.  It composes:

* the :class:`~repro.manager.submission.SubmissionHandler` (Guided Arbiter,
  Zero Padder, final buffer),
* the :class:`~repro.manager.workfetch.WorkFetchUnit` (Packet Encoder, RoCC
  Ready Queue, in-order Work-Fetch Arbiter, per-core ready queues),
* a round-robin retirement arbiter merging per-core retirement queues into
  the single Picos retirement interface,
* a 4-bit debug/error register mirroring the debug interface the paper
  mentions.

It also decouples the cores from the Picos API: the delegates only ever talk
to the Manager, so a different hardware scheduler could be dropped in behind
the same custom instructions — one of the paper's design goals.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.common.config import PicosCosts
from repro.common.errors import ProtocolError
from repro.common.stats import Stats
from repro.picos.device import PicosDevice, ReadyTask
from repro.sim.arbiters import RoundRobinArbiter
from repro.sim.engine import Engine
from repro.sim.queues import DecoupledQueue

__all__ = ["ManagerError", "PicosManager"]

#: Depth of each per-core retirement queue.
_CORE_RETIRE_DEPTH = 4


class ManagerError(enum.IntFlag):
    """The Manager's 4-bit debug error register."""

    NONE = 0
    SUBMISSION_OVERFLOW = 1
    READY_OVERFLOW = 2
    RETIREMENT_OVERFLOW = 4
    PROTOCOL_VIOLATION = 8


class PicosManager:
    """One Picos Manager serving ``num_cores`` Picos Delegates."""

    def __init__(self, engine: Engine, device: PicosDevice, num_cores: int,
                 costs: PicosCosts, name: str = "picos_manager") -> None:
        if num_cores <= 0:
            raise ProtocolError("num_cores must be positive")
        self.engine = engine
        self.device = device
        self.num_cores = num_cores
        self.costs = costs
        self.name = name
        self.stats = Stats(name)
        self.error_register = ManagerError.NONE

        from repro.manager.submission import SubmissionHandler
        from repro.manager.workfetch import WorkFetchUnit

        self.submission_handler = SubmissionHandler(
            engine, device, num_cores, costs, name=f"{name}.submission"
        )
        self.work_fetch = WorkFetchUnit(
            engine, device, num_cores, costs, name=f"{name}.workfetch"
        )
        self.retirement_queues: List[DecoupledQueue[int]] = [
            DecoupledQueue(engine, _CORE_RETIRE_DEPTH, name=f"{name}.retire{core}")
            for core in range(num_cores)
        ]
        self.retirement_arbiter = RoundRobinArbiter(
            engine,
            inputs=self.retirement_queues,
            output=device.retirement_queue,
            cycles_per_grant=1,
            name=f"{name}.rr_retire",
        )

    # ------------------------------------------------------------------ #
    # Submission path (used by Submission Request / Submit Packet[s])
    # ------------------------------------------------------------------ #
    def announce_submission(self, core_id: int, nonzero_packets: int) -> bool:
        """Forward a Submission Request announcement; non-blocking."""
        accepted = self.submission_handler.announce(core_id, nonzero_packets)
        if not accepted:
            self._flag(ManagerError.SUBMISSION_OVERFLOW)
        return accepted

    def submit_packet(self, core_id: int, word: int) -> bool:
        """Forward one Submit Packet word; non-blocking."""
        accepted = self.submission_handler.push_packet(core_id, word)
        if not accepted:
            self._flag(ManagerError.SUBMISSION_OVERFLOW)
        return accepted

    def submit_packets(self, core_id: int, words) -> bool:
        """Forward a Submit Three Packets triple; non-blocking, atomic."""
        accepted = self.submission_handler.push_packets(core_id, words)
        if not accepted:
            self._flag(ManagerError.SUBMISSION_OVERFLOW)
        return accepted

    # ------------------------------------------------------------------ #
    # Work-fetch path (Ready Task Request / Fetch SW ID / Fetch Picos ID)
    # ------------------------------------------------------------------ #
    def request_ready_task(self, core_id: int) -> bool:
        """Forward a Ready Task Request; non-blocking."""
        accepted = self.work_fetch.request_ready_task(core_id)
        if not accepted:
            self._flag(ManagerError.READY_OVERFLOW)
        return accepted

    def core_ready_queue(self, core_id: int) -> DecoupledQueue[ReadyTask]:
        """The private ready queue the delegate of ``core_id`` reads."""
        return self.work_fetch.core_queue(core_id)

    def notify_task_started(self, picos_id: int) -> None:
        """Record that a fetched task is now executing on some core."""
        self.device.graph.mark_running(picos_id)

    # ------------------------------------------------------------------ #
    # Retirement path (Retire Task)
    # ------------------------------------------------------------------ #
    def retirement_queue(self, core_id: int) -> DecoupledQueue[int]:
        """The per-core retirement queue feeding the round-robin arbiter."""
        if not 0 <= core_id < self.num_cores:
            raise ProtocolError(
                f"core {core_id} out of range 0..{self.num_cores - 1}"
            )
        return self.retirement_queues[core_id]

    # ------------------------------------------------------------------ #
    # Debug interface
    # ------------------------------------------------------------------ #
    def _flag(self, error: ManagerError) -> None:
        self.error_register |= error
        self.stats.incr(f"error_{error.name.lower()}")

    def clear_errors(self) -> None:
        """Reset the 4-bit error register."""
        self.error_register = ManagerError.NONE
