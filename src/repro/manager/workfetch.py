"""Packet Encoder and Work-Fetch Arbiter of Picos Manager (Figure 5).

Two cooperating pieces move ready-to-run tasks from Picos to the cores:

* the **Packet Encoder** compresses the three 32-bit ready packets Picos
  emits per task into a single 96-bit ``(Picos ID, SW ID)`` entry stored in
  the central *RoCC Ready Queue*;
* the **Work-Fetch Arbiter** serves Ready Task Requests strictly in the
  chronological order cores issued them: for each request token it pops one
  entry from the RoCC Ready Queue and deposits it into the requesting core's
  private ready queue.

The per-core ready queues hide roughly half of the 8-cycle Picos ready-task
fetch latency from the application, which then retrieves the 96 bits with
the two 2-cycle instructions Fetch SW ID and Fetch Picos ID (Section IV-F.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.config import PicosCosts
from repro.common.errors import ProtocolError
from repro.common.stats import Stats
from repro.picos.device import PicosDevice, ReadyTask
from repro.sim.arbiters import InOrderArbiter
from repro.sim.engine import Delay, Engine, Get, ProcessGen, Put
from repro.sim.queues import DecoupledQueue

__all__ = ["PacketEncoder", "WorkFetchUnit"]

#: Depth of the central RoCC Ready Queue (96-bit entries).
_ROCC_READY_DEPTH = 16
#: Depth of each core-specific ready queue.
_CORE_READY_DEPTH = 2
#: Depth of the work-fetch routing queue (pending Ready Task Requests).
_ROUTING_DEPTH = 16
#: Cycles for the encoder to ingest one 32-bit ready packet.
_ENCODER_CYCLES_PER_PACKET = 1


class PacketEncoder:
    """Compresses 3 x 32-bit ready packets into one 96-bit queue entry."""

    def __init__(self, engine: Engine, device: PicosDevice,
                 output: DecoupledQueue, name: str = "packet_encoder") -> None:
        self.engine = engine
        self.device = device
        self.output = output
        self.name = name
        self.stats = Stats(name)
        self._process = engine.spawn(self._run(), name=name, daemon=True)

    def _run(self) -> ProcessGen:
        while True:
            triple = []
            for expected_index in range(3):
                packet = yield Get(self.device.ready_queue)
                yield Delay(_ENCODER_CYCLES_PER_PACKET)
                if packet.index != expected_index:
                    raise ProtocolError(
                        f"ready packet out of order: expected index "
                        f"{expected_index}, got {packet.index}"
                    )
                triple.append(packet)
            entry = ReadyTask(picos_id=triple[0].picos_id,
                              sw_id=triple[0].sw_id)
            yield Put(self.output, entry)
            self.stats.incr("ready_entries_encoded")


class WorkFetchUnit:
    """Routing queue + in-order arbiter + per-core ready queues."""

    def __init__(self, engine: Engine, device: PicosDevice, num_cores: int,
                 costs: PicosCosts, name: str = "work_fetch") -> None:
        if num_cores <= 0:
            raise ProtocolError("num_cores must be positive")
        self.engine = engine
        self.device = device
        self.num_cores = num_cores
        self.costs = costs
        self.name = name
        self.stats = Stats(name)
        #: Central queue of assembled 96-bit ready entries.
        self.rocc_ready_queue: DecoupledQueue[ReadyTask] = DecoupledQueue(
            engine, _ROCC_READY_DEPTH, name=f"{name}.rocc_ready"
        )
        #: Pending Ready Task Requests, in issue order.
        self.routing_queue: DecoupledQueue[int] = DecoupledQueue(
            engine, _ROUTING_DEPTH, name=f"{name}.routing"
        )
        #: Core-specific ready queues of (Picos ID, SW ID) tuples.
        self.core_ready_queues: List[DecoupledQueue[ReadyTask]] = [
            DecoupledQueue(engine, _CORE_READY_DEPTH, name=f"{name}.core{core}")
            for core in range(num_cores)
        ]
        self.encoder = PacketEncoder(engine, device, self.rocc_ready_queue,
                                     name=f"{name}.encoder")
        self.arbiter = InOrderArbiter(
            engine, self.routing_queue, self._serve, cycles_per_grant=1,
            name=f"{name}.inorder",
        )

    # ------------------------------------------------------------------ #
    # Delegate-facing hook
    # ------------------------------------------------------------------ #
    def request_ready_task(self, core_id: int) -> bool:
        """Enqueue a Ready Task Request; False when the routing queue is full."""
        self._check_core(core_id)
        accepted = self.routing_queue.try_put(core_id)
        if accepted:
            self.stats.incr("ready_task_requests")
        else:
            self.stats.incr("ready_task_request_failures")
        return accepted

    def core_queue(self, core_id: int) -> DecoupledQueue[ReadyTask]:
        """The private ready queue of ``core_id``."""
        self._check_core(core_id)
        return self.core_ready_queues[core_id]

    # ------------------------------------------------------------------ #
    # In-order service routine
    # ------------------------------------------------------------------ #
    def _serve(self, core_id: int) -> ProcessGen:
        """Satisfy one Ready Task Request (runs inside the arbiter process)."""
        entry = yield Get(self.rocc_ready_queue)
        yield Put(self.core_ready_queues[core_id], entry)
        self.stats.incr("ready_tasks_routed")

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ProtocolError(
                f"core {core_id} out of range 0..{self.num_cores - 1}"
            )
