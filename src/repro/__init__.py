"""repro: reproduction of "Adding Tightly-Integrated Task Scheduling
Acceleration to a RISC-V Multi-core Processor" (MICRO 2019).

The package simulates, at cycle-accounting granularity, an eight-core
Rocket-Chip-style SoC whose cores reach the Picos hardware task scheduler
through custom RoCC instructions, and models the software runtimes the paper
evaluates on it (Nanos-SW, Nanos-RV, Nanos-AXI and Phentos) together with
its benchmark applications and every figure/table of its evaluation.

Typical usage::

    from repro import PhentosRuntime, SerialRuntime
    from repro.apps import blackscholes_program

    program = blackscholes_program("4K", block_size=32)
    phentos = PhentosRuntime().run(program)
    serial = SerialRuntime().run(program)
    print(phentos.speedup_vs_serial)
"""

from repro.common.config import MachineConfig, SimConfig
from repro.cpu.soc import SoC
from repro.runtime import (
    RUNTIMES,
    NanosAXIRuntime,
    NanosRVRuntime,
    NanosSWRuntime,
    PhentosRuntime,
    RuntimeResult,
    SerialRuntime,
    Task,
    TaskProgram,
)

__version__ = "1.1.0"


def __getattr__(name: str):
    """Lazy top-level exports: the Study API and the plugin registry.

    ``repro.api`` pulls in the evaluation and harness layers; importing it
    here eagerly would make ``import repro`` heavyweight and circular
    (``repro.api`` itself imports from ``repro``), so :class:`Study` and
    friends resolve on first attribute access instead (PEP 562).
    """
    if name in ("Study", "StudyResult", "StudySweep"):
        from repro import api
        return getattr(api, name)
    if name == "registry":
        import repro.registry as registry
        return registry
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MachineConfig",
    "SimConfig",
    "SoC",
    "Study",
    "StudyResult",
    "StudySweep",
    "RUNTIMES",
    "NanosAXIRuntime",
    "NanosRVRuntime",
    "NanosSWRuntime",
    "PhentosRuntime",
    "RuntimeResult",
    "SerialRuntime",
    "Task",
    "TaskProgram",
    "__version__",
]
