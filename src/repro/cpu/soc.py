"""The full SoC model: Rocket-Chip-style multi-core with integrated Picos.

:class:`SoC` wires every substrate together the way Figure 2 of the paper
does:

* one discrete-event :class:`~repro.sim.engine.Engine`,
* one :class:`~repro.memory.hierarchy.MemorySystem` (per-core L1s kept
  coherent with MESI, no shared L2),
* ``num_cores`` :class:`~repro.cpu.core.Core` instances,
* one :class:`~repro.picos.device.PicosDevice`,
* one :class:`~repro.manager.manager.PicosManager`,
* one :class:`~repro.delegate.delegate.PicosDelegate` per core, attached to
  its core as the RoCC accelerator,
* optionally an :class:`~repro.picos.axi.AxiPicosInterface` for runtimes
  modelling the Picos++/AXI baseline.

Runtimes spawn one worker process per core through :meth:`spawn_worker` and
the experiment harness drives the whole machine with :meth:`run`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.config import SimConfig
from repro.common.errors import ConfigurationError
from repro.common.stats import Stats, merge_stats
from repro.cpu.core import Core
from repro.delegate.delegate import PicosDelegate
from repro.manager.manager import PicosManager
from repro.memory.hierarchy import MemorySystem
from repro.picos.axi import AxiPicosInterface
from repro.picos.device import PicosDevice
from repro.sim.engine import Engine, Process, ProcessGen

__all__ = ["SoC"]


class SoC:
    """An eight-core (by default) RISC-V SoC with tightly-integrated Picos."""

    def __init__(self, config: Optional[SimConfig] = None,
                 with_picos: bool = True, with_rocc: bool = True) -> None:
        """Build the SoC.

        ``with_picos`` controls whether a Picos device exists at all (the
        Nanos-SW baseline runs on a machine without it).  ``with_rocc``
        controls whether the tightly-integrated path — Picos Manager plus the
        per-core Picos Delegates — is instantiated; the Picos++/AXI baseline
        sets it to False and reaches the very same device through the
        memory-mapped :meth:`axi_interface` instead.
        """
        self.config = config if config is not None else SimConfig()
        machine = self.config.machine
        self.engine = Engine(max_cycles=self.config.max_cycles,
                             trace=self.config.trace)
        self.memory = MemorySystem(machine.num_cores, self.config.costs.memory,
                                   machine.cache_line_bytes)
        self.cores: List[Core] = [
            Core(core_id, self.engine, self.memory, self.config)
            for core_id in range(machine.num_cores)
        ]
        self.picos: Optional[PicosDevice] = None
        self.manager: Optional[PicosManager] = None
        self.delegates: List[PicosDelegate] = []
        self._axi: Optional[AxiPicosInterface] = None
        if with_picos:
            self.picos = PicosDevice(self.engine, self.config.costs.picos)
            if with_rocc:
                self.manager = PicosManager(
                    self.engine, self.picos, machine.num_cores,
                    self.config.costs.picos,
                )
                for core in self.cores:
                    delegate = PicosDelegate(core.core_id, self.engine,
                                             self.manager,
                                             self.config.costs.rocc)
                    core.attach_accelerator(delegate)
                    self.delegates.append(delegate)
        #: The active :class:`~repro.scenario.ScenarioRun`, installed by
        #: :meth:`Runtime.run <repro.runtime.base.Runtime.run>` when a
        #: stochastic scenario is selected; ``None`` on deterministic runs.
        self.scenario = None
        self._workers: List[Process] = []

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @property
    def num_cores(self) -> int:
        """Number of cores in the SoC."""
        return self.config.machine.num_cores

    def axi_interface(self) -> AxiPicosInterface:
        """The MMIO/AXI access path used by the Nanos-AXI baseline model."""
        if self.picos is None:
            raise ConfigurationError("this SoC was built without Picos")
        if self._axi is None:
            self._axi = AxiPicosInterface(self.engine, self.picos,
                                          self.config.costs.axi)
        return self._axi

    def core(self, core_id: int) -> Core:
        """Core ``core_id`` (bounds checked)."""
        if not 0 <= core_id < self.num_cores:
            raise ConfigurationError(
                f"core {core_id} out of range 0..{self.num_cores - 1}"
            )
        return self.cores[core_id]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def spawn_worker(self, core_id: int, program: ProcessGen,
                     name: Optional[str] = None) -> Process:
        """Spawn a runtime worker program pinned to ``core_id``."""
        worker = self.engine.spawn(
            program, name=name or f"worker{core_id}"
        )
        self._workers.append(worker)
        return worker

    def run(self, watched: Optional[List[Process]] = None) -> int:
        """Run the machine until every watched (default: all) worker ends.

        Returns the total elapsed cycles.
        """
        processes = watched if watched is not None else self._workers
        if not processes:
            raise ConfigurationError("no worker processes have been spawned")
        return self.engine.run_until_complete(processes)

    @property
    def now(self) -> int:
        """Current simulation time in core cycles."""
        return self.engine.now

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def stats_report(self) -> Dict[str, float]:
        """Merge the statistics of every component into one dictionary."""
        scopes: List[Stats] = [self.memory.stats]
        scopes.extend(core.stats for core in self.cores)
        if self.picos is not None:
            scopes.append(self.picos.stats)
        if self.manager is not None:
            scopes.append(self.manager.stats)
            scopes.append(self.manager.submission_handler.stats)
            scopes.append(self.manager.work_fetch.stats)
        scopes.extend(delegate.stats for delegate in self.delegates)
        if self._axi is not None:
            scopes.append(self._axi.stats)
        return merge_stats(scopes)

    def total_busy_cycles(self) -> int:
        """Sum of task-payload cycles executed by all cores."""
        return sum(core.busy_cycles for core in self.cores)

    def total_overhead_cycles(self) -> int:
        """Sum of scheduling/bookkeeping cycles across all cores."""
        return sum(core.overhead_cycles for core in self.cores)

    def wall_clock_seconds(self) -> float:
        """Elapsed simulated time converted to seconds at the core clock."""
        return self.config.machine.cycles_to_seconds(self.engine.now)
