"""In-order core model (Rocket Core) for the simulated SoC.

The core does not interpret RISC-V machine code.  Instead, runtime models
(the per-core worker loops of Nanos, Phentos, …) are written as engine
processes that call the helpers below to charge realistic cycle costs for
what the real binary would do:

* ``execute(n)`` — *n* plain in-order instructions (ALU/branch/immediate),
* ``load``/``store``/``atomic`` — memory accesses resolved by the MESI model,
* ``rocc(command)`` — a custom task-scheduling instruction handled by the
  core's attached RoCC accelerator (the Picos Delegate),
* ``compute(cycles)`` — an opaque task payload of known duration,
* ``syscall(cycles)`` — trap into the kernel (futex, sched_yield, …).

Every helper is a generator; callers compose them with ``yield from`` inside
their own process generators, so all time accounting flows through the
discrete-event engine.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.common.config import SimConfig
from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.stats import Stats
from repro.cpu.rocc import RoccCommand, RoccResponse
from repro.memory.hierarchy import MemorySystem
from repro.sim.engine import Delay, Engine, ProcessGen

__all__ = ["Core"]

#: Average cycles per plain instruction on the in-order pipeline.  Rocket is
#: single-issue in-order; loads/branches introduce bubbles, so the effective
#: CPI of runtime bookkeeping code is slightly above 1.
_CYCLES_PER_INSTRUCTION = 1.2


class Core:
    """One in-order RV64GC core with an optional RoCC accelerator attached."""

    def __init__(self, core_id: int, engine: Engine, memory: MemorySystem,
                 config: SimConfig) -> None:
        if core_id < 0 or core_id >= config.machine.num_cores:
            raise ConfigurationError(
                f"core_id {core_id} out of range for a "
                f"{config.machine.num_cores}-core machine"
            )
        self.core_id = core_id
        self.engine = engine
        self.memory = memory
        self.config = config
        self.stats = Stats(f"core{core_id}")
        self.accelerator: Optional[Any] = None
        #: Cycles spent executing task payloads (useful work).
        self.busy_cycles = 0
        #: Cycles spent in runtime bookkeeping / scheduling.
        self.overhead_cycles = 0

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def attach_accelerator(self, accelerator: Any) -> None:
        """Attach the RoCC accelerator (Picos Delegate) for this core."""
        if self.accelerator is not None:
            raise ProtocolError(f"core {self.core_id} already has an accelerator")
        self.accelerator = accelerator

    # ------------------------------------------------------------------ #
    # Instruction-level helpers (generators)
    # ------------------------------------------------------------------ #
    def execute(self, instructions: int) -> ProcessGen:
        """Execute ``instructions`` plain instructions."""
        if instructions < 0:
            raise ProtocolError("instruction count must be non-negative")
        cycles = int(round(instructions * _CYCLES_PER_INSTRUCTION))
        self.stats.add("instructions", instructions)
        self.overhead_cycles += cycles
        if cycles:
            yield Delay(cycles)

    def load(self, address: int, size: int = 8) -> ProcessGen:
        """Load ``size`` bytes from ``address`` through the MESI model."""
        cycles = self.memory.load(self.core_id, address, size)
        self.stats.incr("loads")
        self.overhead_cycles += cycles
        yield Delay(cycles)

    def store(self, address: int, size: int = 8) -> ProcessGen:
        """Store ``size`` bytes to ``address`` through the MESI model."""
        cycles = self.memory.store(self.core_id, address, size)
        self.stats.incr("stores")
        self.overhead_cycles += cycles
        yield Delay(cycles)

    def atomic(self, address: int, size: int = 8) -> ProcessGen:
        """Atomic read-modify-write at ``address``."""
        cycles = self.memory.atomic_rmw(self.core_id, address, size)
        self.stats.incr("atomics")
        self.overhead_cycles += cycles
        yield Delay(cycles)

    def charge(self, cycles: int, useful: bool = False) -> ProcessGen:
        """Charge a pre-computed cycle cost (e.g. from a SoftwareMutex)."""
        if cycles < 0:
            raise ProtocolError("cycle charge must be non-negative")
        if useful:
            self.busy_cycles += cycles
        else:
            self.overhead_cycles += cycles
        if cycles:
            yield Delay(cycles)

    def compute(self, cycles: int) -> ProcessGen:
        """Execute an opaque task payload of ``cycles`` cycles.

        The actual duration is stretched by the memory-bandwidth contention
        factor: concurrent payloads on other cores share the L2-less memory
        path, so each additional busy core slows everyone down slightly.
        """
        if cycles < 0:
            raise ProtocolError("payload duration must be non-negative")
        if not cycles:
            return
        factor = self.memory.begin_compute(self.core_id)
        effective = int(round(cycles * factor))
        self.stats.add("payload_cycles", cycles)
        self.stats.add("contention_stretch_cycles", effective - cycles)
        self.busy_cycles += effective
        try:
            yield Delay(effective)
        finally:
            self.memory.end_compute(self.core_id)

    def syscall(self, cycles: int) -> ProcessGen:
        """Trap into the kernel for ``cycles`` cycles (futex, yield, …)."""
        if cycles < 0:
            raise ProtocolError("syscall cost must be non-negative")
        self.stats.incr("syscalls")
        self.overhead_cycles += cycles
        if cycles:
            yield Delay(cycles)

    def rocc(self, command: RoccCommand) -> Generator[Any, Any, RoccResponse]:
        """Issue one custom task-scheduling instruction.

        The instruction is forwarded to the attached Picos Delegate; its
        response value/flag is returned to the caller.  The RoCC issue cost
        is charged here, the delegate charges any additional handshake and
        blocking time itself.
        """
        if self.accelerator is None:
            raise ProtocolError(
                f"core {self.core_id} has no RoCC accelerator attached"
            )
        issue_cycles = self.config.costs.rocc.issue
        self.stats.incr("rocc_instructions")
        self.stats.incr(f"rocc_{command.funct.name.lower()}")
        self.overhead_cycles += issue_cycles
        yield Delay(issue_cycles)
        response = yield from self.accelerator.execute(command)
        if not isinstance(response, RoccResponse):
            raise ProtocolError(
                "RoCC accelerator returned a non-RoccResponse value"
            )
        return response

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total_cycles_accounted(self) -> int:
        """Busy plus overhead cycles attributed to this core so far."""
        return self.busy_cycles + self.overhead_cycles

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` spent on useful task payloads."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(self.busy_cycles / elapsed_cycles, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Core(id={self.core_id})"
