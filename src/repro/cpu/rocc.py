"""RoCC custom-instruction format and the task-scheduling ISA extension.

Figure 1 of the paper shows the RoCC instruction encoding used by Rocket
Core custom accelerators::

    funct7 | rs2 | rs1 | xd | xs1 | xs2 | rd | opcode
       7   |  5  |  5  |  1 |  1  |  1  |  5 |    7

This module provides a faithful encoder/decoder for that 32-bit format and
defines the seven task-scheduling instructions of Table I as ``funct7``
values on the ``custom0`` opcode.  The encoding layer is exercised by the
Picos Delegate model and by unit/property tests; the runtimes interact with
the delegate through :class:`RoccCommand` objects, which is what a real
Rocket core would hand to its RoCC accelerator after decoding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ProtocolError

__all__ = [
    "CUSTOM0",
    "CUSTOM1",
    "CUSTOM2",
    "CUSTOM3",
    "TaskSchedulingFunct",
    "RoccInstruction",
    "RoccCommand",
    "RoccResponse",
    "FAILURE_FLAG",
]

#: The four custom opcodes reserved by RISC-V for RoCC accelerators.
CUSTOM0 = 0b0001011
CUSTOM1 = 0b0101011
CUSTOM2 = 0b1011011
CUSTOM3 = 0b1111011

_CUSTOM_OPCODES = (CUSTOM0, CUSTOM1, CUSTOM2, CUSTOM3)

#: Value returned in ``rd`` by non-blocking instructions that could not be
#: satisfied (queue full / empty).  Software tests this flag and retries,
#: sleeps, or switches roles — the paper's deadlock-avoidance mechanism.
FAILURE_FLAG = (1 << 64) - 1


class TaskSchedulingFunct(enum.IntEnum):
    """``funct7`` values of the custom task-scheduling instructions (Table I)."""

    SUBMISSION_REQUEST = 0x01
    SUBMIT_PACKET = 0x02
    SUBMIT_THREE_PACKETS = 0x03
    READY_TASK_REQUEST = 0x04
    FETCH_SW_ID = 0x05
    FETCH_PICOS_ID = 0x06
    RETIRE_TASK = 0x07

    @property
    def is_blocking(self) -> bool:
        """Only Retire Task is blocking (Section IV-B)."""
        return self is TaskSchedulingFunct.RETIRE_TASK

    @property
    def uses_rs1(self) -> bool:
        """Whether the instruction carries a first source operand."""
        return self in (
            TaskSchedulingFunct.SUBMISSION_REQUEST,
            TaskSchedulingFunct.SUBMIT_PACKET,
            TaskSchedulingFunct.SUBMIT_THREE_PACKETS,
            TaskSchedulingFunct.RETIRE_TASK,
        )

    @property
    def uses_rs2(self) -> bool:
        """Whether the instruction carries a second source operand."""
        return self is TaskSchedulingFunct.SUBMIT_THREE_PACKETS

    @property
    def uses_rd(self) -> bool:
        """Whether the instruction writes a destination register."""
        return self in (
            TaskSchedulingFunct.SUBMISSION_REQUEST,
            TaskSchedulingFunct.SUBMIT_PACKET,
            TaskSchedulingFunct.SUBMIT_THREE_PACKETS,
            TaskSchedulingFunct.READY_TASK_REQUEST,
            TaskSchedulingFunct.FETCH_SW_ID,
            TaskSchedulingFunct.FETCH_PICOS_ID,
        )


@dataclass(frozen=True)
class RoccInstruction:
    """One decoded 32-bit RoCC instruction (Figure 1 of the paper)."""

    funct7: int
    rs2: int
    rs1: int
    xd: bool
    xs1: bool
    xs2: bool
    rd: int
    opcode: int = CUSTOM0

    def __post_init__(self) -> None:
        if not 0 <= self.funct7 < 128:
            raise ProtocolError(f"funct7 out of range: {self.funct7}")
        for name, reg in (("rs1", self.rs1), ("rs2", self.rs2), ("rd", self.rd)):
            if not 0 <= reg < 32:
                raise ProtocolError(f"{name} register index out of range: {reg}")
        if self.opcode not in _CUSTOM_OPCODES:
            raise ProtocolError(f"opcode {self.opcode:#09b} is not a custom opcode")

    def encode(self) -> int:
        """Encode to the 32-bit instruction word."""
        word = self.opcode
        word |= self.rd << 7
        word |= (1 if self.xs2 else 0) << 12
        word |= (1 if self.xs1 else 0) << 13
        word |= (1 if self.xd else 0) << 14
        word |= self.rs1 << 15
        word |= self.rs2 << 20
        word |= self.funct7 << 25
        return word

    @classmethod
    def decode(cls, word: int) -> "RoccInstruction":
        """Decode a 32-bit instruction word."""
        if not 0 <= word < (1 << 32):
            raise ProtocolError(f"instruction word out of range: {word:#x}")
        opcode = word & 0x7F
        if opcode not in _CUSTOM_OPCODES:
            raise ProtocolError(
                f"opcode {opcode:#09b} is not a RoCC custom opcode"
            )
        return cls(
            funct7=(word >> 25) & 0x7F,
            rs2=(word >> 20) & 0x1F,
            rs1=(word >> 15) & 0x1F,
            xd=bool((word >> 14) & 0x1),
            xs1=bool((word >> 13) & 0x1),
            xs2=bool((word >> 12) & 0x1),
            rd=(word >> 7) & 0x1F,
            opcode=opcode,
        )

    @classmethod
    def for_funct(cls, funct: TaskSchedulingFunct, rs1: int = 1, rs2: int = 2,
                  rd: int = 3) -> "RoccInstruction":
        """Build the canonical encoding of one task-scheduling instruction."""
        return cls(
            funct7=int(funct),
            rs2=rs2 if funct.uses_rs2 else 0,
            rs1=rs1 if funct.uses_rs1 else 0,
            xd=funct.uses_rd,
            xs1=funct.uses_rs1,
            xs2=funct.uses_rs2,
            rd=rd if funct.uses_rd else 0,
        )


@dataclass(frozen=True)
class RoccCommand:
    """What the core hands to its RoCC accelerator after decode.

    ``rs1_value`` and ``rs2_value`` are the 64-bit register *contents* (the
    encoding above only names register indices); the Picos Delegate consumes
    these values directly.
    """

    funct: TaskSchedulingFunct
    rs1_value: int = 0
    rs2_value: int = 0

    def __post_init__(self) -> None:
        for name, value in (("rs1_value", self.rs1_value),
                            ("rs2_value", self.rs2_value)):
            if not 0 <= value < (1 << 64):
                raise ProtocolError(f"{name} is not a 64-bit value: {value:#x}")


@dataclass(frozen=True)
class RoccResponse:
    """Accelerator response: destination-register value plus success flag."""

    value: int = 0
    success: bool = True

    @property
    def failed(self) -> bool:
        """True when the non-blocking instruction reported failure."""
        return not self.success

    @classmethod
    def failure(cls) -> "RoccResponse":
        """The canonical failure response (rd = all-ones flag value)."""
        return cls(value=FAILURE_FLAG, success=False)
