"""CPU model: RoCC instruction format, in-order cores, and the SoC."""

from repro.cpu.core import Core
from repro.cpu.rocc import (
    CUSTOM0,
    CUSTOM1,
    CUSTOM2,
    CUSTOM3,
    FAILURE_FLAG,
    RoccCommand,
    RoccInstruction,
    RoccResponse,
    TaskSchedulingFunct,
)
from repro.cpu.soc import SoC

__all__ = [
    "Core",
    "CUSTOM0",
    "CUSTOM1",
    "CUSTOM2",
    "CUSTOM3",
    "FAILURE_FLAG",
    "RoccCommand",
    "RoccInstruction",
    "RoccResponse",
    "TaskSchedulingFunct",
    "SoC",
]
