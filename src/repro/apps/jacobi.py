"""Jacobi: iterative 1-D Poisson solver (Fundamental Linear Algebra domain).

The KaStORS-derived benchmark solves the Poisson equation with the Jacobi
iterative method.  The task decomposition follows the OmpSs version: the
grid is split into row blocks; in every sweep each block is updated from the
previous iterate of itself and of its two neighbouring blocks.  Expressed as
dependences, the task updating block *i* of iteration *t*:

* reads ``old[i-1]``, ``old[i]``, ``old[i+1]`` (the previous iterate),
* writes ``new[i]``,

and the roles of the ``old``/``new`` arrays swap every iteration, which
yields the classic wavefront-free, neighbour-synchronised DAG (at most four
monitored parameters per task, well within Picos' 15).

The paper's Figure 9 inputs are grids of 128, 256 and 512 points per block
row with block factor 1 ("N128 B1", "N256 B1", "N512 B1").
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import WorkloadError
from repro.apps.workload import DEFAULT_KERNEL_COSTS, BlockSpace, KernelCosts
from repro.registry import CaseInput, register_workload, scaled_size
from repro.runtime.task import Task, TaskProgram, in_dep, out_dep

__all__ = ["jacobi_program", "jacobi_reference", "PAPER_INPUTS"]

#: The (grid size, block factor) pairs evaluated in Figure 9.
PAPER_INPUTS = [(128, 1), (256, 1), (512, 1)]

#: The reduced input set of ``--quick`` sweeps.
QUICK_INPUTS = [(128, 1)]


def _paper_cases(quick: bool = False, scale: float = 1.0) -> List[CaseInput]:
    """The Figure 9 jacobi inputs as registry case descriptions."""
    inputs = QUICK_INPUTS if quick else PAPER_INPUTS
    return [
        CaseInput(
            "jacobi", f"N{grid} B{factor}",
            {"grid_blocks": scaled_size(grid, scale, factor),
             "block_factor": factor, "grid_label": grid},
        )
        for grid, factor in inputs
    ]


@register_workload(
    "jacobi",
    tags=("paper", "stencil", "memory-bound"),
    defaults={"grid_blocks": 128, "block_factor": 1, "grid_label": 128},
    description="Jacobi 1-D Poisson solver (KaStORS, Figure 9)",
    paper_cases=_paper_cases,
)
def benchmark_builder(*, grid_blocks: int, block_factor: int,
                      grid_label: int) -> TaskProgram:
    """Build one Figure 9 jacobi case from its sweep parameters."""
    return jacobi_program(grid_blocks, block_factor,
                          name=f"jacobi-N{grid_label}-B{block_factor}")

#: Default number of Jacobi sweeps per program.
DEFAULT_ITERATIONS = 4
#: Grid points per block row (each task updates one block row of this many
#: points times the block factor).
POINTS_PER_BLOCK_ROW = 128


def jacobi_reference(grid: np.ndarray, source: np.ndarray,
                     iterations: int) -> np.ndarray:
    """Reference Jacobi sweeps over a 1-D grid (returns the final iterate)."""
    current = grid.astype(float).copy()
    for _ in range(iterations):
        nxt = current.copy()
        nxt[1:-1] = 0.5 * (current[:-2] + current[2:] - source[1:-1])
        current = nxt
    return current


def jacobi_program(
    grid_blocks: int = 128,
    block_factor: int = 1,
    iterations: int = DEFAULT_ITERATIONS,
    costs: KernelCosts = DEFAULT_KERNEL_COSTS,
    with_kernels: bool = False,
    name: Optional[str] = None,
) -> TaskProgram:
    """Build the Jacobi task program.

    ``grid_blocks`` is the number of block rows (the paper's ``N``) and
    ``block_factor`` (the paper's ``B``) scales how many rows one task
    updates; the total grid therefore has
    ``grid_blocks * block_factor * POINTS_PER_BLOCK_ROW`` points.
    """
    if grid_blocks <= 0 or block_factor <= 0 or iterations <= 0:
        raise WorkloadError("grid_blocks, block_factor and iterations must be "
                            "positive")
    num_tasks_per_iter = grid_blocks // block_factor
    if num_tasks_per_iter == 0:
        raise WorkloadError("block_factor larger than the grid")
    points_per_task = block_factor * POINTS_PER_BLOCK_ROW

    state = None
    if with_kernels:
        total_points = grid_blocks * POINTS_PER_BLOCK_ROW + 2
        rng = np.random.default_rng(11)
        initial = rng.uniform(-1.0, 1.0, total_points)
        state = {
            # Double buffering: even iterations read buffer 0 and write
            # buffer 1, odd iterations the other way around — the same
            # parity scheme the dependences below encode.
            "buffers": [initial, initial.copy()],
            "source": rng.uniform(-0.1, 0.1, total_points),
        }

    blocks = BlockSpace(base_address=0x6800_0000)
    tasks: List[Task] = []
    index = 0
    for iteration in range(iterations):
        read_buffer = iteration % 2
        write_buffer = 1 - read_buffer
        for block in range(num_tasks_per_iter):
            deps = [in_dep(blocks.address(read_buffer, block))]
            if block > 0:
                deps.append(in_dep(blocks.address(read_buffer, block - 1)))
            if block < num_tasks_per_iter - 1:
                deps.append(in_dep(blocks.address(read_buffer, block + 1)))
            deps.append(out_dep(blocks.address(write_buffer, block)))
            kernel = None
            if with_kernels and state is not None:
                def kernel(s=state, b=block, points=points_per_task,
                           read=read_buffer, write=write_buffer) -> None:
                    lo = 1 + b * points
                    hi = lo + points
                    src = s["buffers"][read]
                    s["buffers"][write][lo:hi] = 0.5 * (
                        src[lo - 1:hi - 1] + src[lo + 1:hi + 1]
                        - s["source"][lo:hi]
                    )
            tasks.append(
                Task(
                    index=index,
                    payload_cycles=points_per_task * costs.jacobi_per_point,
                    dependences=tuple(deps),
                    name=f"jacobi_it{iteration}_b{block}",
                    kernel=kernel,
                )
            )
            index += 1

    parameters: Dict[str, object] = {
        "benchmark": "jacobi",
        "grid_blocks": grid_blocks,
        "block_factor": block_factor,
        "iterations": iterations,
        "points_per_task": points_per_task,
    }
    if with_kernels and state is not None:
        # Expose the kernel state so correctness tests can compare the final
        # iterate (buffer ``iterations % 2``) against jacobi_reference().
        parameters["state"] = state
        parameters["result_buffer"] = iterations % 2
    return TaskProgram(
        name=name or f"jacobi-N{grid_blocks}-B{block_factor}",
        tasks=tasks,
        parameters=parameters,
    )
