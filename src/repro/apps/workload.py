"""Shared helpers for the benchmark workload generators.

Every application in :mod:`repro.apps` produces a
:class:`~repro.runtime.task.TaskProgram`: a DAG of tasks with

* a payload duration in core cycles, derived from the amount of work the
  task body performs (elements processed × cycles per element on the
  paper's 80 MHz in-order Rocket core),
* dependence annotations over the *modelled* addresses of the data blocks
  the task reads and writes (these drive RAW/WAW/WAR inference exactly like
  the pragma annotations drive OmpSs),
* optionally a real numpy kernel, so small instances can be checked for
  numerical correctness independently of the performance model.

This module holds the pieces those generators share: per-kernel cycle-cost
constants and the :class:`BlockSpace` helper that assigns a stable modelled
address to every logical data block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.common.config import CACHE_LINE_BYTES
from repro.common.errors import WorkloadError

__all__ = ["KernelCosts", "BlockSpace", "DEFAULT_KERNEL_COSTS"]


@dataclass(frozen=True)
class KernelCosts:
    """Cycles per element of the benchmark kernels on the Rocket core.

    The constants approximate ``-O3`` RV64GC code on the in-order pipeline:
    memory-bound stream operations cost a handful of cycles per element,
    the Black-Scholes closed-form evaluation (exp/log/sqrt/division) costs a
    few hundred cycles per option, dense linear-algebra blocks cost a couple
    of cycles per floating-point operation.
    """

    blackscholes_per_option: int = 260
    jacobi_per_point: int = 14
    lu_per_flop: int = 2
    stream_per_element: int = 6

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise WorkloadError(f"KernelCosts.{name} must be positive")


#: Cost table shared by every workload generator.
DEFAULT_KERNEL_COSTS = KernelCosts()


@dataclass
class BlockSpace:
    """Assigns modelled addresses to the logical blocks of an application.

    Dependences in OmpSs are expressed on the *base address* of each block a
    task touches; the runtime never needs the block contents.  ``BlockSpace``
    hands out one address per distinct block key (e.g. ``("A", i, j)``),
    spaced by the block footprint so different blocks never alias.
    """

    base_address: int = 0x4000_0000
    block_bytes: int = 4 * 1024
    _addresses: Dict[Tuple, int] = field(default_factory=dict)

    def address(self, *key) -> int:
        """Stable modelled address of the block identified by ``key``."""
        if key not in self._addresses:
            slot = len(self._addresses)
            stride = max(self.block_bytes, CACHE_LINE_BYTES)
            self._addresses[key] = self.base_address + slot * stride
        return self._addresses[key]

    @property
    def num_blocks(self) -> int:
        """Number of distinct blocks allocated so far."""
        return len(self._addresses)
