"""Blackscholes: data-parallel option pricing (Financial Analysis domain).

The benchmark evaluates the closed-form Black-Scholes price of a portfolio
of European options.  The OmpSs version (parsec-ompss) partitions the
portfolio into blocks of ``block_size`` options; each block becomes one task
that reads the option parameters of its block and writes the corresponding
prices.  There are no inter-task data dependences, so the program is highly
data parallel and its behaviour is dominated by task granularity — exactly
why the paper sweeps block sizes from 8 to 256 options for 4K and 16K
portfolios (Figure 9).

The numpy reference kernel implements the same closed-form formula so that
small instances can be verified numerically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import WorkloadError
from repro.apps.workload import DEFAULT_KERNEL_COSTS, BlockSpace, KernelCosts
from repro.registry import CaseInput, register_workload, scaled_size
from repro.runtime.task import Task, TaskProgram, in_dep, out_dep

__all__ = [
    "blackscholes_program",
    "blackscholes_reference",
    "BlackscholesData",
    "PAPER_INPUTS",
]

#: The (portfolio size, block size) pairs evaluated in Figure 9.
PAPER_INPUTS = [
    ("4K", 8), ("4K", 16), ("4K", 32), ("4K", 64), ("4K", 128), ("4K", 256),
    ("16K", 8), ("16K", 16), ("16K", 32), ("16K", 64), ("16K", 128),
    ("16K", 256),
]

#: The reduced input set of ``--quick`` sweeps.
QUICK_INPUTS = [("4K", 16), ("4K", 256)]

_SIZE_LABELS = {"4K": 4096, "16K": 16384}


def _paper_cases(quick: bool = False, scale: float = 1.0) -> List[CaseInput]:
    """The Figure 9 blackscholes inputs as registry case descriptions."""
    inputs = QUICK_INPUTS if quick else PAPER_INPUTS
    cases: List[CaseInput] = []
    for portfolio, block in inputs:
        options = max(scaled_size(_SIZE_LABELS[portfolio], scale), block)
        cases.append(CaseInput(
            "blackscholes", f"{portfolio} B{block}",
            {"options": options, "block_size": block, "portfolio": portfolio},
        ))
    return cases


@register_workload(
    "blackscholes",
    tags=("paper", "data-parallel", "compute-bound"),
    defaults={"options": 4096, "block_size": 32, "portfolio": "4K"},
    description="Black-Scholes option pricing (PARSEC/OmpSs, Figure 9)",
    paper_cases=_paper_cases,
)
def benchmark_builder(*, options: int, block_size: int,
                      portfolio: str) -> TaskProgram:
    """Build one Figure 9 blackscholes case from its sweep parameters."""
    return blackscholes_program(str(options), block_size,
                                name=f"blackscholes-{portfolio}-B{block_size}")


class BlackscholesData:
    """Synthetic option portfolio plus the output price array."""

    def __init__(self, num_options: int, seed: int = 7) -> None:
        if num_options <= 0:
            raise WorkloadError("num_options must be positive")
        rng = np.random.default_rng(seed)
        self.spot = rng.uniform(10.0, 200.0, num_options)
        self.strike = rng.uniform(10.0, 200.0, num_options)
        self.rate = rng.uniform(0.01, 0.1, num_options)
        self.volatility = rng.uniform(0.05, 0.65, num_options)
        self.expiry = rng.uniform(0.1, 2.0, num_options)
        self.is_call = rng.integers(0, 2, num_options).astype(bool)
        self.prices = np.zeros(num_options)

    def __len__(self) -> int:
        return len(self.prices)


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.vectorize(math.erf)(x / math.sqrt(2.0)))


def blackscholes_kernel(data: BlackscholesData, start: int, end: int) -> None:
    """Price options ``start:end`` of ``data`` in place (reference kernel)."""
    s = data.spot[start:end]
    k = data.strike[start:end]
    r = data.rate[start:end]
    v = data.volatility[start:end]
    t = data.expiry[start:end]
    call = data.is_call[start:end]
    d1 = (np.log(s / k) + (r + 0.5 * v * v) * t) / (v * np.sqrt(t))
    d2 = d1 - v * np.sqrt(t)
    call_price = s * _norm_cdf(d1) - k * np.exp(-r * t) * _norm_cdf(d2)
    put_price = k * np.exp(-r * t) * _norm_cdf(-d2) - s * _norm_cdf(-d1)
    data.prices[start:end] = np.where(call, call_price, put_price)


def blackscholes_reference(data: BlackscholesData) -> np.ndarray:
    """Price the whole portfolio at once; returns the price array."""
    blackscholes_kernel(data, 0, len(data))
    return data.prices.copy()


def blackscholes_program(
    portfolio: str = "4K",
    block_size: int = 64,
    costs: KernelCosts = DEFAULT_KERNEL_COSTS,
    with_kernels: bool = False,
    data: Optional[BlackscholesData] = None,
    name: Optional[str] = None,
) -> TaskProgram:
    """Build the task program for one (portfolio, block size) input.

    ``portfolio`` is either one of the paper's labels (``"4K"``, ``"16K"``)
    or an integer-like string giving the option count directly.
    """
    num_options = _SIZE_LABELS.get(portfolio)
    if num_options is None:
        try:
            num_options = int(portfolio)
        except ValueError as exc:
            raise WorkloadError(f"unknown portfolio size {portfolio!r}") from exc
    if block_size <= 0 or block_size > num_options:
        raise WorkloadError(
            f"block_size must be in 1..{num_options}, got {block_size}"
        )
    if with_kernels and data is None:
        data = BlackscholesData(num_options)
    blocks = BlockSpace(base_address=0x6000_0000)
    tasks: List[Task] = []
    num_blocks = (num_options + block_size - 1) // block_size
    for block in range(num_blocks):
        start = block * block_size
        end = min(start + block_size, num_options)
        options_in_block = end - start
        kernel = None
        if with_kernels and data is not None:
            def kernel(d=data, s=start, e=end) -> None:
                blackscholes_kernel(d, s, e)
        tasks.append(
            Task(
                index=block,
                payload_cycles=options_in_block * costs.blackscholes_per_option,
                dependences=(
                    in_dep(blocks.address("inputs", block)),
                    out_dep(blocks.address("prices", block)),
                ),
                name=f"bs_block_{block}",
                kernel=kernel,
            )
        )
    parameters: Dict[str, object] = {
        "benchmark": "blackscholes",
        "portfolio": portfolio,
        "num_options": num_options,
        "block_size": block_size,
        "num_blocks": num_blocks,
    }
    return TaskProgram(
        name=name or f"blackscholes-{portfolio}-B{block_size}",
        tasks=tasks,
        parameters=parameters,
    )
