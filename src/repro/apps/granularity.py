"""Task-Free and Task-Chain: the lifetime-overhead micro-benchmarks.

Figure 7 of the paper measures the mean lifetime Task Scheduling overhead of
each platform with two synthetic programs:

* **Task-Free** generates independent tasks (no inter-task dependences) with
  between 0 and 15 monitored pointer parameters each — every task gets fresh
  addresses, so the dependence tracker never finds a predecessor.
* **Task-Chain** generates a single chain of tasks where every task touches
  the *same* set of monitored addresses (``inout``), so task *i+1* always
  depends on task *i*.

Both use (near-)empty payloads, so the elapsed time per task *is* the
scheduling overhead.  They are also reused for the MTT-derived speedup
bounds of Figure 6 and the granularity sweeps of Figures 8/10, where the
payload duration becomes a parameter.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import WorkloadError
from repro.picos.packets import MAX_DEPENDENCES
from repro.registry import register_workload
from repro.runtime.task import Task, TaskProgram, inout_dep, out_dep

__all__ = ["task_free_program", "task_chain_program"]

#: Modelled address pools for the two micro-benchmarks.
_FREE_BASE = 0x5000_0000
_CHAIN_BASE = 0x5800_0000
#: Bytes separating consecutive monitored addresses (one block each).
_ADDR_STRIDE = 4096


def _check_args(num_tasks: int, num_dependences: int,
                payload_cycles: int) -> None:
    if num_tasks <= 0:
        raise WorkloadError("num_tasks must be positive")
    if not 0 <= num_dependences <= MAX_DEPENDENCES:
        raise WorkloadError(
            f"num_dependences must be between 0 and {MAX_DEPENDENCES}"
        )
    if payload_cycles < 0:
        raise WorkloadError("payload_cycles must be non-negative")


@register_workload(
    "task-free",
    tags=("micro", "overhead"),
    defaults={"num_tasks": 200, "num_dependences": 1, "payload_cycles": 0},
    description="Independent empty tasks (lifetime-overhead micro-benchmark)",
)
def task_free_program(num_tasks: int = 200, num_dependences: int = 1,
                      payload_cycles: int = 0,
                      name: Optional[str] = None) -> TaskProgram:
    """Independent tasks, each with ``num_dependences`` fresh parameters.

    With ``payload_cycles == 0`` the program measures pure scheduling
    overhead (Figure 7); with a non-zero payload it becomes the uniform
    workload used for the granularity studies.
    """
    _check_args(num_tasks, num_dependences, payload_cycles)
    tasks: List[Task] = []
    for index in range(num_tasks):
        deps = tuple(
            out_dep(_FREE_BASE + (index * MAX_DEPENDENCES + slot) * _ADDR_STRIDE)
            for slot in range(num_dependences)
        )
        tasks.append(Task(index=index, payload_cycles=payload_cycles,
                          dependences=deps, name=f"free_{index}"))
    return TaskProgram(
        name=name or f"task-free-{num_dependences}dep",
        tasks=tasks,
        parameters={
            "benchmark": "task-free",
            "num_tasks": num_tasks,
            "num_dependences": num_dependences,
            "payload_cycles": payload_cycles,
        },
    )


@register_workload(
    "task-chain",
    tags=("micro", "overhead"),
    defaults={"num_tasks": 200, "num_dependences": 1, "payload_cycles": 0},
    description="Single dependence chain of empty tasks (MTT bound input)",
)
def task_chain_program(num_tasks: int = 200, num_dependences: int = 1,
                       payload_cycles: int = 0,
                       name: Optional[str] = None) -> TaskProgram:
    """A single dependence chain: every task inout-touches the same addresses.

    Task *i+1* therefore always depends on task *i* (RAW + WAW), which makes
    the chain the worst case for scheduling latency: no two tasks can ever
    overlap, so the whole per-task lifetime overhead lands on the critical
    path.  This is the workload the paper uses to derive the MTT bounds.
    """
    _check_args(num_tasks, num_dependences, payload_cycles)
    shared_addresses = [
        _CHAIN_BASE + slot * _ADDR_STRIDE for slot in range(num_dependences)
    ]
    tasks: List[Task] = []
    for index in range(num_tasks):
        deps = tuple(inout_dep(address) for address in shared_addresses)
        tasks.append(Task(index=index, payload_cycles=payload_cycles,
                          dependences=deps, name=f"chain_{index}"))
    return TaskProgram(
        name=name or f"task-chain-{num_dependences}dep",
        tasks=tasks,
        parameters={
            "benchmark": "task-chain",
            "num_tasks": num_tasks,
            "num_dependences": num_dependences,
            "payload_cycles": payload_cycles,
        },
    )
