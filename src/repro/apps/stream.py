"""Stream-deps and stream-barr: memory-intensive micro-benchmarks (ompss-ee).

Both programs repeatedly apply the four STREAM operations over blocked
arrays ``a``, ``b``, ``c``:

* ``copy``  : ``c[i] = a[i]``
* ``scale`` : ``b[i] = k * c[i]``
* ``add``   : ``c[i] = a[i] + b[i]``
* ``triad`` : ``a[i] = b[i] + k * c[i]``

Each block of each operation is a task.  The two variants differ in how the
operations are synchronised:

* **stream-deps** annotates the blocks each task reads and writes, so the
  runtime chains tasks through data dependences and different operations may
  overlap block-wise (the fine-grained DAG the paper highlights);
* **stream-barr** only annotates the written block and places a ``taskwait``
  barrier after every operation, which is the coarse, barrier-synchronised
  formulation.

The Figure 9 input labels ("64", "16x16", …, "4096x4096") denote the block
count and block length; the generator maps them to block counts and block
sizes that preserve the granularity span while keeping simulated task counts
tractable (mapping recorded in ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import WorkloadError
from repro.apps.workload import DEFAULT_KERNEL_COSTS, BlockSpace, KernelCosts
from repro.registry import CaseInput, register_workload, scaled_size
from repro.runtime.task import Task, TaskProgram, in_dep, out_dep

__all__ = [
    "stream_program",
    "stream_reference",
    "PAPER_INPUTS",
    "paper_input_parameters",
]

#: Scaling constant of the scale/triad operations.
SCALAR = 3.0
#: Operations of one STREAM iteration, in order.
OPERATIONS = ("copy", "scale", "add", "triad")
#: Default number of STREAM iterations per program.
DEFAULT_ITERATIONS = 3

#: The input labels shown on the Figure 9 x-axis for both stream variants.
PAPER_INPUTS = ["64", "16x16", "16x128", "128x128", "128x1024", "4096x4096"]

#: Label → (number of blocks, elements per block).  Large inputs are scaled
#: down in block count (not in block size) so that the simulated task count
#: stays tractable while per-task granularity matches the paper's span.
_LABEL_PARAMS: Dict[str, Tuple[int, int]] = {
    "64": (8, 8),
    "16x16": (16, 16),
    "16x128": (16, 128),
    "128x128": (64, 128),
    "128x1024": (64, 1024),
    "4096x4096": (32, 65536),
}


def paper_input_parameters(label: str) -> Tuple[int, int]:
    """Map a Figure 9 stream label to ``(num_blocks, block_elems)``."""
    try:
        return _LABEL_PARAMS[label]
    except KeyError as exc:
        raise WorkloadError(f"unknown stream input label {label!r}") from exc


#: The reduced input set of ``--quick`` sweeps.
QUICK_INPUTS = ["16x16", "128x1024"]

#: The two synchronisation variants of Figure 9 (report name, uses deps).
VARIANTS = (("stream-barr", False), ("stream-deps", True))


def _paper_cases(quick: bool = False, scale: float = 1.0) -> List[CaseInput]:
    """Both stream variants' Figure 9 inputs as registry case descriptions."""
    labels = QUICK_INPUTS if quick else PAPER_INPUTS
    cases: List[CaseInput] = []
    for variant, use_deps in VARIANTS:
        for label in labels:
            blocks, elems = paper_input_parameters(label)
            cases.append(CaseInput(
                variant, label,
                {"num_blocks": max(scaled_size(blocks, scale), 2),
                 "block_elems": elems, "use_dependences": use_deps,
                 "variant": variant, "label": label},
            ))
    return cases


@register_workload(
    "stream",
    tags=("paper", "memory-bound", "micro"),
    defaults={"num_blocks": 16, "block_elems": 16, "use_dependences": True,
              "variant": "stream-deps", "label": "16x16"},
    description="STREAM triad micro-benchmark, barrier and dependence "
                "variants (ompss-ee, Figure 9)",
    paper_cases=_paper_cases,
)
def benchmark_builder(*, num_blocks: int, block_elems: int,
                      use_dependences: bool, variant: str,
                      label: str) -> TaskProgram:
    """Build one Figure 9 stream case from its sweep parameters."""
    return stream_program(num_blocks, block_elems,
                          use_dependences=use_dependences,
                          name=f"{variant}-{label}")


def stream_reference(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                     iterations: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply ``iterations`` STREAM rounds to copies of the arrays."""
    a, b, c = a.copy(), b.copy(), c.copy()
    for _ in range(iterations):
        c[:] = a
        b[:] = SCALAR * c
        c[:] = a + b
        a[:] = b + SCALAR * c
    return a, b, c


def stream_program(
    num_blocks: int = 16,
    block_elems: int = 128,
    iterations: int = DEFAULT_ITERATIONS,
    use_dependences: bool = True,
    costs: KernelCosts = DEFAULT_KERNEL_COSTS,
    with_kernels: bool = False,
    name: Optional[str] = None,
) -> TaskProgram:
    """Build stream-deps (``use_dependences=True``) or stream-barr.

    Both variants create ``4 * iterations * num_blocks`` tasks; they differ
    only in the dependence annotations and barrier placement, which is
    exactly the contrast the paper draws between the two programs.
    """
    if num_blocks <= 0 or block_elems <= 0 or iterations <= 0:
        raise WorkloadError(
            "num_blocks, block_elems and iterations must be positive"
        )
    state = None
    if with_kernels:
        rng = np.random.default_rng(3)
        total = num_blocks * block_elems
        state = {
            "a": rng.uniform(0.0, 1.0, total),
            "b": np.zeros(total),
            "c": np.zeros(total),
        }

    blocks = BlockSpace(base_address=0x7800_0000, block_bytes=block_elems * 8)
    payload = block_elems * costs.stream_per_element
    #: (source arrays, destination array) of each STREAM operation.
    op_arrays = {
        "copy": (("a",), "c"),
        "scale": (("c",), "b"),
        "add": (("a", "b"), "c"),
        "triad": (("b", "c"), "a"),
    }

    def make_kernel(operation: str, block: int):
        if state is None:
            return None

        def kernel(s=state, op=operation, b=block, n=block_elems) -> None:
            lo, hi = b * n, (b + 1) * n
            if op == "copy":
                s["c"][lo:hi] = s["a"][lo:hi]
            elif op == "scale":
                s["b"][lo:hi] = SCALAR * s["c"][lo:hi]
            elif op == "add":
                s["c"][lo:hi] = s["a"][lo:hi] + s["b"][lo:hi]
            else:  # triad
                s["a"][lo:hi] = s["b"][lo:hi] + SCALAR * s["c"][lo:hi]

        return kernel

    tasks: List[Task] = []
    taskwait_after = set()
    index = 0
    for _iteration in range(iterations):
        for operation in OPERATIONS:
            sources, destination = op_arrays[operation]
            for block in range(num_blocks):
                if use_dependences:
                    deps = [in_dep(blocks.address(array, block))
                            for array in sources]
                    deps.append(out_dep(blocks.address(destination, block)))
                else:
                    deps = [out_dep(blocks.address(destination, block))]
                tasks.append(
                    Task(index=index, payload_cycles=payload,
                         dependences=tuple(deps),
                         name=f"{operation}_{_iteration}_{block}",
                         kernel=make_kernel(operation, block))
                )
                index += 1
            if not use_dependences:
                # stream-barr: a taskwait after every operation.
                taskwait_after.add(index - 1)

    variant = "stream-deps" if use_dependences else "stream-barr"
    parameters: Dict[str, object] = {
        "benchmark": variant,
        "num_blocks": num_blocks,
        "block_elems": block_elems,
        "iterations": iterations,
    }
    if state is not None:
        parameters["state"] = state
    return TaskProgram(
        name=name or f"{variant}-{num_blocks}x{block_elems}",
        tasks=tasks,
        taskwait_after=taskwait_after,
        parameters=parameters,
    )
