"""SparseLU: blocked LU factorisation of a sparse matrix (KaStORS).

The benchmark factorises a blocked matrix in which only some blocks are
allocated (hence *sparse* LU).  The classic OmpSs task decomposition uses
four kernels per outer iteration ``k``:

* ``lu0(A[k][k])``              — factorise the diagonal block (inout),
* ``fwd(A[k][k], A[k][j])``     — forward-solve every block of row ``k``,
* ``bdiv(A[k][k], A[i][k])``    — divide every block of column ``k``,
* ``bmod(A[i][k], A[k][j], A[i][j])`` — trailing update of the submatrix.

Dependences: ``fwd``/``bdiv`` read the factorised diagonal block and
``bmod`` reads one block of the column and one of the row and inout-updates
the trailing block, which produces the rich, deep DAG that makes SparseLU a
standard task-parallelism benchmark.

The paper's Figure 9 sweeps two matrix sizes ("N32", "N128") and block-size
multipliers M ∈ {1, 2, 4, 8, 16}.  The generator maps those labels to block
counts and block dimensions that preserve the paper's task-granularity span
while keeping simulated task counts tractable (the mapping is recorded in
``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import WorkloadError
from repro.apps.workload import DEFAULT_KERNEL_COSTS, BlockSpace, KernelCosts
from repro.registry import CaseInput, register_workload, scaled_size
from repro.runtime.task import Task, TaskProgram, in_dep, inout_dep

__all__ = ["sparselu_program", "sparselu_reference", "PAPER_INPUTS",
           "paper_input_parameters"]

#: The (matrix label, block multiplier) pairs evaluated in Figure 9.
PAPER_INPUTS = [
    ("N32", 1), ("N32", 2), ("N32", 4), ("N32", 8), ("N32", 16),
    ("N128", 1), ("N128", 2), ("N128", 4), ("N128", 8), ("N128", 16),
]

#: The reduced input set of ``--quick`` sweeps.
QUICK_INPUTS = [("N32", 2), ("N32", 16)]


def _paper_cases(quick: bool = False, scale: float = 1.0) -> List[CaseInput]:
    """The Figure 9 sparselu inputs as registry case descriptions."""
    inputs = QUICK_INPUTS if quick else PAPER_INPUTS
    cases: List[CaseInput] = []
    for label, multiplier in inputs:
        blocks, dim = paper_input_parameters(label, multiplier)
        cases.append(CaseInput(
            "sparselu", f"{label} M{multiplier}",
            {"num_blocks": max(scaled_size(blocks, scale), 2),
             "block_dim": dim, "label": label, "multiplier": multiplier},
        ))
    return cases


@register_workload(
    "sparselu",
    tags=("paper", "linear-algebra", "irregular"),
    defaults={"num_blocks": 6, "block_dim": 8, "label": "N32",
              "multiplier": 2},
    description="Blocked sparse LU factorisation (KaStORS, Figure 9)",
    paper_cases=_paper_cases,
)
def benchmark_builder(*, num_blocks: int, block_dim: int, label: str,
                      multiplier: int) -> TaskProgram:
    """Build one Figure 9 sparselu case from its sweep parameters."""
    return sparselu_program(num_blocks, block_dim,
                            name=f"sparselu-{label}-M{multiplier}")

#: Label → (blocks per dimension, base block dimension in elements).
_LABEL_PARAMS = {"N32": (6, 4), "N128": (10, 8)}


def paper_input_parameters(label: str, multiplier: int) -> Tuple[int, int]:
    """Map a Figure 9 input label to ``(num_blocks, block_dim)``."""
    try:
        num_blocks, base_dim = _LABEL_PARAMS[label]
    except KeyError as exc:
        raise WorkloadError(f"unknown sparselu matrix label {label!r}") from exc
    if multiplier <= 0:
        raise WorkloadError("block multiplier must be positive")
    return num_blocks, base_dim * multiplier


def _allocated(i: int, j: int) -> bool:
    """Sparsity pattern: diagonal, first row/column and a scattered band."""
    if i == j or i == 0 or j == 0:
        return True
    return (i + j) % 3 != 0


def sparselu_reference(matrix: np.ndarray) -> np.ndarray:
    """Dense LU factorisation without pivoting (reference for small sizes)."""
    a = matrix.astype(float).copy()
    n = a.shape[0]
    for k in range(n):
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a


def sparselu_program(
    num_blocks: int = 6,
    block_dim: int = 16,
    costs: KernelCosts = DEFAULT_KERNEL_COSTS,
    with_kernels: bool = False,
    name: Optional[str] = None,
) -> TaskProgram:
    """Build the blocked sparse-LU task program.

    ``num_blocks`` is the number of blocks per matrix dimension and
    ``block_dim`` the dimension of each square block in elements.
    """
    if num_blocks <= 0 or block_dim <= 0:
        raise WorkloadError("num_blocks and block_dim must be positive")
    flops_lu0 = 2 * block_dim ** 3 // 3
    flops_trsm = block_dim ** 3
    flops_gemm = 2 * block_dim ** 3

    #: Blocks present in the matrix.  Starts from the static sparsity
    #: pattern and grows with the fill-in blocks that ``bmod`` creates, the
    #: same way the original OmpSs benchmark allocates blocks on demand.
    allocated = {
        (i, j)
        for i in range(num_blocks)
        for j in range(num_blocks)
        if _allocated(i, j)
    }

    state: Optional[Dict[Tuple[int, int], np.ndarray]] = None
    if with_kernels:
        rng = np.random.default_rng(23)
        state = {}
        for i, j in sorted(allocated):
            block = rng.uniform(-1.0, 1.0, (block_dim, block_dim))
            if i == j:
                # Diagonal dominance keeps the factorisation stable
                # without pivoting.
                block += np.eye(block_dim) * block_dim * 2.0
            state[(i, j)] = block

    blocks = BlockSpace(base_address=0x7000_0000,
                        block_bytes=block_dim * block_dim * 8)
    tasks: List[Task] = []
    index = 0

    def add_task(payload: int, deps, label: str, kernel=None) -> None:
        nonlocal index
        tasks.append(Task(index=index, payload_cycles=payload,
                          dependences=tuple(deps), name=label, kernel=kernel))
        index += 1

    for k in range(num_blocks):
        kernel = None
        if state is not None:
            def kernel(s=state, kk=k) -> None:
                s[(kk, kk)][:] = sparselu_reference(s[(kk, kk)])
        add_task(flops_lu0 * costs.lu_per_flop,
                 [inout_dep(blocks.address(k, k))], f"lu0_{k}", kernel)
        for j in range(k + 1, num_blocks):
            if (k, j) not in allocated:
                continue
            kernel = None
            if state is not None:
                def kernel(s=state, kk=k, jj=j) -> None:
                    diag = s[(kk, kk)]
                    lower = np.tril(diag, -1) + np.eye(diag.shape[0])
                    s[(kk, jj)][:] = np.linalg.solve(lower, s[(kk, jj)])
            add_task(flops_trsm * costs.lu_per_flop,
                     [in_dep(blocks.address(k, k)),
                      inout_dep(blocks.address(k, j))],
                     f"fwd_{k}_{j}", kernel)
        for i in range(k + 1, num_blocks):
            if (i, k) not in allocated:
                continue
            kernel = None
            if state is not None:
                def kernel(s=state, kk=k, ii=i) -> None:
                    diag = s[(kk, kk)]
                    upper = np.triu(diag)
                    s[(ii, kk)][:] = np.linalg.solve(upper.T, s[(ii, kk)].T).T
            add_task(flops_trsm * costs.lu_per_flop,
                     [in_dep(blocks.address(k, k)),
                      inout_dep(blocks.address(i, k))],
                     f"bdiv_{i}_{k}", kernel)
        for i in range(k + 1, num_blocks):
            if (i, k) not in allocated:
                continue
            for j in range(k + 1, num_blocks):
                if (k, j) not in allocated:
                    continue
                # Trailing update creates the (i, j) fill-in block if the
                # sparse pattern did not contain it (dynamic allocation in
                # the original benchmark).
                allocated.add((i, j))
                kernel = None
                if state is not None:
                    def kernel(s=state, kk=k, ii=i, jj=j,
                               dim=block_dim) -> None:
                        if (ii, jj) not in s:
                            s[(ii, jj)] = np.zeros((dim, dim))
                        s[(ii, jj)] -= s[(ii, kk)] @ s[(kk, jj)]
                add_task(flops_gemm * costs.lu_per_flop,
                         [in_dep(blocks.address(i, k)),
                          in_dep(blocks.address(k, j)),
                          inout_dep(blocks.address(i, j))],
                         f"bmod_{i}_{j}_{k}", kernel)

    parameters: Dict[str, object] = {
        "benchmark": "sparselu",
        "num_blocks": num_blocks,
        "block_dim": block_dim,
        "num_tasks": len(tasks),
    }
    if state is not None:
        parameters["state"] = state
    return TaskProgram(
        name=name or f"sparselu-NB{num_blocks}-M{block_dim}",
        tasks=tasks,
        parameters=parameters,
    )
