"""Benchmark applications: the paper's five programs plus micro-benchmarks."""

from repro.apps.blackscholes import (
    BlackscholesData,
    blackscholes_program,
    blackscholes_reference,
)
from repro.apps.granularity import task_chain_program, task_free_program
from repro.apps.jacobi import jacobi_program, jacobi_reference
from repro.apps.sparselu import sparselu_program, sparselu_reference
from repro.apps.stream import stream_program, stream_reference
from repro.apps.workload import DEFAULT_KERNEL_COSTS, BlockSpace, KernelCosts

__all__ = [
    "BlackscholesData",
    "blackscholes_program",
    "blackscholes_reference",
    "task_chain_program",
    "task_free_program",
    "jacobi_program",
    "jacobi_reference",
    "sparselu_program",
    "sparselu_reference",
    "stream_program",
    "stream_reference",
    "DEFAULT_KERNEL_COSTS",
    "BlockSpace",
    "KernelCosts",
]
