"""FPGA resource model reproducing Table II of the paper.

Table II breaks down the FPGA cell usage of the prototype on the ZCU102:
the whole SoC uses ~384K cells, each Rocket core (with FPU and L1 caches)
~44K, and the entire task-scheduling subsystem (Picos + Picos Manager + all
eight Delegates) only ~7K cells — less than 2% of the SoC.  That smallness
is one of the paper's arguments for integrating the scheduler into the
processor.

We obviously cannot synthesise RTL here, so the model is analytic: per-module
cell-count constants (taken from the paper's own numbers and scaled for
configuration changes such as core count) combined into the same table.  The
point of reproducing it is to keep the area argument checkable: the
task-scheduling subsystem must remain a small, fixed fraction of the SoC for
any reasonable configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.config import MachineConfig, default_machine
from repro.common.errors import EvaluationError

__all__ = ["ResourceEntry", "ResourceModel", "resource_table",
           "PAPER_TABLE2_CELLS"]

#: The cell counts reported in Table II of the paper (ZCU102-ES2, 8 cores).
PAPER_TABLE2_CELLS: Dict[str, int] = {
    "top": 384_000,
    "Core": 44_000,
    "fpuOpt": 18_000,
    "dcache": 6_000,
    "icache": 1_000,
    "SSystem": 7_000,
}


@dataclass(frozen=True)
class ResourceEntry:
    """One row of the resource-usage table."""

    module: str
    cells: int
    fraction_of_top: float
    description: str

    def as_row(self) -> Dict[str, object]:
        """Row representation used by the reporting helpers."""
        return {
            "module": self.module,
            "cells": self.cells,
            "fraction": f"{self.fraction_of_top * 100.0:.2f}%",
            "description": self.description,
        }


class ResourceModel:
    """Analytic cell-count model of the prototype SoC."""

    #: Per-module constants, in FPGA cells, for one instance each.
    CORE_LOGIC_CELLS = 19_000        # integer pipeline, CSRs, PTW, TLBs
    FPU_CELLS = 18_000               # fpuOpt in the paper's table
    DCACHE_CELLS = 6_000
    ICACHE_CELLS = 1_000
    UNCORE_CELLS = 24_000            # TileLink interconnect, DDR bridge, ...
    PICOS_CELLS = 4_300              # the Picos accelerator itself
    PICOS_MANAGER_CELLS = 1_600      # arbiter/padding/encoder logic
    DELEGATE_CELLS_PER_CORE = 140    # the per-core RoCC stub

    def __init__(self, machine: Optional[MachineConfig] = None) -> None:
        self.machine = machine if machine is not None else default_machine()

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def core_cells(self) -> int:
        """Cells of one core including its FPU and L1 caches."""
        return (self.CORE_LOGIC_CELLS + self.FPU_CELLS + self.DCACHE_CELLS
                + self.ICACHE_CELLS)

    @property
    def scheduling_subsystem_cells(self) -> int:
        """Picos + Picos Manager + every Picos Delegate (``SSystem``)."""
        return (self.PICOS_CELLS + self.PICOS_MANAGER_CELLS
                + self.DELEGATE_CELLS_PER_CORE * self.machine.num_cores)

    @property
    def top_cells(self) -> int:
        """The whole SoC."""
        return (self.core_cells * self.machine.num_cores + self.UNCORE_CELLS
                + self.scheduling_subsystem_cells)

    @property
    def scheduling_fraction(self) -> float:
        """Fraction of the SoC used by the task-scheduling subsystem."""
        return self.scheduling_subsystem_cells / self.top_cells

    # ------------------------------------------------------------------ #
    # Table II
    # ------------------------------------------------------------------ #
    def table(self) -> List[ResourceEntry]:
        """Rows in the same order and shape as Table II."""
        top = self.top_cells

        def entry(module: str, cells: int, description: str) -> ResourceEntry:
            if cells <= 0:
                raise EvaluationError(f"non-positive cell count for {module}")
            return ResourceEntry(module=module, cells=cells,
                                 fraction_of_top=cells / top,
                                 description=description)

        return [
            entry("top", top, "Whole system"),
            entry("Core", self.core_cells, "Core with FPU and L1$"),
            entry("fpuOpt", self.FPU_CELLS, "Floating-point unit"),
            entry("dcache", self.DCACHE_CELLS, "D-cache of a single core"),
            entry("icache", self.ICACHE_CELLS, "I-cache of a single core"),
            entry("SSystem", self.scheduling_subsystem_cells,
                  "Picos, Picos Manager, and Delegates"),
        ]


def resource_table(machine: Optional[MachineConfig] = None) -> List[ResourceEntry]:
    """Convenience wrapper returning the Table II rows."""
    return ResourceModel(machine).table()
