"""Maximum Task Throughput (MTT) and the speedup bounds of Equation 1.

Section VI-B2 of the paper derives a simple performance bound: a runtime
whose mean lifetime scheduling overhead per task is ``Lo`` cycles can retire
at most ``K = 1 / Lo`` tasks per cycle (its MTT), so a workload of uniform
tasks of ``t`` cycles can achieve at most

    MS(Lo, t) = t / Lo

speedup over serial execution, additionally capped by the number of cores.
Figure 6 plots this bound for the four platforms using the Task-Chain
(1 dependence) overheads of Figure 7; Figure 10 overlays the measured
speedups of every benchmark run on the same bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.common.errors import EvaluationError

__all__ = [
    "maximum_task_throughput",
    "speedup_bound",
    "bound_curve",
    "saturation_task_size",
    "MttBound",
]


def maximum_task_throughput(lifetime_overhead_cycles: float) -> float:
    """Tasks per cycle the platform can retire (``K = 1 / Lo``)."""
    if lifetime_overhead_cycles <= 0:
        raise EvaluationError("lifetime overhead must be positive")
    return 1.0 / lifetime_overhead_cycles


def speedup_bound(task_size_cycles: float, lifetime_overhead_cycles: float,
                  num_cores: int) -> float:
    """Equation 1 capped at the core count: ``min(N, t / Lo)``."""
    if task_size_cycles <= 0:
        raise EvaluationError("task size must be positive")
    if num_cores <= 0:
        raise EvaluationError("num_cores must be positive")
    raw = task_size_cycles / lifetime_overhead_cycles
    return min(float(num_cores), raw)


def saturation_task_size(lifetime_overhead_cycles: float,
                         num_cores: int) -> float:
    """Smallest task size at which the bound saturates to ``num_cores``."""
    if num_cores <= 0:
        raise EvaluationError("num_cores must be positive")
    if lifetime_overhead_cycles <= 0:
        raise EvaluationError("lifetime overhead must be positive")
    return lifetime_overhead_cycles * num_cores


@dataclass(frozen=True)
class MttBound:
    """One point of an MTT-derived bound curve."""

    task_size_cycles: float
    max_speedup: float


def bound_curve(lifetime_overhead_cycles: float, num_cores: int,
                task_sizes: Sequence[float]) -> List[MttBound]:
    """The Figure 6 curve of one platform over the given task sizes."""
    if not task_sizes:
        raise EvaluationError("task_sizes must not be empty")
    return [
        MttBound(task_size, speedup_bound(task_size,
                                          lifetime_overhead_cycles, num_cores))
        for task_size in task_sizes
    ]


def default_task_sizes(start_exponent: int = 2, end_exponent: int = 5,
                       points_per_decade: int = 6) -> List[float]:
    """Logarithmically spaced task sizes (10^2 .. 10^5 cycles by default)."""
    if end_exponent <= start_exponent or points_per_decade <= 0:
        raise EvaluationError("invalid task size range")
    sizes: List[float] = []
    decades = end_exponent - start_exponent
    total_points = decades * points_per_decade + 1
    for i in range(total_points):
        exponent = start_exponent + i * decades / (total_points - 1)
        sizes.append(10.0 ** exponent)
    return sizes
