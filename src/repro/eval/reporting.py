"""Plain-text and CSV rendering of the experiment results.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting in one place so the benchmarks, the examples and
``EXPERIMENTS.md`` all show identical tables.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.eval.experiments import (
    BenchmarkRun,
    BoundComparison,
    GranularityPoint,
    HeadlineSummary,
)
from repro.eval.mtt import MttBound
from repro.eval.overhead import OverheadMeasurement
from repro.eval.resources import ResourceEntry
from repro.eval.scaling import ScalingCurve, scaling_geomeans

__all__ = [
    "format_table",
    "overhead_report",
    "bounds_report",
    "benchmarks_report",
    "granularity_report",
    "comparisons_report",
    "resources_report",
    "headline_report",
    "scaling_report",
    "rows_to_csv",
]


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in materialised:
        lines.append(" | ".join(cell.ljust(widths[i])
                                for i, cell in enumerate(row)))
    return "\n".join(lines)


def rows_to_csv(headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> str:
    """Render the same rows as CSV text (for archiving results)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def overhead_report(measurements: Sequence[OverheadMeasurement]) -> str:
    """Figure 7: lifetime overhead per task, measured vs paper."""
    rows = []
    for measurement in measurements:
        paper = measurement.paper_cycles_per_task
        ratio = measurement.ratio_to_paper
        rows.append([
            measurement.platform,
            measurement.workload,
            f"{measurement.cycles_per_task:.0f}",
            f"{paper}" if paper else "-",
            f"{ratio:.2f}x" if ratio else "-",
        ])
    return format_table(
        ["platform", "workload", "measured cycles/task", "paper cycles/task",
         "measured/paper"],
        rows,
    )


def bounds_report(curves: Mapping[str, Sequence[MttBound]],
                  sample_sizes: Sequence[float] = (1e2, 1e3, 1e4, 1e5)) -> str:
    """Figure 6: maximum speedup bound at a few representative task sizes."""
    headers = ["platform"] + [f"{size:.0e} cy" for size in sample_sizes]
    rows = []
    for platform, curve in curves.items():
        row = [platform]
        for size in sample_sizes:
            closest = min(curve, key=lambda p: abs(p.task_size_cycles - size))
            row.append(f"{closest.max_speedup:.2f}")
        rows.append(row)
    return format_table(headers, rows)


#: Column titles of the well-known runtimes (registry names otherwise).
_RUNTIME_DISPLAY = {
    "serial": "serial",
    "nanos-sw": "Nanos-SW",
    "nanos-rv": "Nanos-RV",
    "nanos-axi": "Nanos-AXI",
    "phentos": "Phentos",
}


def benchmarks_report(runs: Sequence[BenchmarkRun],
                      runtimes: Optional[Sequence[str]] = None) -> str:
    """Figure 9: speedup over serial per benchmark input and runtime.

    Columns follow the runtimes actually present in the runs (minus the
    serial baseline), optionally narrowed to ``runtimes``, so
    runtime-filtered studies and plugin runtimes render without edits
    here; the default sweep keeps the paper's Nanos-SW / Nanos-RV /
    Phentos columns byte-for-byte.
    """
    if not runs:
        return "no benchmark runs"
    names = [name for name in runs[0].results if name != "serial"]
    if runtimes is not None:
        names = [name for name in names if name in set(runtimes)] or names
    rows = []
    for run in runs:
        rows.append([
            run.case.benchmark,
            run.case.label,
            f"{run.mean_task_cycles:.0f}",
        ] + [f"{run.speedup_vs_serial(name):.2f}" for name in names])
    report = format_table(
        ["benchmark", "input", "mean task (cy)"]
        + [_RUNTIME_DISPLAY.get(name, name) for name in names],
        rows,
    )
    scenario = _scenario_metrics_table(runs)
    if scenario:
        report += "\n\nscenario metrics (task latency, cycles):\n" + scenario
    return report


def _scenario_metrics_table(runs: Sequence[BenchmarkRun]) -> Optional[str]:
    """Latency percentiles / deadline misses of a stochastic sweep.

    Returns ``None`` when no run carries ``scenario.*`` stats — the
    deterministic report stays byte-identical to pre-scenario releases.
    """
    rows = []
    for run in runs:
        for name, result in run.results.items():
            stats = result.stats
            if "scenario.latency_p50" not in stats:
                continue
            misses = stats.get("scenario.deadline_misses")
            deadline_tasks = stats.get("scenario.deadline_tasks", 0)
            rows.append([
                run.case.benchmark,
                run.case.label,
                _RUNTIME_DISPLAY.get(name, name),
                f"{stats['scenario.latency_p50']:.0f}",
                f"{stats['scenario.latency_p95']:.0f}",
                f"{stats['scenario.latency_p99']:.0f}",
                (f"{misses:.0f}/{deadline_tasks:.0f}"
                 if deadline_tasks else "-"),
            ])
    if not rows:
        return None
    return format_table(
        ["benchmark", "input", "runtime", "p50", "p95", "p99",
         "deadline misses"],
        rows,
    )


def granularity_report(points: Sequence[GranularityPoint],
                       runtime: Optional[str] = None) -> str:
    """Figure 8: speedups as a function of mean task size."""
    rows = []
    for point in points:
        if runtime is not None and point.runtime != runtime:
            continue
        rows.append([
            point.runtime,
            f"{point.benchmark}/{point.label}",
            f"{point.task_size_cycles:.0f}",
            f"{point.speedup_vs_serial:.2f}",
            f"{point.speedup_vs_nanos_sw:.2f}",
            f"{point.speedup_vs_nanos_rv:.2f}",
        ])
    return format_table(
        ["runtime", "input", "task size (cy)", "vs serial", "vs Nanos-SW",
         "vs Nanos-RV"],
        rows,
    )


def comparisons_report(comparisons: Mapping[str, BoundComparison],
                       tolerance: float = 1.15) -> str:
    """Figure 10: best measured speedup per platform versus its MTT bound."""
    rows = []
    for platform, comparison in comparisons.items():
        best = max(speedup for _, speedup in comparison.measured)
        rows.append([platform, f"{best:.2f}x",
                     len(comparison.violations(tolerance=tolerance))])
    return format_table(
        ["platform", "best measured speedup",
         "points above the analytic bound"],
        rows,
    )


def resources_report(entries: Sequence[ResourceEntry]) -> str:
    """Table II: FPGA resource usage breakdown."""
    rows = [
        [entry.module, f"{entry.cells / 1000:.0f}K",
         f"{entry.fraction_of_top * 100:.2f}%", entry.description]
        for entry in entries
    ]
    return format_table(["Module", "Usage", "Fraction", "Description"], rows)


def scaling_report(curves: Sequence[ScalingCurve],
                   runtime: Optional[str] = None) -> str:
    """Scaling sweep: speedup per core count, saturation and MTT cap.

    One row per (runtime, input) curve with a column per simulated core
    count (``N* marks points at ≥95% of the MTT bound``), the measured
    saturation core count, and the core count where the analytic bound
    flattens; a geometric-mean row closes each runtime's block.
    """
    if not curves:
        return "no scaling curves"
    selected = [curve for curve in curves
                if runtime is None or curve.runtime == runtime]
    counts = [point.cores for point in selected[0].points] if selected else []
    headers = (["runtime", "input", "task (cy)"]
               + [f"{count}c" for count in counts]
               + ["saturates", "MTT cap"])
    geomeans = scaling_geomeans(selected) if selected else {}
    grouped: Dict[str, List[ScalingCurve]] = {}
    for curve in selected:
        grouped.setdefault(curve.runtime, []).append(curve)
    rows = []
    for name, block in grouped.items():
        for curve in block:
            cells = []
            for point in curve.points:
                marker = ("*" if point.speedup_vs_serial
                          >= 0.95 * point.mtt_bound else "")
                cells.append(f"{point.speedup_vs_serial:.2f}{marker}")
            rows.append(
                [curve.runtime, curve.case_key,
                 f"{curve.mean_task_cycles:.0f}"]
                + cells
                + [f"{curve.measured_saturation_cores()}c",
                   f"{curve.bound_saturation_cores:.1f}c"]
            )
        rows.append(_scaling_geomean_row(name, geomeans, counts))
    return format_table(headers, rows)


def _scaling_geomean_row(runtime: str, geomeans, counts) -> List[str]:
    per_cores = geomeans.get(runtime, {})
    return ([runtime, "geomean", "-"]
            + [f"{per_cores[count]:.2f}" if count in per_cores else "-"
               for count in counts]
            + ["-", "-"])


def headline_report(summary: HeadlineSummary) -> str:
    """The abstract/conclusion numbers."""
    rows = [
        ["geomean Nanos-RV vs Nanos-SW", f"{summary.geomean_nanos_rv_vs_sw:.2f}x",
         "2.13x"],
        ["geomean Phentos vs Nanos-SW", f"{summary.geomean_phentos_vs_sw:.2f}x",
         "13.19x"],
        ["geomean Phentos vs Nanos-RV", f"{summary.geomean_phentos_vs_rv:.2f}x",
         "6.20x"],
        ["max speedup vs serial (Nanos-RV)",
         f"{summary.max_speedup_vs_serial_nanos_rv:.2f}x", "5.62x"],
        ["max speedup vs serial (Phentos)",
         f"{summary.max_speedup_vs_serial_phentos:.2f}x", "5.72x"],
        ["max Phentos vs Nanos-SW", f"{summary.max_speedup_phentos_vs_sw:.2f}x",
         "146.01x"],
        ["Nanos-RV wins vs Nanos-SW",
         f"{summary.nanos_rv_wins_vs_sw}/{summary.num_cases}", "34/37"],
        ["Phentos wins vs Nanos-SW",
         f"{summary.phentos_wins_vs_sw}/{summary.num_cases}", "36/37"],
        ["Phentos wins vs Nanos-RV",
         f"{summary.phentos_wins_vs_rv}/{summary.num_cases}", "34/37"],
        ["Phentos regressions vs Nanos-SW (>3%)",
         f"{summary.phentos_regressions_vs_sw}/{summary.num_cases}", "1/37"],
    ]
    return format_table(["metric", "measured", "paper"], rows)
