"""Lifetime Task Scheduling overhead measurement (Figure 7).

The lifetime overhead ``Lo`` of a platform is the mean number of cycles the
scheduling machinery adds per task over its whole life (submission,
dependence handling, work fetch, retirement).  The paper measures it with
the Task-Free and Task-Chain micro-benchmarks: tasks with (near-)empty
payloads, so every elapsed cycle beyond the payload is overhead, divided by
the task count.

Measurements run on a single worker so that no overhead is hidden by
overlapping it with other cores' payload execution — which matches the
definition of MTT as the *serial* scheduling capacity of the platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Type

from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.apps.granularity import task_chain_program, task_free_program
from repro.runtime.base import Runtime
from repro.runtime.nanos_axi import NanosAXIRuntime
from repro.runtime.nanos_rv import NanosRVRuntime
from repro.runtime.nanos_sw import NanosSWRuntime
from repro.runtime.phentos import PhentosRuntime

__all__ = [
    "OVERHEAD_WORKLOADS",
    "OVERHEAD_PLATFORMS",
    "OverheadMeasurement",
    "measure_lifetime_overhead",
    "overhead_table",
    "PAPER_FIGURE7_CYCLES",
    "DEFAULT_NUM_TASKS",
]

#: The four workloads of Figure 7: (label, generator, dependence count).
OVERHEAD_WORKLOADS = [
    ("Task-Free 1 dep", "task-free", 1),
    ("Task-Free 15 deps", "task-free", 15),
    ("Task-Chain 1 dep", "task-chain", 1),
    ("Task-Chain 15 deps", "task-chain", 15),
]

#: The four platforms of Figure 7, in the paper's order.
OVERHEAD_PLATFORMS: Dict[str, Type[Runtime]] = {
    "phentos": PhentosRuntime,
    "nanos-rv": NanosRVRuntime,
    "nanos-axi": NanosAXIRuntime,
    "nanos-sw": NanosSWRuntime,
}

#: The values the paper reports in Figure 7 (Rocket-Chip-equivalent cycles),
#: keyed by platform and workload label.  Used by EXPERIMENTS.md and by the
#: calibration tests that check we land in the right bands.
PAPER_FIGURE7_CYCLES: Dict[str, Dict[str, int]] = {
    "phentos": {
        "Task-Free 1 dep": 185, "Task-Free 15 deps": 320,
        "Task-Chain 1 dep": 329, "Task-Chain 15 deps": 423,
    },
    "nanos-rv": {
        "Task-Free 1 dep": 12348, "Task-Free 15 deps": 13143,
        "Task-Chain 1 dep": 12835, "Task-Chain 15 deps": 12393,
    },
    "nanos-axi": {
        "Task-Free 1 dep": 13426, "Task-Free 15 deps": 17042,
        "Task-Chain 1 dep": 18459, "Task-Chain 15 deps": 18668,
    },
    "nanos-sw": {
        "Task-Free 1 dep": 25208, "Task-Free 15 deps": 99008,
        "Task-Chain 1 dep": 35867, "Task-Chain 15 deps": 58214,
    },
}

#: Default task count of an overhead measurement (large enough to amortise
#: program start-up, small enough to keep wall-clock time reasonable).
DEFAULT_NUM_TASKS = 150


@dataclass(frozen=True)
class OverheadMeasurement:
    """One cell of the Figure 7 table."""

    platform: str
    workload: str
    cycles_per_task: float
    paper_cycles_per_task: Optional[int] = None

    @property
    def ratio_to_paper(self) -> Optional[float]:
        """Measured / paper value (None when the paper has no number)."""
        if not self.paper_cycles_per_task:
            return None
        return self.cycles_per_task / self.paper_cycles_per_task


def _build_workload(kind: str, num_dependences: int, num_tasks: int,
                    payload_cycles: int):
    if kind == "task-free":
        return task_free_program(num_tasks, num_dependences, payload_cycles)
    if kind == "task-chain":
        return task_chain_program(num_tasks, num_dependences, payload_cycles)
    raise EvaluationError(f"unknown overhead workload kind {kind!r}")


def _resolve_platform(platform: str) -> Type[Runtime]:
    """Resolve a platform name to a runtime class via the plugin registry.

    The Figure 7 platforms resolve as before; any other registered
    non-baseline runtime — including drop-in plugins — is measurable too,
    so scaling bounds can be computed for new runtimes with no edits here.
    """
    cls = OVERHEAD_PLATFORMS.get(platform)
    if cls is not None:
        return cls
    from repro import registry
    try:
        spec = registry.runtime(platform)
    except registry.RegistryError as exc:
        raise EvaluationError(str(exc)) from exc
    if "baseline" in spec.tags:
        raise EvaluationError(
            f"platform {platform!r} is the serial baseline; it has no "
            f"scheduling machinery to measure"
        )
    return spec.cls


def measure_lifetime_overhead(
    platform: str,
    workload_kind: str = "task-chain",
    num_dependences: int = 1,
    num_tasks: int = DEFAULT_NUM_TASKS,
    config: Optional[SimConfig] = None,
) -> float:
    """Measure ``Lo`` (cycles per task) of ``platform`` on one workload."""
    runtime = _resolve_platform(platform)(config)
    program = _build_workload(workload_kind, num_dependences, num_tasks,
                              payload_cycles=0)
    result = runtime.run(program, num_workers=1)
    return result.elapsed_cycles / num_tasks


def overhead_table(config: Optional[SimConfig] = None,
                   num_tasks: int = DEFAULT_NUM_TASKS,
                   platforms: Optional[Sequence[str]] = None
                   ) -> List[OverheadMeasurement]:
    """Reproduce the full Figure 7 matrix (platforms × workloads)."""
    selected = list(platforms) if platforms else list(OVERHEAD_PLATFORMS)
    measurements: List[OverheadMeasurement] = []
    for platform in selected:
        for label, kind, deps in OVERHEAD_WORKLOADS:
            cycles = measure_lifetime_overhead(
                platform, kind, deps, num_tasks, config
            )
            paper = PAPER_FIGURE7_CYCLES.get(platform, {}).get(label)
            measurements.append(
                OverheadMeasurement(platform=platform, workload=label,
                                    cycles_per_task=cycles,
                                    paper_cycles_per_task=paper)
            )
    return measurements
