"""Scaling-scenario evaluation: speedup-versus-cores beyond the prototype.

The paper only evaluates the 8-core FPGA prototype, but nothing in the
models is specific to eight cores: :meth:`SimConfig.with_cores` rebuilds
the machine at any width and the MTT bound of Equation 1 is parametric in
the core count.  This module runs every Figure 9 benchmark input on every
compared runtime across a grid of core counts (1..64 by default) and
reports each (case, runtime) pair as a :class:`ScalingCurve`: measured
speedup over serial at every core count, side by side with the MTT bound
``min(N, t / Lo)`` at that count, plus the two saturation points that
summarise the curve —

* the **bound saturation** ``t / Lo``: the core count beyond which the
  analytic bound stops growing (adding cores cannot help, the scheduler's
  task throughput is the limit), and
* the **measured saturation**: the smallest simulated core count after
  which the measured speedup never improves by more than a tolerance.

``scaling_curves`` is the first experiment in the registry that the paper
does not contain; the harness engine fans its (case × core count) grid
through the same process pool and result cache as the Figure 9 sweep, so
the 8-core column is served from (and is bit-identical to) the existing
Figure 9 results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import registry
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import (
    EXPERIMENT_SPECS,
    EXPERIMENTS,
    FIGURE6_DEFAULT_NUM_TASKS,
    BenchmarkCase,
    BenchmarkRun,
    ExperimentSpec,
    benchmark_cases,
    checked_geometric_mean,
    run_benchmark_case,
)
from repro.registry import RegistryError
from repro.eval.mtt import speedup_bound
from repro.eval.overhead import measure_lifetime_overhead

__all__ = [
    "DEFAULT_CORE_COUNTS",
    "SATURATION_TOLERANCE",
    "ScalingPoint",
    "ScalingCurve",
    "normalize_core_counts",
    "normalize_runtimes",
    "align_runs_by_cores",
    "measure_scaling_overheads",
    "build_scaling_curves",
    "scaling_curves",
    "scaling_geomeans",
]

#: Core counts of the default scaling grid: the paper's 8-core point plus
#: the halvings below it and the doublings the prototype never built.
DEFAULT_CORE_COUNTS = (1, 2, 4, 8, 16, 32, 64)

#: A curve counts as saturated once growing the machine further never buys
#: more than this fractional speedup improvement.
SATURATION_TOLERANCE = 0.05

#: Task count of the single-worker overhead measurement behind each curve's
#: MTT bound — the Figure 6 default, so bounds agree across figures.
DEFAULT_OVERHEAD_NUM_TASKS = FIGURE6_DEFAULT_NUM_TASKS


@dataclass(frozen=True)
class ScalingPoint:
    """One core count of one (case, runtime) scaling curve."""

    cores: int
    speedup_vs_serial: float
    #: Equation 1 at this core count: ``min(cores, task_size / Lo)``.
    mtt_bound: float


@dataclass
class ScalingCurve:
    """Speedup-versus-cores of one benchmark input on one runtime."""

    runtime: str
    benchmark: str
    label: str
    mean_task_cycles: float
    #: Single-worker Task-Chain lifetime overhead ``Lo`` of the runtime.
    lifetime_overhead_cycles: float
    points: List[ScalingPoint] = field(default_factory=list)

    @property
    def case_key(self) -> str:
        """Stable case identifier, e.g. ``blackscholes/4K B8``."""
        return f"{self.benchmark}/{self.label}"

    def speedup_at(self, cores: int) -> float:
        """Measured speedup at ``cores`` (raises if the grid lacks it)."""
        for point in self.points:
            if point.cores == cores:
                return point.speedup_vs_serial
        raise EvaluationError(
            f"scaling_curves: no {cores}-core point for {self.case_key} "
            f"({self.runtime}); grid has {[p.cores for p in self.points]}"
        )

    @property
    def bound_saturation_cores(self) -> float:
        """Core count where the MTT bound flattens (``t / Lo``)."""
        return self.mean_task_cycles / self.lifetime_overhead_cycles

    def measured_saturation_cores(
            self, tolerance: float = SATURATION_TOLERANCE) -> int:
        """Smallest simulated core count after which scaling has flattened.

        Returns the cores of the first point whose speedup every later
        point fails to beat by more than ``tolerance`` (fractionally); the
        largest simulated count when the curve is still growing at the end
        of the grid.
        """
        for index, point in enumerate(self.points):
            ceiling = point.speedup_vs_serial * (1.0 + tolerance)
            if all(later.speedup_vs_serial <= ceiling
                   for later in self.points[index + 1:]):
                return point.cores
        return self.points[-1].cores


def normalize_core_counts(
        core_counts: Optional[Sequence[int]] = None) -> List[int]:
    """Sorted, de-duplicated, validated core counts (default 1..64 grid)."""
    counts = sorted(set(core_counts if core_counts is not None
                        else DEFAULT_CORE_COUNTS))
    if not counts:
        raise EvaluationError("scaling_curves: core_counts must not be empty")
    for count in counts:
        if not isinstance(count, int) or count <= 0:
            raise EvaluationError(
                f"scaling_curves: core counts must be positive integers, "
                f"got {count!r}"
            )
    return counts


def normalize_runtimes(
        runtimes: Optional[Sequence[str]] = None) -> List[str]:
    """Validated runtime selection in the registry's plotting (rank) order.

    Defaults to the compared platforms of the paper; any registered
    non-serial runtime — including drop-in plugins — is accepted.  Unknown
    names raise :class:`EvaluationError` with a did-you-mean suggestion.
    """
    if runtimes is None:
        return registry.compared_runtime_names()
    selected = list(dict.fromkeys(runtimes))
    if not selected or "serial" in selected:
        raise EvaluationError(
            f"scaling_curves: runtimes must be a non-empty selection of "
            f"non-serial runtimes, got {list(runtimes)!r} (the serial "
            f"baseline always runs; it has no scaling curve of its own)"
        )
    for name in selected:
        try:
            registry.runtime(name)
        except RegistryError as exc:
            raise EvaluationError(f"scaling_curves: {exc}") from exc
    return [name for name in registry.runtime_names() if name in selected]


def align_runs_by_cores(
    runs_by_cores: Mapping[int, Sequence[BenchmarkRun]],
) -> Tuple[Dict[int, List[BenchmarkRun]], List[str]]:
    """Restrict per-core-count sweeps to the cases present at every count.

    Partial sweeps (keep-going mode with failed units) may be missing
    different cases at different core counts; scaling curves need every
    case at every count.  Returns ``(aligned, dropped)`` where ``aligned``
    keeps only the cases covered by *all* counts (in the order of the
    smallest count's sweep) and ``dropped`` lists the case keys that had
    to be discarded, so callers can report the loss.
    """
    if not runs_by_cores:
        return {}, []
    key_sets = [{run.case.key for run in runs}
                for runs in runs_by_cores.values()]
    common = set.intersection(*key_sets)
    aligned = {
        count: [run for run in runs if run.case.key in common]
        for count, runs in runs_by_cores.items()
    }
    dropped = sorted(set.union(*key_sets) - common)
    return aligned, dropped


def measure_scaling_overheads(
        config: Optional[SimConfig] = None,
        runtimes: Optional[Sequence[str]] = None,
        num_tasks: int = DEFAULT_OVERHEAD_NUM_TASKS) -> Dict[str, float]:
    """Single-worker Task-Chain ``Lo`` per runtime, for the MTT bounds.

    Measured exactly like the Figure 6 bound inputs (Task-Chain, one
    dependence, one worker), so scaling bounds and Figure 6/10 bounds agree.
    """
    return {
        runtime: measure_lifetime_overhead(
            runtime, "task-chain", 1, num_tasks, config
        )
        for runtime in normalize_runtimes(runtimes)
    }


def build_scaling_curves(
    runs_by_cores: Mapping[int, Sequence[BenchmarkRun]],
    overheads: Mapping[str, float],
    runtimes: Optional[Sequence[str]] = None,
) -> List[ScalingCurve]:
    """Assemble curves from per-core-count Figure 9 sweeps.

    ``runs_by_cores`` maps each simulated core count to the benchmark runs
    executed at that count; every count must cover the same case list.
    ``overheads`` supplies the per-runtime ``Lo`` behind the MTT bounds.
    """
    counts = normalize_core_counts(list(runs_by_cores))
    selected = normalize_runtimes(runtimes)
    missing = [runtime for runtime in selected if runtime not in overheads]
    if missing:
        raise EvaluationError(
            f"scaling_curves: no lifetime overhead measured for {missing!r}"
        )
    reference = list(runs_by_cores[counts[0]])
    reference_keys = [run.case.key for run in reference]
    for count in counts[1:]:
        keys = [run.case.key for run in runs_by_cores[count]]
        if keys != reference_keys:
            raise EvaluationError(
                f"scaling_curves: case list at {count} cores does not match "
                f"the {counts[0]}-core sweep"
            )
    curves: List[ScalingCurve] = []
    for index, run in enumerate(reference):
        for runtime in selected:
            overhead = overheads[runtime]
            curve = ScalingCurve(
                runtime=runtime,
                benchmark=run.case.benchmark,
                label=run.case.label,
                mean_task_cycles=run.mean_task_cycles,
                lifetime_overhead_cycles=overhead,
            )
            for count in counts:
                at_count = runs_by_cores[count][index]
                try:
                    speedup = at_count.speedup_vs_serial(runtime)
                except Exception as exc:
                    raise EvaluationError(
                        f"scaling_curves: cannot compute the {count}-core "
                        f"speedup of {run.case.key} ({runtime}): {exc}"
                    ) from exc
                curve.points.append(ScalingPoint(
                    cores=count,
                    speedup_vs_serial=speedup,
                    mtt_bound=speedup_bound(run.mean_task_cycles, overhead,
                                            count),
                ))
            curves.append(curve)
    return curves


def scaling_curves(
    config: Optional[SimConfig] = None,
    core_counts: Optional[Sequence[int]] = None,
    quick: bool = False,
    scale: float = 1.0,
    cases: Optional[Sequence[BenchmarkCase]] = None,
    runtimes: Optional[Sequence[str]] = None,
    runs_by_cores: Optional[Mapping[int, Sequence[BenchmarkRun]]] = None,
    overheads: Optional[Mapping[str, float]] = None,
) -> List[ScalingCurve]:
    """Run (or assemble) the scaling-curve experiment.

    Without ``runs_by_cores`` this executes the benchmark sweep once per
    core count in-process — correct but serial; the harness engine passes
    pre-computed sweeps instead, fanned out over its process pool and
    served from its result cache (``python -m repro sweep``).
    """
    config = config if config is not None else SimConfig()
    counts = normalize_core_counts(core_counts)
    selected = normalize_runtimes(runtimes)
    if overheads is None:
        overheads = measure_scaling_overheads(config, selected)
    if runs_by_cores is None:
        chosen = (list(cases) if cases is not None
                  else benchmark_cases(quick, scale))
        runs_by_cores = {
            count: [run_benchmark_case(case, config.with_cores(count), count,
                                       runtimes=selected)
                    for case in chosen]
            for count in counts
        }
    else:
        grid_counts = sorted(runs_by_cores)
        if grid_counts != counts:
            raise EvaluationError(
                f"scaling_curves: runs_by_cores covers {grid_counts}, "
                f"expected {counts}"
            )
    return build_scaling_curves(runs_by_cores, overheads, selected)


def scaling_geomeans(
        curves: Sequence[ScalingCurve]) -> Dict[str, Dict[int, float]]:
    """Geometric-mean speedup per runtime and core count across all cases."""
    grouped: Dict[str, Dict[int, List[float]]] = {}
    for curve in curves:
        per_cores = grouped.setdefault(curve.runtime, {})
        for point in curve.points:
            per_cores.setdefault(point.cores, []).append(
                point.speedup_vs_serial)
    return {
        runtime: {
            cores: checked_geometric_mean(
                values, "scaling_curves",
                f"{runtime} speedups at {cores} cores",
            )
            for cores, values in sorted(per_cores.items())
        }
        for runtime, per_cores in grouped.items()
    }


# --------------------------------------------------------------------- #
# Registry self-registration
# --------------------------------------------------------------------- #
# ``repro.eval.experiments`` must not import this module (scaling imports
# the case/runtime machinery from it), so the spec registers itself on
# import; ``repro.eval`` and the harness engine/CLI all import this module,
# which keeps the registry complete on every entry path.
EXPERIMENT_SPECS.setdefault(
    "scaling_curves",
    ExperimentSpec(
        "scaling_curves",
        "Speedup versus core count (1..64) against the MTT bounds",
        scaling_curves,
        depends_on=("figure9",),
    ),
)
EXPERIMENTS.setdefault("scaling_curves", scaling_curves)
