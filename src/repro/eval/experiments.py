"""Experiment registry: one runner per figure/table of the evaluation.

The functions here regenerate the paper's evaluation artefacts:

* :func:`figure6_mtt_bounds` — MTT-derived maximum-speedup curves for the
  four platforms (8 cores) over a sweep of task sizes.
* :func:`figure7_overhead` — lifetime scheduling overhead per task for
  Task-Free / Task-Chain × 1 / 15 dependences × 4 platforms.
* :func:`figure9_benchmarks` — normalised performance of Nanos-SW, Nanos-RV
  and Phentos on all 37 benchmark inputs (plus the serial baseline).
* :func:`figure8_granularity` — the same runs re-expressed as speedup versus
  mean task size (over serial, over Nanos-SW, over Nanos-RV).
* :func:`figure10_bounds_vs_measured` — measured speedups overlaid on the
  MTT bounds, per platform.
* :func:`table2_resources` — the FPGA resource-usage breakdown.
* :func:`headline_summary` — the geometric-mean and maximum speedups quoted
  in the abstract/conclusion.

Every runner only needs a :class:`~repro.common.config.SimConfig`; results
are plain dataclasses/dicts so the benchmark harness and the reporting
helpers can render them as the rows/series the paper plots.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import repro.apps  # noqa: F401  (workload self-registration side effect)
import repro.runtime  # noqa: F401  (runtime self-registration side effect)
from repro import registry
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.common.stats import geometric_mean
from repro.eval.mtt import MttBound, bound_curve, default_task_sizes
from repro.eval.overhead import (
    OVERHEAD_PLATFORMS,
    OverheadMeasurement,
    measure_lifetime_overhead,
    overhead_table,
)
from repro.eval.resources import ResourceEntry, resource_table
from repro.registry import RegistryError
from repro.runtime.base import RuntimeResult
from repro.runtime.task import TaskProgram
from repro.scenario import (canonical_scenario, compile_scenario,
                            scenario_case_context)

__all__ = [
    "BenchmarkCase",
    "BenchmarkRun",
    "CASE_BUILDERS",
    "CASE_RUNTIMES",
    "benchmark_cases",
    "canonical_runtime_selection",
    "run_benchmark_case",
    "figure6_mtt_bounds",
    "figure7_overhead",
    "figure8_granularity",
    "figure9_benchmarks",
    "figure10_bound_task_sizes",
    "figure10_bounds_vs_measured",
    "table2_resources",
    "headline_summary",
    "checked_geometric_mean",
    "HeadlineSummary",
    "ExperimentSpec",
    "EXPERIMENT_SPECS",
    "EXPERIMENTS",
]


def checked_geometric_mean(values: Sequence[float], experiment: str,
                           series: str) -> float:
    """:func:`geometric_mean` that raises :class:`EvaluationError` instead.

    ``geometric_mean`` raises a bare :class:`ValueError` on an empty or
    non-positive series; every experiment aggregation goes through this
    wrapper so the failure names the experiment and the offending input
    rather than surfacing an anonymous statistics error.
    """
    try:
        return geometric_mean(values)
    except ValueError as exc:
        raise EvaluationError(
            f"{experiment}: geometric mean of {series} failed ({exc}); "
            f"values={list(values)!r}"
        ) from exc

#: Runtimes compared in Figures 8/9/10, in the paper's plotting order.
#: (The derived figures hard-code the paper's three-way comparison; the
#: sweep itself is registry-driven and accepts any registered runtime.)
_COMPARED_RUNTIMES = tuple(registry.compared_runtime_names())


class _DeprecatedRegistryView(Mapping):
    """Read-only dict-shaped view over a registry, warning on access.

    Keeps the legacy ``CASE_BUILDERS`` / ``CASE_RUNTIMES`` module globals
    importable (and value-correct) while steering callers to
    :mod:`repro.registry`.  The view is live: plugin registrations show up
    here too, so shim consumers and registry consumers cannot disagree.
    """

    def __init__(self, name: str, replacement: str,
                 resolve: Callable[[], Dict[str, object]]) -> None:
        self._name = name
        self._replacement = replacement
        self._resolve = resolve

    def _warn(self) -> None:
        warnings.warn(
            f"{self._name} is deprecated; use {self._replacement} instead",
            DeprecationWarning, stacklevel=3,
        )

    def __getitem__(self, key: str) -> object:
        self._warn()
        return self._resolve()[key]

    def __iter__(self) -> Iterator[str]:
        self._warn()
        return iter(self._resolve())

    def __len__(self) -> int:
        self._warn()
        return len(self._resolve())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<deprecated view of {self._replacement}>"


#: Deprecated: named program builders for the benchmark cases.  Cases
#: reference builders by registry name (rather than holding a closure) so
#: that they stay picklable — the parallel harness ships cases to worker
#: processes — and hashable, so the result cache can fingerprint them
#: deterministically.  Use ``repro.registry.workload(name).builder``.
CASE_BUILDERS: Mapping[str, Callable[..., TaskProgram]] = \
    _DeprecatedRegistryView(
        "CASE_BUILDERS", "repro.registry.WORKLOADS",
        lambda: {spec.name: spec.builder
                 for spec in registry.WORKLOADS.specs()},
    )

#: Deprecated: runtimes every Figure 9 case runs on (the serial baseline
#: plus the three compared platforms), keyed by report name.  Use
#: ``repro.registry.case_runtime_names()`` / ``repro.registry.runtime()``.
CASE_RUNTIMES: Mapping[str, Callable] = _DeprecatedRegistryView(
    "CASE_RUNTIMES", "repro.registry.RUNTIMES",
    lambda: {name: registry.runtime(name).cls
             for name in registry.case_runtime_names()},
)


#: The paper's case runtimes: the fixed set behind the runtime-less cache
#: keys of pre-registry releases.  Deliberately a literal, not a registry
#: query — a plugin registering another ``case``-tagged runtime must NOT
#: be served cache entries that were written without it.
_PAPER_CASE_RUNTIMES = ("serial", "nanos-sw", "nanos-rv", "phentos")


def canonical_runtime_selection(
        runtimes: Optional[Sequence[str]] = None
) -> Optional[Tuple[str, ...]]:
    """Canonical form of a benchmark-case runtime selection.

    Returns ``None`` — "the paper's four case runtimes" — whenever the
    effective selection collapses to that fixed set, so equivalent
    requests share one cache entry and the default keys stay
    byte-identical to pre-registry releases.  Any other effective set —
    an explicit selection reaching outside the paper four, or a default
    request while a plugin has extended the ``case``-tagged registry set —
    yields the executed runtime tuple: ``"serial"`` first (the baseline
    always runs: every speedup is measured against it), then the selected
    runtimes in registry rank order.  Unknown names raise
    :class:`EvaluationError` with a did-you-mean suggestion.
    """
    if runtimes is None:
        current = tuple(registry.case_runtime_names())
        return None if current == _PAPER_CASE_RUNTIMES else current
    names = list(dict.fromkeys(name for name in runtimes
                               if name != "serial"))
    if not names:
        raise EvaluationError(
            "runtime selection must name at least one non-serial runtime"
        )
    for name in names:
        try:
            registry.runtime(name)
        except RegistryError as exc:
            raise EvaluationError(str(exc)) from exc
    if set(names) <= set(_PAPER_CASE_RUNTIMES):
        # A subset of the paper sweep still runs the whole paper sweep
        # (callers narrow presentation, not execution), so it shares the
        # default cache entries.
        return None
    ordered = sorted(names, key=lambda n: (registry.runtime(n).rank, n))
    return ("serial", *ordered)


@dataclass(frozen=True)
class BenchmarkCase:
    """One of the 37 benchmark inputs of Figure 9.

    A case is a pure-data description: ``builder`` names an entry in
    :data:`CASE_BUILDERS` and ``params`` holds its keyword arguments as a
    sorted tuple of pairs.  This keeps cases picklable (for the process-pool
    harness) and deterministically hashable (for the result cache).
    """

    benchmark: str
    label: str
    builder: str
    params: Tuple[Tuple[str, object], ...]

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``blackscholes/4K B8``."""
        return f"{self.benchmark}/{self.label}"

    def build(self) -> TaskProgram:
        """Construct the case's task program via the workload registry."""
        try:
            spec = registry.workload(self.builder)
        except RegistryError as exc:
            raise EvaluationError(
                f"unknown case builder {self.builder!r}"
                f"{registry.suggest(self.builder, registry.workload_names())}"
            ) from exc
        return spec.builder(**dict(self.params))


def _case_params(**kwargs: object) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(kwargs.items()))


@dataclass
class BenchmarkRun:
    """All runtime results for one benchmark input."""

    case: BenchmarkCase
    mean_task_cycles: float
    results: Dict[str, RuntimeResult] = field(default_factory=dict)

    def speedup_vs_serial(self, runtime: str) -> float:
        """Speedup of ``runtime`` over the serial execution."""
        return self.results[runtime].speedup_vs_serial

    def speedup_over(self, runtime: str, baseline: str) -> float:
        """Speedup of ``runtime`` with respect to ``baseline``."""
        return (self.results[baseline].elapsed_cycles
                / self.results[runtime].elapsed_cycles)


def benchmark_cases(quick: bool = False,
                    scale: float = 1.0,
                    workloads: Optional[Sequence[str]] = None,
                    tags: Optional[Sequence[str]] = None
                    ) -> List[BenchmarkCase]:
    """The benchmark input list of a sweep, drawn from the registry.

    The default selection — every workload tagged ``paper`` — reproduces
    the Figure 9 input list exactly (37 cases; a reduced set when
    ``quick``).  ``workloads`` restricts the sweep to the named registry
    entries (did-you-mean on unknown names) and ``tags`` to workloads
    carrying every listed tag; a workload registered without explicit paper
    cases contributes one case built from its default parameters, so any
    drop-in plugin is sweepable with no further wiring.  ``scale`` < 1
    shrinks problem sizes proportionally (used by unit tests).
    """
    if scale <= 0:
        raise EvaluationError("scale must be positive")
    if workloads is not None:
        selected = []
        for name in dict.fromkeys(workloads):
            try:
                selected.append(registry.workload(name))
            except RegistryError as exc:
                raise EvaluationError(str(exc)) from exc
        if tags:
            wanted = set(tags)
            selected = [spec for spec in selected
                        if wanted.issubset(set(spec.tags))]
    else:
        selected = registry.WORKLOADS.specs(tags=tags if tags else ("paper",))
    if not selected:
        raise EvaluationError(
            f"no registered workload matches workloads={workloads!r} "
            f"tags={tags!r}"
        )
    cases: List[BenchmarkCase] = []
    for spec in selected:
        for case_input in spec.cases(quick=quick, scale=scale):
            cases.append(BenchmarkCase(
                case_input.benchmark, case_input.label, spec.name,
                _case_params(**dict(case_input.params)),
            ))
    return cases


# --------------------------------------------------------------------- #
# Figure 6
# --------------------------------------------------------------------- #
#: Default micro-benchmark length of the Figure 6 bound measurement (also
#: used for Figure 10's bound curves); the harness engine reads it too.
FIGURE6_DEFAULT_NUM_TASKS = 120


def figure6_mtt_bounds(
    config: Optional[SimConfig] = None,
    task_sizes: Optional[Sequence[float]] = None,
    num_tasks: int = FIGURE6_DEFAULT_NUM_TASKS,
) -> Dict[str, List[MttBound]]:
    """MTT-derived maximum speedup curves for the four platforms (8 cores).

    Follows the paper: the bound of each platform is computed from its
    Task-Chain (1 dependence) lifetime overhead via Equation 1, capped at
    the number of cores.
    """
    config = config if config is not None else SimConfig()
    sizes = list(task_sizes) if task_sizes else default_task_sizes()
    num_cores = config.machine.num_cores
    curves: Dict[str, List[MttBound]] = {}
    for platform in OVERHEAD_PLATFORMS:
        overhead = measure_lifetime_overhead(
            platform, "task-chain", 1, num_tasks, config
        )
        curves[platform] = bound_curve(overhead, num_cores, sizes)
    return curves


# --------------------------------------------------------------------- #
# Figure 7
# --------------------------------------------------------------------- #
def figure7_overhead(config: Optional[SimConfig] = None,
                     num_tasks: int = 150) -> List[OverheadMeasurement]:
    """Lifetime scheduling overhead per task for every platform/workload."""
    return overhead_table(config, num_tasks)


# --------------------------------------------------------------------- #
# Figure 9 (and the raw data behind Figures 8 and 10)
# --------------------------------------------------------------------- #
def run_benchmark_case(
    case: BenchmarkCase,
    config: Optional[SimConfig] = None,
    num_workers: Optional[int] = None,
    runtimes: Optional[Sequence[str]] = None,
    scenario=None,
) -> BenchmarkRun:
    """Execute one benchmark input on the case runtimes (registry-driven).

    ``runtimes`` defaults to the registry's case set (serial baseline plus
    the compared platforms); passing names canonicalises them through
    :func:`canonical_runtime_selection`, so any registered runtime —
    including drop-in plugins — is runnable here.  This is the case-level
    execution hook shared by the serial :func:`figure9_benchmarks` loop and
    the parallel harness (:mod:`repro.harness.runner`): a case is
    self-contained, so executing it in a worker process yields results
    identical to the in-process loop.

    ``scenario`` — an optional :class:`~repro.scenario.ScenarioSpec` — is
    compiled here, once per case: the arrival/ETM draws are shared by all
    selected runtimes (apples-to-apples under jitter), while each runtime
    gets its own scheduler stream.  The default / ``None`` spec leaves the
    deterministic path byte-identical.
    """
    config = config if config is not None else SimConfig()
    workers = num_workers if num_workers is not None else \
        config.machine.num_cores
    selection = canonical_runtime_selection(runtimes)
    names = (list(_PAPER_CASE_RUNTIMES) if selection is None
             else list(selection))
    program = case.build()
    compiled = None
    spec = canonical_scenario(scenario)
    if spec is not None:
        compiled = compile_scenario(spec, scenario_case_context(case),
                                    program)
        program = compiled.program
    run = BenchmarkRun(case=case, mean_task_cycles=program.mean_task_cycles)
    for name in names:
        runtime = registry.runtime(name).cls(config)
        run_workers = 1 if name == "serial" else workers
        if compiled is None:
            run.results[name] = runtime.run(program, num_workers=run_workers)
        else:
            run.results[name] = runtime.run(
                program, num_workers=run_workers,
                scenario=compiled.runtime_run(name))
    return run


def figure9_benchmarks(
    config: Optional[SimConfig] = None,
    quick: bool = False,
    scale: float = 1.0,
    num_workers: Optional[int] = None,
    cases: Optional[Sequence[BenchmarkCase]] = None,
    runtimes: Optional[Sequence[str]] = None,
    scenario=None,
) -> List[BenchmarkRun]:
    """Run every benchmark input on serial, Nanos-SW, Nanos-RV and Phentos."""
    config = config if config is not None else SimConfig()
    workers = num_workers if num_workers is not None else \
        config.machine.num_cores
    selected = list(cases) if cases is not None else benchmark_cases(quick, scale)
    return [run_benchmark_case(case, config, workers, runtimes,
                               scenario=scenario)
            for case in selected]


# --------------------------------------------------------------------- #
# Figure 8
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GranularityPoint:
    """One scatter point of Figure 8."""

    runtime: str
    benchmark: str
    label: str
    task_size_cycles: float
    speedup_vs_serial: float
    speedup_vs_nanos_sw: float
    speedup_vs_nanos_rv: float


def figure8_granularity(runs: Sequence[BenchmarkRun]) -> List[GranularityPoint]:
    """Re-express the Figure 9 runs as speedup-versus-task-size points."""
    points: List[GranularityPoint] = []
    for run in runs:
        for runtime in _COMPARED_RUNTIMES:
            try:
                point = GranularityPoint(
                    runtime=runtime,
                    benchmark=run.case.benchmark,
                    label=run.case.label,
                    task_size_cycles=run.mean_task_cycles,
                    speedup_vs_serial=run.speedup_vs_serial(runtime),
                    speedup_vs_nanos_sw=run.speedup_over(runtime, "nanos-sw"),
                    speedup_vs_nanos_rv=run.speedup_over(runtime, "nanos-rv"),
                )
            except EvaluationError:
                raise
            except Exception as exc:
                # A run with missing runtimes or degenerate cycle counts
                # (e.g. decoded from a hand-edited artifact) would otherwise
                # surface as a bare KeyError/ZeroDivisionError.
                raise EvaluationError(
                    f"figure8: cannot compute speedups for {run.case.key} "
                    f"({runtime}): {exc!r}"
                ) from exc
            points.append(point)
    return points


# --------------------------------------------------------------------- #
# Figure 10
# --------------------------------------------------------------------- #
@dataclass
class BoundComparison:
    """Measured speedups of one platform next to its MTT bound curve."""

    platform: str
    bound: List[MttBound]
    measured: List[Tuple[float, float]]  # (task size, speedup vs serial)

    def violations(self, tolerance: float = 1.10,
                   min_speedup: float = 1.0) -> List[Tuple[float, float]]:
        """Measured points exceeding the bound by more than ``tolerance``.

        Points below ``min_speedup`` are ignored: in the scheduling-bound
        regime the Equation-1 bound is derived from the *whole* lifetime
        overhead of the Task-Chain workload, while a real run pipelines the
        submission, fetch and retirement stages across cores, so measured
        throughput can legitimately sit slightly above the analytic curve
        when both are far below 1x.  The interesting claim — that no run
        beats the bound where the bound actually constrains performance —
        is what this method checks.
        """
        out: List[Tuple[float, float]] = []
        for task_size, speedup in self.measured:
            if speedup < min_speedup:
                continue
            limit = _interpolate_bound(self.bound, task_size)
            if speedup > limit * tolerance:
                out.append((task_size, speedup))
        return out


def _interpolate_bound(bound: Sequence[MttBound], task_size: float) -> float:
    if not bound:
        raise EvaluationError("empty bound curve")
    previous = bound[0]
    for point in bound:
        if point.task_size_cycles >= task_size:
            return point.max_speedup
        previous = point
    return previous.max_speedup


def figure10_bound_task_sizes() -> List[float]:
    """Task sizes of the default Figure 10 bound curves.

    Shared between the ``bounds=None`` fallback below and the harness
    engine's cached bound computation, so the two cannot drift apart.
    """
    return default_task_sizes(2, 7, 4)


def figure10_bounds_vs_measured(
    runs: Sequence[BenchmarkRun],
    config: Optional[SimConfig] = None,
    bounds: Optional[Dict[str, List[MttBound]]] = None,
) -> Dict[str, BoundComparison]:
    """Overlay the measured speedups on the MTT bounds, per platform."""
    config = config if config is not None else SimConfig()
    if bounds is None:
        bounds = figure6_mtt_bounds(config,
                                    task_sizes=figure10_bound_task_sizes())
    comparisons: Dict[str, BoundComparison] = {}
    for platform in _COMPARED_RUNTIMES:
        measured = [
            (run.mean_task_cycles, run.speedup_vs_serial(platform))
            for run in runs
        ]
        comparisons[platform] = BoundComparison(
            platform=platform,
            bound=bounds.get(platform, []),
            measured=measured,
        )
    return comparisons


# --------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------- #
def table2_resources(config: Optional[SimConfig] = None) -> List[ResourceEntry]:
    """The FPGA resource-usage breakdown of the prototype."""
    config = config if config is not None else SimConfig()
    return resource_table(config.machine)


# --------------------------------------------------------------------- #
# Headline numbers
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class HeadlineSummary:
    """The summary statistics quoted in the abstract and conclusion."""

    geomean_nanos_rv_vs_sw: float
    geomean_phentos_vs_sw: float
    geomean_phentos_vs_rv: float
    max_speedup_vs_serial_nanos_rv: float
    max_speedup_vs_serial_phentos: float
    max_speedup_phentos_vs_sw: float
    nanos_rv_wins_vs_sw: int
    phentos_wins_vs_sw: int
    phentos_wins_vs_rv: int
    phentos_regressions_vs_sw: int
    num_cases: int


def headline_summary(runs: Sequence[BenchmarkRun]) -> HeadlineSummary:
    """Compute the paper's headline statistics from the Figure 9 runs."""
    if not runs:
        raise EvaluationError("headline_summary needs at least one run")
    rv_vs_sw = [run.speedup_over("nanos-rv", "nanos-sw") for run in runs]
    ph_vs_sw = [run.speedup_over("phentos", "nanos-sw") for run in runs]
    ph_vs_rv = [run.speedup_over("phentos", "nanos-rv") for run in runs]
    return HeadlineSummary(
        geomean_nanos_rv_vs_sw=checked_geometric_mean(
            rv_vs_sw, "headline", "nanos-rv vs nanos-sw speedups"),
        geomean_phentos_vs_sw=checked_geometric_mean(
            ph_vs_sw, "headline", "phentos vs nanos-sw speedups"),
        geomean_phentos_vs_rv=checked_geometric_mean(
            ph_vs_rv, "headline", "phentos vs nanos-rv speedups"),
        max_speedup_vs_serial_nanos_rv=max(
            run.speedup_vs_serial("nanos-rv") for run in runs
        ),
        max_speedup_vs_serial_phentos=max(
            run.speedup_vs_serial("phentos") for run in runs
        ),
        max_speedup_phentos_vs_sw=max(ph_vs_sw),
        nanos_rv_wins_vs_sw=sum(1 for value in rv_vs_sw if value > 1.0),
        phentos_wins_vs_sw=sum(1 for value in ph_vs_sw if value > 1.0),
        phentos_wins_vs_rv=sum(1 for value in ph_vs_rv if value > 1.0),
        phentos_regressions_vs_sw=sum(1 for value in ph_vs_sw if value < 0.97),
        num_cases=len(runs),
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry describing one experiment of the evaluation.

    ``depends_on`` names the experiments whose results the runner consumes
    (today always ``figure9``: Figures 8/10 and the headline summary are all
    derived from the benchmark sweep).  The harness engine uses it to chain
    derived experiments behind their inputs, serving shared inputs from the
    result cache instead of re-running them.
    """

    experiment_id: str
    title: str
    runner: Callable
    depends_on: Tuple[str, ...] = ()

    @property
    def is_derived(self) -> bool:
        """True when this experiment is computed from other experiments."""
        return bool(self.depends_on)


#: Full registry of the paper's evaluation artefacts, keyed by experiment
#: identifier.  (Presentation order is the CLI's concern — see
#: ``_RUN_ORDER`` in :mod:`repro.harness.cli`.)
EXPERIMENT_SPECS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec for spec in (
        ExperimentSpec(
            "figure6", "MTT-derived maximum speedup bounds (8 cores)",
            figure6_mtt_bounds,
        ),
        ExperimentSpec(
            "figure7", "Lifetime Task Scheduling overhead (cycles per task)",
            figure7_overhead,
        ),
        ExperimentSpec(
            "figure9", "Benchmark sweep (speedup over serial)",
            figure9_benchmarks,
        ),
        ExperimentSpec(
            "figure8", "Speedup versus task granularity",
            figure8_granularity, depends_on=("figure9",),
        ),
        ExperimentSpec(
            "figure10", "Measured speedups versus MTT bounds",
            figure10_bounds_vs_measured, depends_on=("figure9",),
        ),
        ExperimentSpec(
            "table2", "FPGA resource usage breakdown",
            table2_resources,
        ),
        ExperimentSpec(
            "headline", "Headline summary (abstract / conclusion numbers)",
            headline_summary, depends_on=("figure9",),
        ),
    )
}

#: Registry mapping experiment identifiers to their runner functions, used
#: by the benchmark harness and the ``examples/reproduce_paper.py`` script.
#: Derived experiments (``figure8``, ``figure10``, ``headline``) take the
#: Figure 9 runs as their first argument; see :data:`EXPERIMENT_SPECS`.
EXPERIMENTS: Dict[str, Callable] = {
    experiment_id: spec.runner
    for experiment_id, spec in EXPERIMENT_SPECS.items()
}
