"""Experiment registry: one runner per figure/table of the evaluation.

The functions here regenerate the paper's evaluation artefacts:

* :func:`figure6_mtt_bounds` — MTT-derived maximum-speedup curves for the
  four platforms (8 cores) over a sweep of task sizes.
* :func:`figure7_overhead` — lifetime scheduling overhead per task for
  Task-Free / Task-Chain × 1 / 15 dependences × 4 platforms.
* :func:`figure9_benchmarks` — normalised performance of Nanos-SW, Nanos-RV
  and Phentos on all 37 benchmark inputs (plus the serial baseline).
* :func:`figure8_granularity` — the same runs re-expressed as speedup versus
  mean task size (over serial, over Nanos-SW, over Nanos-RV).
* :func:`figure10_bounds_vs_measured` — measured speedups overlaid on the
  MTT bounds, per platform.
* :func:`table2_resources` — the FPGA resource-usage breakdown.
* :func:`headline_summary` — the geometric-mean and maximum speedups quoted
  in the abstract/conclusion.

Every runner only needs a :class:`~repro.common.config.SimConfig`; results
are plain dataclasses/dicts so the benchmark harness and the reporting
helpers can render them as the rows/series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.blackscholes import PAPER_INPUTS as BLACKSCHOLES_INPUTS
from repro.apps.blackscholes import blackscholes_program
from repro.apps.granularity import task_chain_program
from repro.apps.jacobi import PAPER_INPUTS as JACOBI_INPUTS
from repro.apps.jacobi import jacobi_program
from repro.apps.sparselu import PAPER_INPUTS as SPARSELU_INPUTS
from repro.apps.sparselu import paper_input_parameters as sparselu_parameters
from repro.apps.sparselu import sparselu_program
from repro.apps.stream import PAPER_INPUTS as STREAM_INPUTS
from repro.apps.stream import paper_input_parameters as stream_parameters
from repro.apps.stream import stream_program
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.common.stats import geometric_mean
from repro.eval.mtt import MttBound, bound_curve, default_task_sizes
from repro.eval.overhead import (
    OVERHEAD_PLATFORMS,
    OverheadMeasurement,
    measure_lifetime_overhead,
    overhead_table,
)
from repro.eval.resources import ResourceEntry, resource_table
from repro.runtime import (
    NanosRVRuntime,
    NanosSWRuntime,
    PhentosRuntime,
    SerialRuntime,
)
from repro.runtime.base import RuntimeResult
from repro.runtime.task import TaskProgram

__all__ = [
    "BenchmarkCase",
    "BenchmarkRun",
    "CASE_RUNTIMES",
    "benchmark_cases",
    "run_benchmark_case",
    "figure6_mtt_bounds",
    "figure7_overhead",
    "figure8_granularity",
    "figure9_benchmarks",
    "figure10_bound_task_sizes",
    "figure10_bounds_vs_measured",
    "table2_resources",
    "headline_summary",
    "checked_geometric_mean",
    "HeadlineSummary",
    "ExperimentSpec",
    "EXPERIMENT_SPECS",
    "EXPERIMENTS",
]


def checked_geometric_mean(values: Sequence[float], experiment: str,
                           series: str) -> float:
    """:func:`geometric_mean` that raises :class:`EvaluationError` instead.

    ``geometric_mean`` raises a bare :class:`ValueError` on an empty or
    non-positive series; every experiment aggregation goes through this
    wrapper so the failure names the experiment and the offending input
    rather than surfacing an anonymous statistics error.
    """
    try:
        return geometric_mean(values)
    except ValueError as exc:
        raise EvaluationError(
            f"{experiment}: geometric mean of {series} failed ({exc}); "
            f"values={list(values)!r}"
        ) from exc

#: Runtimes compared in Figures 8/9/10, in the paper's plotting order.
_COMPARED_RUNTIMES = ("nanos-sw", "nanos-rv", "phentos")

#: Runtimes every Figure 9 case runs on (the serial baseline plus the three
#: compared platforms), keyed by report name.
CASE_RUNTIMES: Dict[str, Callable] = {
    "serial": SerialRuntime,
    "nanos-sw": NanosSWRuntime,
    "nanos-rv": NanosRVRuntime,
    "phentos": PhentosRuntime,
}


def _build_blackscholes_case(*, options: int, block_size: int,
                             portfolio: str) -> TaskProgram:
    return blackscholes_program(str(options), block_size,
                                name=f"blackscholes-{portfolio}-B{block_size}")


def _build_jacobi_case(*, grid_blocks: int, block_factor: int,
                       grid_label: int) -> TaskProgram:
    return jacobi_program(grid_blocks, block_factor,
                          name=f"jacobi-N{grid_label}-B{block_factor}")


def _build_sparselu_case(*, num_blocks: int, block_dim: int, label: str,
                         multiplier: int) -> TaskProgram:
    return sparselu_program(num_blocks, block_dim,
                            name=f"sparselu-{label}-M{multiplier}")


def _build_stream_case(*, num_blocks: int, block_elems: int,
                       use_dependences: bool, variant: str,
                       label: str) -> TaskProgram:
    return stream_program(num_blocks, block_elems,
                          use_dependences=use_dependences,
                          name=f"{variant}-{label}")


#: Named program builders for the benchmark cases.  Cases reference builders
#: by key (rather than holding a closure) so that they stay picklable — the
#: parallel harness ships cases to worker processes — and hashable, so the
#: result cache can fingerprint them deterministically.
CASE_BUILDERS: Dict[str, Callable[..., TaskProgram]] = {
    "blackscholes": _build_blackscholes_case,
    "jacobi": _build_jacobi_case,
    "sparselu": _build_sparselu_case,
    "stream": _build_stream_case,
}


@dataclass(frozen=True)
class BenchmarkCase:
    """One of the 37 benchmark inputs of Figure 9.

    A case is a pure-data description: ``builder`` names an entry in
    :data:`CASE_BUILDERS` and ``params`` holds its keyword arguments as a
    sorted tuple of pairs.  This keeps cases picklable (for the process-pool
    harness) and deterministically hashable (for the result cache).
    """

    benchmark: str
    label: str
    builder: str
    params: Tuple[Tuple[str, object], ...]

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``blackscholes/4K B8``."""
        return f"{self.benchmark}/{self.label}"

    def build(self) -> TaskProgram:
        """Construct the case's task program."""
        try:
            builder = CASE_BUILDERS[self.builder]
        except KeyError:
            raise EvaluationError(f"unknown case builder {self.builder!r}")
        return builder(**dict(self.params))


def _case_params(**kwargs: object) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(kwargs.items()))


@dataclass
class BenchmarkRun:
    """All runtime results for one benchmark input."""

    case: BenchmarkCase
    mean_task_cycles: float
    results: Dict[str, RuntimeResult] = field(default_factory=dict)

    def speedup_vs_serial(self, runtime: str) -> float:
        """Speedup of ``runtime`` over the serial execution."""
        return self.results[runtime].speedup_vs_serial

    def speedup_over(self, runtime: str, baseline: str) -> float:
        """Speedup of ``runtime`` with respect to ``baseline``."""
        return (self.results[baseline].elapsed_cycles
                / self.results[runtime].elapsed_cycles)


def benchmark_cases(quick: bool = False,
                    scale: float = 1.0) -> List[BenchmarkCase]:
    """The Figure 9 input list (37 cases; a reduced set when ``quick``).

    ``scale`` < 1 shrinks problem sizes proportionally (used by unit tests);
    the default reproduces the full evaluation sweep.
    """
    if scale <= 0:
        raise EvaluationError("scale must be positive")

    def scaled(value: int, minimum: int = 1) -> int:
        return max(int(round(value * scale)), minimum)

    cases: List[BenchmarkCase] = []
    blackscholes_inputs = BLACKSCHOLES_INPUTS
    jacobi_inputs = JACOBI_INPUTS
    sparselu_inputs = SPARSELU_INPUTS
    stream_inputs = STREAM_INPUTS
    if quick:
        blackscholes_inputs = [("4K", 16), ("4K", 256)]
        jacobi_inputs = [(128, 1)]
        sparselu_inputs = [("N32", 2), ("N32", 16)]
        stream_inputs = ["16x16", "128x1024"]

    blackscholes_sizes = {"4K": 4096, "16K": 16384}
    for portfolio, block in blackscholes_inputs:
        options = max(scaled(blackscholes_sizes[portfolio]), block)
        cases.append(BenchmarkCase(
            "blackscholes", f"{portfolio} B{block}", "blackscholes",
            _case_params(options=options, block_size=block,
                         portfolio=portfolio),
        ))
    for grid, factor in jacobi_inputs:
        cases.append(BenchmarkCase(
            "jacobi", f"N{grid} B{factor}", "jacobi",
            _case_params(grid_blocks=scaled(grid, factor),
                         block_factor=factor, grid_label=grid),
        ))
    for label, multiplier in sparselu_inputs:
        blocks, dim = sparselu_parameters(label, multiplier)
        cases.append(BenchmarkCase(
            "sparselu", f"{label} M{multiplier}", "sparselu",
            _case_params(num_blocks=max(scaled(blocks), 2), block_dim=dim,
                         label=label, multiplier=multiplier),
        ))
    for variant, use_deps in (("stream-barr", False), ("stream-deps", True)):
        for label in stream_inputs:
            blocks, elems = stream_parameters(label)
            cases.append(BenchmarkCase(
                variant, label, "stream",
                _case_params(num_blocks=max(scaled(blocks), 2),
                             block_elems=elems, use_dependences=use_deps,
                             variant=variant, label=label),
            ))
    return cases


# --------------------------------------------------------------------- #
# Figure 6
# --------------------------------------------------------------------- #
#: Default micro-benchmark length of the Figure 6 bound measurement (also
#: used for Figure 10's bound curves); the harness engine reads it too.
FIGURE6_DEFAULT_NUM_TASKS = 120


def figure6_mtt_bounds(
    config: Optional[SimConfig] = None,
    task_sizes: Optional[Sequence[float]] = None,
    num_tasks: int = FIGURE6_DEFAULT_NUM_TASKS,
) -> Dict[str, List[MttBound]]:
    """MTT-derived maximum speedup curves for the four platforms (8 cores).

    Follows the paper: the bound of each platform is computed from its
    Task-Chain (1 dependence) lifetime overhead via Equation 1, capped at
    the number of cores.
    """
    config = config if config is not None else SimConfig()
    sizes = list(task_sizes) if task_sizes else default_task_sizes()
    num_cores = config.machine.num_cores
    curves: Dict[str, List[MttBound]] = {}
    for platform in OVERHEAD_PLATFORMS:
        overhead = measure_lifetime_overhead(
            platform, "task-chain", 1, num_tasks, config
        )
        curves[platform] = bound_curve(overhead, num_cores, sizes)
    return curves


# --------------------------------------------------------------------- #
# Figure 7
# --------------------------------------------------------------------- #
def figure7_overhead(config: Optional[SimConfig] = None,
                     num_tasks: int = 150) -> List[OverheadMeasurement]:
    """Lifetime scheduling overhead per task for every platform/workload."""
    return overhead_table(config, num_tasks)


# --------------------------------------------------------------------- #
# Figure 9 (and the raw data behind Figures 8 and 10)
# --------------------------------------------------------------------- #
def run_benchmark_case(
    case: BenchmarkCase,
    config: Optional[SimConfig] = None,
    num_workers: Optional[int] = None,
) -> BenchmarkRun:
    """Execute one benchmark input on every :data:`CASE_RUNTIMES` runtime.

    This is the case-level execution hook shared by the serial
    :func:`figure9_benchmarks` loop and the parallel harness
    (:mod:`repro.harness.runner`): a case is self-contained, so executing it
    in a worker process yields results identical to the in-process loop.
    """
    config = config if config is not None else SimConfig()
    workers = num_workers if num_workers is not None else \
        config.machine.num_cores
    program = case.build()
    run = BenchmarkRun(case=case, mean_task_cycles=program.mean_task_cycles)
    for name, runtime_cls in CASE_RUNTIMES.items():
        runtime = runtime_cls(config)
        run.results[name] = runtime.run(
            program, num_workers=1 if name == "serial" else workers
        )
    return run


def figure9_benchmarks(
    config: Optional[SimConfig] = None,
    quick: bool = False,
    scale: float = 1.0,
    num_workers: Optional[int] = None,
    cases: Optional[Sequence[BenchmarkCase]] = None,
) -> List[BenchmarkRun]:
    """Run every benchmark input on serial, Nanos-SW, Nanos-RV and Phentos."""
    config = config if config is not None else SimConfig()
    workers = num_workers if num_workers is not None else \
        config.machine.num_cores
    selected = list(cases) if cases is not None else benchmark_cases(quick, scale)
    return [run_benchmark_case(case, config, workers) for case in selected]


# --------------------------------------------------------------------- #
# Figure 8
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GranularityPoint:
    """One scatter point of Figure 8."""

    runtime: str
    benchmark: str
    label: str
    task_size_cycles: float
    speedup_vs_serial: float
    speedup_vs_nanos_sw: float
    speedup_vs_nanos_rv: float


def figure8_granularity(runs: Sequence[BenchmarkRun]) -> List[GranularityPoint]:
    """Re-express the Figure 9 runs as speedup-versus-task-size points."""
    points: List[GranularityPoint] = []
    for run in runs:
        for runtime in _COMPARED_RUNTIMES:
            try:
                point = GranularityPoint(
                    runtime=runtime,
                    benchmark=run.case.benchmark,
                    label=run.case.label,
                    task_size_cycles=run.mean_task_cycles,
                    speedup_vs_serial=run.speedup_vs_serial(runtime),
                    speedup_vs_nanos_sw=run.speedup_over(runtime, "nanos-sw"),
                    speedup_vs_nanos_rv=run.speedup_over(runtime, "nanos-rv"),
                )
            except EvaluationError:
                raise
            except Exception as exc:
                # A run with missing runtimes or degenerate cycle counts
                # (e.g. decoded from a hand-edited artifact) would otherwise
                # surface as a bare KeyError/ZeroDivisionError.
                raise EvaluationError(
                    f"figure8: cannot compute speedups for {run.case.key} "
                    f"({runtime}): {exc!r}"
                ) from exc
            points.append(point)
    return points


# --------------------------------------------------------------------- #
# Figure 10
# --------------------------------------------------------------------- #
@dataclass
class BoundComparison:
    """Measured speedups of one platform next to its MTT bound curve."""

    platform: str
    bound: List[MttBound]
    measured: List[Tuple[float, float]]  # (task size, speedup vs serial)

    def violations(self, tolerance: float = 1.10,
                   min_speedup: float = 1.0) -> List[Tuple[float, float]]:
        """Measured points exceeding the bound by more than ``tolerance``.

        Points below ``min_speedup`` are ignored: in the scheduling-bound
        regime the Equation-1 bound is derived from the *whole* lifetime
        overhead of the Task-Chain workload, while a real run pipelines the
        submission, fetch and retirement stages across cores, so measured
        throughput can legitimately sit slightly above the analytic curve
        when both are far below 1x.  The interesting claim — that no run
        beats the bound where the bound actually constrains performance —
        is what this method checks.
        """
        out: List[Tuple[float, float]] = []
        for task_size, speedup in self.measured:
            if speedup < min_speedup:
                continue
            limit = _interpolate_bound(self.bound, task_size)
            if speedup > limit * tolerance:
                out.append((task_size, speedup))
        return out


def _interpolate_bound(bound: Sequence[MttBound], task_size: float) -> float:
    if not bound:
        raise EvaluationError("empty bound curve")
    previous = bound[0]
    for point in bound:
        if point.task_size_cycles >= task_size:
            return point.max_speedup
        previous = point
    return previous.max_speedup


def figure10_bound_task_sizes() -> List[float]:
    """Task sizes of the default Figure 10 bound curves.

    Shared between the ``bounds=None`` fallback below and the harness
    engine's cached bound computation, so the two cannot drift apart.
    """
    return default_task_sizes(2, 7, 4)


def figure10_bounds_vs_measured(
    runs: Sequence[BenchmarkRun],
    config: Optional[SimConfig] = None,
    bounds: Optional[Dict[str, List[MttBound]]] = None,
) -> Dict[str, BoundComparison]:
    """Overlay the measured speedups on the MTT bounds, per platform."""
    config = config if config is not None else SimConfig()
    if bounds is None:
        bounds = figure6_mtt_bounds(config,
                                    task_sizes=figure10_bound_task_sizes())
    comparisons: Dict[str, BoundComparison] = {}
    for platform in _COMPARED_RUNTIMES:
        measured = [
            (run.mean_task_cycles, run.speedup_vs_serial(platform))
            for run in runs
        ]
        comparisons[platform] = BoundComparison(
            platform=platform,
            bound=bounds.get(platform, []),
            measured=measured,
        )
    return comparisons


# --------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------- #
def table2_resources(config: Optional[SimConfig] = None) -> List[ResourceEntry]:
    """The FPGA resource-usage breakdown of the prototype."""
    config = config if config is not None else SimConfig()
    return resource_table(config.machine)


# --------------------------------------------------------------------- #
# Headline numbers
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class HeadlineSummary:
    """The summary statistics quoted in the abstract and conclusion."""

    geomean_nanos_rv_vs_sw: float
    geomean_phentos_vs_sw: float
    geomean_phentos_vs_rv: float
    max_speedup_vs_serial_nanos_rv: float
    max_speedup_vs_serial_phentos: float
    max_speedup_phentos_vs_sw: float
    nanos_rv_wins_vs_sw: int
    phentos_wins_vs_sw: int
    phentos_wins_vs_rv: int
    phentos_regressions_vs_sw: int
    num_cases: int


def headline_summary(runs: Sequence[BenchmarkRun]) -> HeadlineSummary:
    """Compute the paper's headline statistics from the Figure 9 runs."""
    if not runs:
        raise EvaluationError("headline_summary needs at least one run")
    rv_vs_sw = [run.speedup_over("nanos-rv", "nanos-sw") for run in runs]
    ph_vs_sw = [run.speedup_over("phentos", "nanos-sw") for run in runs]
    ph_vs_rv = [run.speedup_over("phentos", "nanos-rv") for run in runs]
    return HeadlineSummary(
        geomean_nanos_rv_vs_sw=checked_geometric_mean(
            rv_vs_sw, "headline", "nanos-rv vs nanos-sw speedups"),
        geomean_phentos_vs_sw=checked_geometric_mean(
            ph_vs_sw, "headline", "phentos vs nanos-sw speedups"),
        geomean_phentos_vs_rv=checked_geometric_mean(
            ph_vs_rv, "headline", "phentos vs nanos-rv speedups"),
        max_speedup_vs_serial_nanos_rv=max(
            run.speedup_vs_serial("nanos-rv") for run in runs
        ),
        max_speedup_vs_serial_phentos=max(
            run.speedup_vs_serial("phentos") for run in runs
        ),
        max_speedup_phentos_vs_sw=max(ph_vs_sw),
        nanos_rv_wins_vs_sw=sum(1 for value in rv_vs_sw if value > 1.0),
        phentos_wins_vs_sw=sum(1 for value in ph_vs_sw if value > 1.0),
        phentos_wins_vs_rv=sum(1 for value in ph_vs_rv if value > 1.0),
        phentos_regressions_vs_sw=sum(1 for value in ph_vs_sw if value < 0.97),
        num_cases=len(runs),
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry describing one experiment of the evaluation.

    ``depends_on`` names the experiments whose results the runner consumes
    (today always ``figure9``: Figures 8/10 and the headline summary are all
    derived from the benchmark sweep).  The harness engine uses it to chain
    derived experiments behind their inputs, serving shared inputs from the
    result cache instead of re-running them.
    """

    experiment_id: str
    title: str
    runner: Callable
    depends_on: Tuple[str, ...] = ()

    @property
    def is_derived(self) -> bool:
        """True when this experiment is computed from other experiments."""
        return bool(self.depends_on)


#: Full registry of the paper's evaluation artefacts, keyed by experiment
#: identifier.  (Presentation order is the CLI's concern — see
#: ``_RUN_ORDER`` in :mod:`repro.harness.cli`.)
EXPERIMENT_SPECS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec for spec in (
        ExperimentSpec(
            "figure6", "MTT-derived maximum speedup bounds (8 cores)",
            figure6_mtt_bounds,
        ),
        ExperimentSpec(
            "figure7", "Lifetime Task Scheduling overhead (cycles per task)",
            figure7_overhead,
        ),
        ExperimentSpec(
            "figure9", "Benchmark sweep (speedup over serial)",
            figure9_benchmarks,
        ),
        ExperimentSpec(
            "figure8", "Speedup versus task granularity",
            figure8_granularity, depends_on=("figure9",),
        ),
        ExperimentSpec(
            "figure10", "Measured speedups versus MTT bounds",
            figure10_bounds_vs_measured, depends_on=("figure9",),
        ),
        ExperimentSpec(
            "table2", "FPGA resource usage breakdown",
            table2_resources,
        ),
        ExperimentSpec(
            "headline", "Headline summary (abstract / conclusion numbers)",
            headline_summary, depends_on=("figure9",),
        ),
    )
}

#: Registry mapping experiment identifiers to their runner functions, used
#: by the benchmark harness and the ``examples/reproduce_paper.py`` script.
#: Derived experiments (``figure8``, ``figure10``, ``headline``) take the
#: Figure 9 runs as their first argument; see :data:`EXPERIMENT_SPECS`.
EXPERIMENTS: Dict[str, Callable] = {
    experiment_id: spec.runner
    for experiment_id, spec in EXPERIMENT_SPECS.items()
}
