"""Parallel execution of benchmark cases with cached, deterministic results.

The runner fans benchmark work out over an
:class:`~repro.harness.executor.ExecutorBackend` — in-process for
``jobs=1``, a (possibly engine-owned, persistent) process pool otherwise.
The unit of work is one :class:`CaseUnit` — a benchmark case under one
configuration and simulated worker count — executed by the same case-level
hook the serial path uses
(:func:`repro.eval.experiments.run_benchmark_case`), in a worker process
with its own simulator state, so parallel results are identical to serial
ones.  Units are grouped into small batches per dispatch
(:func:`~repro.harness.executor.batch_size`) to amortise IPC, and assembly
is order-independent: results land in a slot indexed by the unit's position
in the input list, whatever order workers finish in.

:func:`run_cases` is the classic single-configuration sweep (all of
Figure 9); :func:`run_case_grid` executes a heterogeneous unit list — the
same cases under many configurations, e.g. the (case × core count) product
of a scaling sweep — through one shared backend, so a grid's wall clock is
bounded by total work, not by its slowest column.

Failures are isolated per unit: a unit whose builder or simulation raises
becomes a typed :class:`~repro.harness.executor.UnitFailure` instead of
aborting the sweep.  Failed units are retried (``retries`` times, once by
default) in a fresh worker process — a guard against poisoned interpreter
state — and a sweep that still has failures either raises one aggregated
:class:`~repro.harness.executor.SweepError` naming every failed unit, or,
with ``keep_going=True``, returns the completed runs (failed slots are
``None``, keeping results zippable against the input units) plus the
failure list through the ``failures`` out-parameter.  Either way, every
completed unit has already landed in the result cache.

When a :class:`~repro.harness.cache.CacheStore` is supplied, each unit is
looked up before any work is scheduled and stored (JSON-encoded) as soon as
it completes, so overlapping sweeps and re-runs only simulate the units they
have never seen.  Cache keys canonicalise the worker count into the config
(:func:`repro.harness.hashing.case_cache_key`) and never include host
execution knobs, so the ``jobs`` fan-out cannot cause spurious misses.

Every executed (non-cached) unit is timed where it runs — inside the worker
process for parallel sweeps — and the wall-clock seconds are reported back
through the optional ``timings`` mapping, which the experiment engine feeds
into the ``BENCH_engine.json`` perf trajectory
(:mod:`repro.harness.bench`).  The optional ``rates`` mapping receives the
matching sim-core throughput (simulated cycles per wall-second) of every
executed unit, folded into the same trajectory entries.

Execution is observable end to end: the sweep runs inside a *sweep* span
of the :class:`~repro.harness.telemetry.Tracer` threaded down from the
engine, every resolved unit becomes a *unit* span (carrying its
worker-measured wall clock, sim-core throughput, cached/failed state and
retry count), and failures increment the ``sweep.unit_failures`` /
``sweep.retries`` counters.  Callers that pass only the classic
``progress`` reporter get a tracer wrapping it
(:func:`~repro.harness.telemetry.progress_tracer`), so the stderr status
lines are identical whichever interface drove the sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import registry
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import (
    BenchmarkCase,
    BenchmarkRun,
    canonical_runtime_selection,
    run_benchmark_case,
)
from repro.harness.artifacts import decode, encode
from repro.harness.cache import CacheStore
from repro.harness.executor import (
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    SweepError,
    UnitFailure,
    batch_size,
)
from repro.harness.hashing import case_cache_key
from repro.harness.progress import Progress
from repro.harness.telemetry import Tracer, progress_tracer
from repro.scenario import ScenarioSpec, canonical_scenario

__all__ = ["CaseUnit", "run_cases", "run_case_grid"]


@dataclass(frozen=True)
class CaseUnit:
    """One schedulable unit: a case under one config and worker count.

    ``runtimes`` is the canonical runtime selection of the unit (``None``
    means the default case runtimes; see
    :func:`~repro.eval.experiments.canonical_runtime_selection`).
    ``scenario`` is the canonical stochastic scenario (``None`` means the
    deterministic default; see
    :func:`~repro.scenario.canonical_scenario`) — it travels with the unit
    so a pool worker derives exactly the same seeded streams an in-process
    run would.
    """

    config: SimConfig
    case: BenchmarkCase
    num_workers: int
    runtimes: Optional[Tuple[str, ...]] = None
    scenario: Optional[ScenarioSpec] = None

    @property
    def key(self) -> str:
        """Display/timing key, e.g. ``blackscholes/4K B8@8w``."""
        return f"{self.case.key}@{self.num_workers}w"


def _plugin_payload(unit: "CaseUnit"
                    ) -> Tuple[Optional[object], Dict, Tuple, Dict]:
    """The plugin payload a worker needs to resolve ``unit`` by name.

    Cases travel to workers as registry *names*; a spawned (or forkserver)
    worker re-imports only the ``repro`` built-ins, so plugin
    registrations must travel with the unit.  Two transports, per object:

    * a plugin from an **importable module** ships pickled by reference
      (``plugin_builder`` / the ``{name: (class, rank)}`` mapping) and is
      re-registered worker-side;
    * a plugin loaded from a **file path** (``--plugin FILE.py``) lives in
      a synthetic module no other process can import, so its source path
      ships instead (``plugin_files``) and the worker re-loads the file,
      firing the file's own ``@register_*`` decorators.

    All three parts are empty for built-in-only units, keeping the common
    path payload-free.
    """
    builder = None
    plugin_files = []
    spec = registry.workload(unit.case.builder)
    if (spec.builder.__module__ or "").partition(".")[0] != "repro":
        source = registry.plugin_file_of(spec.builder)
        if source is not None:
            plugin_files.append(source)
        else:
            builder = spec.builder
    plugin_runtimes = {}
    for name in unit.runtimes or ():
        runtime_spec = registry.runtime(name)
        if (runtime_spec.cls.__module__ or "").partition(".")[0] != "repro":
            source = registry.plugin_file_of(runtime_spec.cls)
            if source is not None:
                plugin_files.append(source)
            else:
                plugin_runtimes[name] = (runtime_spec.cls,
                                         runtime_spec.rank)
    plugin_scenarios = {}
    if unit.scenario is not None:
        for kind, lookup in (("arrival", registry.arrival),
                             ("etm", registry.etm),
                             ("scheduler", registry.scheduler)):
            name = getattr(unit.scenario, kind)
            if name == "none":
                continue
            component = lookup(name)
            if (component.factory.__module__ or "") \
                    .partition(".")[0] != "repro":
                source = registry.plugin_file_of(component.factory)
                if source is not None:
                    plugin_files.append(source)
                else:
                    plugin_scenarios[(kind, name)] = component.factory
    return (builder, plugin_runtimes, tuple(dict.fromkeys(plugin_files)),
            plugin_scenarios)


_SCENARIO_ENSURES = {
    "arrival": registry.ensure_arrival,
    "etm": registry.ensure_etm,
    "scheduler": registry.ensure_scheduler,
}


def _register_payload(builders: Dict[str, object],
                      plugin_runtimes: Dict[str, Tuple[type, int]],
                      plugin_files: Tuple[str, ...],
                      plugin_scenarios: Optional[Dict] = None) -> None:
    """Worker-side plugin registration; idempotent, so warm workers that
    already saw a payload in an earlier batch re-register nothing."""
    for path in plugin_files:
        registry.load_plugin(path)
    for name, builder in builders.items():
        registry.ensure_workload(name, builder)
    for name, (cls, rank) in plugin_runtimes.items():
        registry.ensure_runtime(name, cls, rank=rank)
    for (kind, name), factory in (plugin_scenarios or {}).items():
        _SCENARIO_ENSURES[kind](name, factory)


def _execute_case(config: SimConfig, case: BenchmarkCase, num_workers: int,
                  runtimes: Optional[Tuple[str, ...]] = None,
                  plugin_builder: Optional[object] = None,
                  plugin_runtimes: Optional[Dict] = None,
                  plugin_files: Tuple[str, ...] = (),
                  scenario: Optional[ScenarioSpec] = None,
                  plugin_scenarios: Optional[Dict] = None,
                  ) -> Tuple[BenchmarkRun, float]:
    """Single-unit worker entry point: run and time one case.

    Returns ``(run, wall_seconds)``; both halves are picklable so the pair
    travels back from worker processes unchanged.  Timing happens here, in
    the worker, so parallel sweeps measure simulation cost rather than pool
    scheduling latency.  The ``plugin_*`` parameters carry plugin
    registrations into workers whose registry only holds the built-ins
    (see :func:`_plugin_payload`).
    """
    builders = ({case.builder: plugin_builder}
                if plugin_builder is not None else {})
    _register_payload(builders, plugin_runtimes or {}, plugin_files,
                      plugin_scenarios)
    started = time.perf_counter()
    run = run_benchmark_case(case, config, num_workers, runtimes,
                             scenario=scenario)
    return run, time.perf_counter() - started


def _execute_batch(payload: Tuple[Dict, Dict, Tuple, Dict],
                   tasks: Tuple[Tuple, ...]) -> List[Tuple]:
    """Batched worker entry point with per-unit failure isolation.

    ``payload`` is the merged plugin payload of the whole batch,
    registered once per dispatch (and a no-op in a warm worker that
    already saw it); ``tasks`` are ``(config, case, num_workers,
    runtimes, scenario)`` tuples.  Returns one outcome per task, in order:
    ``("ok", run, seconds)`` or ``("err", error_type, error_text)`` — unit
    exceptions are *data*, never raised, so one bad unit cannot take the
    batch (or the pool) down with it.
    """
    _register_payload(*payload)
    outcomes: List[Tuple] = []
    for config, case, num_workers, runtimes, scenario in tasks:
        started = time.perf_counter()
        try:
            run = run_benchmark_case(case, config, num_workers, runtimes,
                                     scenario=scenario)
        except Exception as exc:
            outcomes.append(("err", type(exc).__name__, str(exc)))
        else:
            outcomes.append(("ok", run, time.perf_counter() - started))
    return outcomes


def _decode_cached_run(cache: CacheStore, key: str) -> Optional[BenchmarkRun]:
    """Decode a cached case run; schema-invalid entries become misses."""
    payload = cache.get(key)
    if payload is None:
        return None
    try:
        run = decode(payload)
    except (EvaluationError, KeyError, TypeError, ValueError):
        run = None
    if not isinstance(run, BenchmarkRun):
        cache.demote_hit(key)
        return None
    return run


def _merged_payload(items: Sequence[Tuple[int, CaseUnit, Optional[str]]]
                    ) -> Tuple[Dict, Dict, Tuple, Dict]:
    """One deduplicated plugin payload for a whole batch of units."""
    builders: Dict[str, object] = {}
    plugin_runtimes: Dict[str, Tuple[type, int]] = {}
    plugin_files: List[str] = []
    plugin_scenarios: Dict[Tuple[str, str], object] = {}
    for _slot, unit, _key in items:
        builder, unit_runtimes, unit_files, unit_scenarios = \
            _plugin_payload(unit)
        if builder is not None:
            builders[unit.case.builder] = builder
        plugin_runtimes.update(unit_runtimes)
        plugin_files.extend(unit_files)
        plugin_scenarios.update(unit_scenarios)
    return (builders, plugin_runtimes, tuple(dict.fromkeys(plugin_files)),
            plugin_scenarios)


def _unit_task(unit: CaseUnit) -> Tuple:
    return (unit.config, unit.case, unit.num_workers, unit.runtimes,
            unit.scenario)


def _describe_error(exc: BaseException) -> Tuple[str, str]:
    return type(exc).__name__, str(exc)


def _dispatch_pending(
    backend: ExecutorBackend,
    pending: Sequence[Tuple[int, CaseUnit, Optional[str]]],
    retries: int,
    record,
    fail,
    tracer: Optional[Tracer] = None,
) -> None:
    """Drive ``pending`` units through ``backend`` with retry-on-failure.

    First round: units are batched and fanned out through
    :meth:`~repro.harness.executor.ExecutorBackend.dispatch`; a unit-level
    exception (reported as an ``("err", ...)`` outcome) or a batch-level
    one (a dead worker broke the pool) marks its units failed-once.  Retry
    rounds then re-execute each failed unit individually in a *fresh*
    worker (:meth:`run_isolated`), up to ``retries`` extra attempts; what
    still fails is reported through ``fail(slot, unit, error_type, error,
    attempts)``.  Completed units are reported through ``record`` exactly
    once, whichever round they complete in.
    """
    size = batch_size(len(pending), backend.width)
    batches = [tuple(pending[start:start + size])
               for start in range(0, len(pending), size)]
    jobs = [(_merged_payload(items),
             tuple(_unit_task(unit) for _slot, unit, _key in items),
             items)
            for items in batches]

    # (item, payload, error_type, error_text, attempts so far)
    failed: List[Tuple] = []
    for index, outcome in backend.dispatch(
            _execute_batch, [(payload, tasks) for payload, tasks, _ in jobs]):
        payload, tasks, items = jobs[index]
        if isinstance(outcome, BaseException):
            # The whole batch died (worker crash / transport failure):
            # every unit of it gets the batch's error as its first attempt.
            error_type, error_text = _describe_error(outcome)
            failed.extend((item, payload, error_type, error_text, 1)
                          for item in items)
            continue
        for position, item in enumerate(items):
            unit_outcome = (outcome[position] if position < len(outcome)
                            else ("err", "EvaluationError",
                                  "batch returned no outcome for this unit"))
            if unit_outcome[0] == "ok":
                record(item, unit_outcome[1], unit_outcome[2])
            else:
                failed.append((item, payload,
                               unit_outcome[1], unit_outcome[2], 1))

    attempt = 1
    while failed and attempt <= retries:
        attempt += 1
        still_failed: List[Tuple] = []
        for item, payload, _error_type, _error_text, _attempts in failed:
            _slot, unit, _key = item
            if tracer is not None:
                tracer.count("sweep.retries")
                tracer.event("unit.retry", unit=unit.key, attempt=attempt)
            try:
                outcomes = backend.run_isolated(
                    _execute_batch, payload, (_unit_task(unit),))
                unit_outcome = outcomes[0]
            except Exception as exc:
                unit_outcome = ("err", *_describe_error(exc))
            if unit_outcome[0] == "ok":
                record(item, unit_outcome[1], unit_outcome[2])
            else:
                still_failed.append((item, payload, unit_outcome[1],
                                     unit_outcome[2], attempt))
        failed = still_failed

    for item, _payload, error_type, error_text, attempts in failed:
        slot, unit, _key = item
        fail(slot, unit, error_type, error_text, attempts)


def _unit_sim_cycles(run: BenchmarkRun) -> int:
    """Total simulated cycles across every runtime result of ``run``."""
    return sum(result.elapsed_cycles for result in run.results.values())


def _run_units(
    units: Sequence[CaseUnit],
    timing_keys: Sequence[str],
    jobs: int,
    cache: Optional[CacheStore],
    progress: Optional[Progress],
    timings: Optional[Dict[str, float]],
    title: str,
    executor: Optional[ExecutorBackend] = None,
    keep_going: bool = False,
    retries: int = 1,
    failures: Optional[List[UnitFailure]] = None,
    tracer: Optional[Tracer] = None,
    rates: Optional[Dict[str, float]] = None,
) -> List[Optional[BenchmarkRun]]:
    """Execute ``units``; results come back slot-aligned with the input."""
    if jobs <= 0:
        raise EvaluationError("jobs must be positive")
    if retries < 0:
        raise EvaluationError("retries must be >= 0")
    if tracer is None:
        # Direct callers hand us (at most) the classic progress reporter;
        # wrap it so rendering still flows through the telemetry stream.
        tracer = progress_tracer(progress)

    results: List[Optional[BenchmarkRun]] = [None] * len(units)
    failed: Dict[int, UnitFailure] = {}

    def record(item: Tuple[int, CaseUnit, Optional[str]],
               run: BenchmarkRun, seconds: float) -> None:
        slot, unit, key = item
        results[slot] = run
        if cache is not None and key is not None:
            cache.put(key, encode(run), case=unit.case.key,
                      num_workers=unit.num_workers)
        if timings is not None:
            timings[timing_keys[slot]] = seconds
        cycles = _unit_sim_cycles(run)
        rate = cycles / seconds if seconds > 0 else 0.0
        if rates is not None:
            rates[timing_keys[slot]] = rate
        tracer.unit(timing_keys[slot], seconds, sim_cycles=cycles,
                    sim_cycles_per_sec=rate)

    def fail(slot: int, unit: CaseUnit, error_type: str, error: str,
             attempts: int) -> None:
        failed[slot] = UnitFailure(key=unit.key, slot=slot,
                                   error_type=error_type, error=error,
                                   attempts=attempts)
        tracer.count("sweep.unit_failures")
        tracer.unit(timing_keys[slot], 0.0, failed=True,
                    error_type=error_type, error=error, attempts=attempts)

    # The sweep span closes however the dispatch ends — a worker
    # exception used to leave the progress line dangling mid-render.
    with tracer.span(title, "sweep", total=len(units)) as sweep_span:
        pending = []  # (slot, unit, cache key)
        for slot, unit in enumerate(units):
            key = None
            if cache is not None:
                key = case_cache_key(unit.case, unit.config, unit.num_workers,
                                     runtimes=unit.runtimes,
                                     scenario=unit.scenario)
                run = _decode_cached_run(cache, key)
                if run is not None:
                    results[slot] = run
                    tracer.unit(timing_keys[slot], 0.0, cached=True)
                    continue
            pending.append((slot, unit, key))

        if pending:
            backend = executor
            owned = backend is None
            if owned:
                backend = (SerialBackend()
                           if jobs == 1 or len(pending) == 1 else
                           ProcessPoolBackend(min(jobs, len(pending))))
                backend.tracer = tracer
            try:
                _dispatch_pending(backend, pending, retries, record, fail,
                                  tracer=tracer)
            finally:
                if owned:
                    backend.close()
        sweep_span.set(total=len(units),
                       simulated=len(pending) - len(failed),
                       cached=len(units) - len(pending),
                       failed=len(failed))

    sweep_failures = [failed[slot] for slot in sorted(failed)]
    if failures is not None:
        failures.extend(sweep_failures)
    completed = sum(1 for run in results if run is not None)
    if sweep_failures and not keep_going:
        raise SweepError(sweep_failures, completed=completed,
                         total=len(units))
    unfilled = [units[slot].key for slot, run in enumerate(results)
                if run is None and slot not in failed]
    if unfilled:
        # Every pending unit must resolve to a run or a UnitFailure; a
        # silently-dropped slot would mis-zip runs against cases downstream.
        raise EvaluationError(
            f"{title} left {len(unfilled)} unit slot(s) unfilled: "
            f"{', '.join(unfilled)}"
        )
    return results


def run_cases(
    config: SimConfig,
    cases: Sequence[BenchmarkCase],
    num_workers: int,
    jobs: int = 1,
    cache: Optional[CacheStore] = None,
    progress: Optional[Progress] = None,
    timings: Optional[Dict[str, float]] = None,
    runtimes: Optional[Sequence[str]] = None,
    executor: Optional[ExecutorBackend] = None,
    keep_going: bool = False,
    retries: int = 1,
    failures: Optional[List[UnitFailure]] = None,
    tracer: Optional[Tracer] = None,
    rates: Optional[Dict[str, float]] = None,
    scenario: Optional[ScenarioSpec] = None,
) -> List[Optional[BenchmarkRun]]:
    """Execute ``cases`` under one config; runs come back in input order.

    ``num_workers`` is the number of *simulated* cores each non-serial
    runtime uses; ``jobs`` is the number of *host* processes the sweep fans
    out over (1 keeps everything in-process).  ``runtimes`` selects the
    runtimes each case runs on (default: the registry's case set).  An
    ``executor`` backend may be injected (e.g. the engine's persistent
    warm pool); otherwise a transient one is built from ``jobs``.

    A failing case is retried ``retries`` times in a fresh worker; with
    ``keep_going`` the sweep returns anyway — failed slots are ``None``,
    keeping the list zippable against ``cases``, and the failure records
    are appended to the ``failures`` list — otherwise it raises one
    :class:`~repro.harness.executor.SweepError` naming every failed case.

    When a ``timings`` mapping is passed, it is populated with the
    wall-clock seconds of every case that was actually simulated (keyed by
    ``case.key``); cache hits cost no simulation and are not recorded.
    ``rates`` likewise receives each simulated case's sim-core throughput
    (simulated cycles per wall-second), and ``tracer`` carries the sweep's
    telemetry (one sweep span, one unit span per case).  ``scenario``
    applies one stochastic scenario to every case of the sweep; it is
    canonicalised (default → ``None``) before entering units and cache
    keys, so deterministic sweeps are unaffected.
    """
    selection = canonical_runtime_selection(runtimes)
    spec = canonical_scenario(scenario)
    units = [CaseUnit(config, case, num_workers, selection, spec)
             for case in cases]
    return _run_units(units, [case.key for case in cases], jobs, cache,
                      progress, timings, "benchmark sweep",
                      executor=executor, keep_going=keep_going,
                      retries=retries, failures=failures,
                      tracer=tracer, rates=rates)


def run_case_grid(
    units: Sequence[CaseUnit],
    jobs: int = 1,
    cache: Optional[CacheStore] = None,
    progress: Optional[Progress] = None,
    timings: Optional[Dict[str, float]] = None,
    executor: Optional[ExecutorBackend] = None,
    keep_going: bool = False,
    retries: int = 1,
    failures: Optional[List[UnitFailure]] = None,
    tracer: Optional[Tracer] = None,
    rates: Optional[Dict[str, float]] = None,
) -> List[Optional[BenchmarkRun]]:
    """Execute a heterogeneous unit list; runs come back in input order.

    This is the grid-sweep entry point: units may mix configurations and
    worker counts freely (e.g. every Figure 9 case at 1, 2, 4, ... cores)
    and all of them share one executor backend, so total wall clock tracks
    total work.  ``timings`` keys carry the worker count
    (``case.key@Nw``) to keep grid columns distinguishable.  Failure
    semantics match :func:`run_cases`: under ``keep_going``, failed slots
    come back as ``None`` so the list stays zippable against ``units``.
    """
    units = list(units)
    return _run_units(units, [unit.key for unit in units], jobs,
                      cache, progress, timings, "grid sweep",
                      executor=executor, keep_going=keep_going,
                      retries=retries, failures=failures,
                      tracer=tracer, rates=rates)
