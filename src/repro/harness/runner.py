"""Parallel execution of benchmark cases with cached, deterministic results.

The runner fans benchmark work out over a ``concurrent.futures`` process
pool.  The unit of work is one :class:`CaseUnit` — a benchmark case under
one configuration and simulated worker count — executed by the same
case-level hook the serial path uses
(:func:`repro.eval.experiments.run_benchmark_case`), in a fresh worker
process with its own simulator state, so parallel results are identical to
serial ones.  Assembly is order-independent: results land in a slot indexed
by the unit's position in the input list, whatever order workers finish in.

:func:`run_cases` is the classic single-configuration sweep (all of
Figure 9); :func:`run_case_grid` executes a heterogeneous unit list — the
same cases under many configurations, e.g. the (case × core count) product
of a scaling sweep — through one shared pool, so a grid's wall clock is
bounded by total work, not by its slowest column.

When a :class:`~repro.harness.cache.ResultCache` is supplied, each unit is
looked up before any work is scheduled and stored (JSON-encoded) as soon as
it completes, so overlapping sweeps and re-runs only simulate the units they
have never seen.  Cache keys canonicalise the worker count into the config
(:func:`repro.harness.hashing.case_cache_key`) and never include host
execution knobs, so the ``jobs`` fan-out cannot cause spurious misses.

Every executed (non-cached) unit is timed where it runs — inside the worker
process for parallel sweeps — and the wall-clock seconds are reported back
through the optional ``timings`` mapping, which the experiment engine feeds
into the ``BENCH_engine.json`` perf trajectory
(:mod:`repro.harness.bench`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import registry
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import (
    BenchmarkCase,
    BenchmarkRun,
    canonical_runtime_selection,
    run_benchmark_case,
)
from repro.harness.artifacts import decode, encode
from repro.harness.cache import ResultCache
from repro.harness.hashing import case_cache_key
from repro.harness.progress import NullProgress, Progress

__all__ = ["CaseUnit", "run_cases", "run_case_grid"]


@dataclass(frozen=True)
class CaseUnit:
    """One schedulable unit: a case under one config and worker count.

    ``runtimes`` is the canonical runtime selection of the unit (``None``
    means the default case runtimes; see
    :func:`~repro.eval.experiments.canonical_runtime_selection`).
    """

    config: SimConfig
    case: BenchmarkCase
    num_workers: int
    runtimes: Optional[Tuple[str, ...]] = None

    @property
    def key(self) -> str:
        """Display/timing key, e.g. ``blackscholes/4K B8@8w``."""
        return f"{self.case.key}@{self.num_workers}w"


def _plugin_payload(unit: "CaseUnit") -> Tuple[Optional[object], Dict, Tuple]:
    """The plugin payload a worker needs to resolve ``unit`` by name.

    Cases travel to workers as registry *names*; a spawned (or forkserver)
    worker re-imports only the ``repro`` built-ins, so plugin
    registrations must travel with the unit.  Two transports, per object:

    * a plugin from an **importable module** ships pickled by reference
      (``plugin_builder`` / the ``{name: (class, rank)}`` mapping) and is
      re-registered worker-side;
    * a plugin loaded from a **file path** (``--plugin FILE.py``) lives in
      a synthetic module no other process can import, so its source path
      ships instead (``plugin_files``) and the worker re-loads the file,
      firing the file's own ``@register_*`` decorators.

    All three parts are empty for built-in-only units, keeping the common
    path payload-free.
    """
    builder = None
    plugin_files = []
    spec = registry.workload(unit.case.builder)
    if (spec.builder.__module__ or "").partition(".")[0] != "repro":
        source = registry.plugin_file_of(spec.builder)
        if source is not None:
            plugin_files.append(source)
        else:
            builder = spec.builder
    plugin_runtimes = {}
    for name in unit.runtimes or ():
        runtime_spec = registry.runtime(name)
        if runtime_spec.cls.__module__.partition(".")[0] != "repro":
            source = registry.plugin_file_of(runtime_spec.cls)
            if source is not None:
                plugin_files.append(source)
            else:
                plugin_runtimes[name] = (runtime_spec.cls,
                                         runtime_spec.rank)
    return builder, plugin_runtimes, tuple(dict.fromkeys(plugin_files))


def _execute_case(config: SimConfig, case: BenchmarkCase, num_workers: int,
                  runtimes: Optional[Tuple[str, ...]] = None,
                  plugin_builder: Optional[object] = None,
                  plugin_runtimes: Optional[Dict] = None,
                  plugin_files: Tuple[str, ...] = ()
                  ) -> Tuple[BenchmarkRun, float]:
    """Worker entry point: run and time one case on its runtimes.

    Returns ``(run, wall_seconds)``; both halves are picklable so the pair
    travels back from process-pool workers unchanged.  Timing happens here,
    in the worker, so parallel sweeps measure simulation cost rather than
    pool scheduling latency.  The ``plugin_*`` parameters carry plugin
    registrations into workers whose registry only holds the built-ins
    (see :func:`_plugin_payload`).
    """
    for path in plugin_files:
        registry.load_plugin(path)
    if plugin_builder is not None:
        registry.ensure_workload(case.builder, plugin_builder)
    for name, (cls, rank) in (plugin_runtimes or {}).items():
        registry.ensure_runtime(name, cls, rank=rank)
    started = time.perf_counter()
    run = run_benchmark_case(case, config, num_workers, runtimes)
    return run, time.perf_counter() - started


def _decode_cached_run(cache: ResultCache, key: str) -> Optional[BenchmarkRun]:
    """Decode a cached case run; schema-invalid entries become misses."""
    payload = cache.get(key)
    if payload is None:
        return None
    try:
        run = decode(payload)
    except (EvaluationError, KeyError, TypeError, ValueError):
        run = None
    if not isinstance(run, BenchmarkRun):
        cache.demote_hit(key)
        return None
    return run


def _run_units(
    units: Sequence[CaseUnit],
    timing_keys: Sequence[str],
    jobs: int,
    cache: Optional[ResultCache],
    progress: Optional[Progress],
    timings: Optional[Dict[str, float]],
    title: str,
) -> List[BenchmarkRun]:
    """Execute ``units`` and return their runs in input order."""
    if jobs <= 0:
        raise EvaluationError("jobs must be positive")
    progress = progress if progress is not None else NullProgress()
    progress.start(title, len(units))

    results: List[Optional[BenchmarkRun]] = [None] * len(units)
    pending = []  # (slot, unit, cache key)
    for slot, unit in enumerate(units):
        key = None
        if cache is not None:
            key = case_cache_key(unit.case, unit.config, unit.num_workers,
                                 runtimes=unit.runtimes)
            run = _decode_cached_run(cache, key)
            if run is not None:
                results[slot] = run
                progress.advance(timing_keys[slot], cached=True)
                continue
        pending.append((slot, unit, key))

    def record(slot: int, unit: CaseUnit, key: Optional[str],
               run: BenchmarkRun, seconds: float) -> None:
        results[slot] = run
        if cache is not None and key is not None:
            cache.put(key, encode(run), case=unit.case.key,
                      num_workers=unit.num_workers)
        if timings is not None:
            timings[timing_keys[slot]] = seconds
        progress.advance(timing_keys[slot])

    if jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {}
            for slot, unit, key in pending:
                builder, plugin_runtimes, plugin_files = \
                    _plugin_payload(unit)
                future = pool.submit(_execute_case, unit.config, unit.case,
                                     unit.num_workers, unit.runtimes,
                                     builder, plugin_runtimes, plugin_files)
                futures[future] = (slot, unit, key)
            for future in as_completed(futures):
                slot, unit, key = futures[future]
                run, seconds = future.result()
                record(slot, unit, key, run, seconds)
    else:
        for slot, unit, key in pending:
            run, seconds = _execute_case(unit.config, unit.case,
                                         unit.num_workers, unit.runtimes)
            record(slot, unit, key, run, seconds)

    progress.finish()
    return [run for run in results if run is not None]


def run_cases(
    config: SimConfig,
    cases: Sequence[BenchmarkCase],
    num_workers: int,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Progress] = None,
    timings: Optional[Dict[str, float]] = None,
    runtimes: Optional[Sequence[str]] = None,
) -> List[BenchmarkRun]:
    """Execute ``cases`` under one config; runs come back in input order.

    ``num_workers`` is the number of *simulated* cores each non-serial
    runtime uses; ``jobs`` is the number of *host* processes the sweep fans
    out over (1 keeps everything in-process).  ``runtimes`` selects the
    runtimes each case runs on (default: the registry's case set).

    When a ``timings`` mapping is passed, it is populated with the
    wall-clock seconds of every case that was actually simulated (keyed by
    ``case.key``); cache hits cost no simulation and are not recorded.
    """
    selection = canonical_runtime_selection(runtimes)
    units = [CaseUnit(config, case, num_workers, selection)
             for case in cases]
    return _run_units(units, [case.key for case in cases], jobs, cache,
                      progress, timings, "benchmark sweep")


def run_case_grid(
    units: Sequence[CaseUnit],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Progress] = None,
    timings: Optional[Dict[str, float]] = None,
) -> List[BenchmarkRun]:
    """Execute a heterogeneous unit list; runs come back in input order.

    This is the grid-sweep entry point: units may mix configurations and
    worker counts freely (e.g. every Figure 9 case at 1, 2, 4, ... cores)
    and all of them share one process pool, so total wall clock tracks
    total work.  ``timings`` keys carry the worker count
    (``case.key@Nw``) to keep grid columns distinguishable.
    """
    return _run_units(list(units), [unit.key for unit in units], jobs,
                      cache, progress, timings, "grid sweep")
