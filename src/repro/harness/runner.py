"""Parallel execution of benchmark cases with cached, deterministic results.

The runner fans the Figure 9 cases out over a ``concurrent.futures`` process
pool.  Each case is executed by the same case-level hook the serial path
uses (:func:`repro.eval.experiments.run_benchmark_case`), in a fresh worker
process with its own simulator state, so parallel results are identical to
serial ones.  Assembly is order-independent: results land in a slot indexed
by the case's position in the input list, whatever order workers finish in.

When a :class:`~repro.harness.cache.ResultCache` is supplied, each case is
looked up before any work is scheduled and stored (JSON-encoded) as soon as
it completes, so overlapping sweeps and re-runs only simulate the cases they
have never seen.

Every executed (non-cached) case is timed where it runs — inside the worker
process for parallel sweeps — and the wall-clock seconds are reported back
through the optional ``timings`` mapping, which the experiment engine feeds
into the ``BENCH_engine.json`` perf trajectory
(:mod:`repro.harness.bench`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import (
    BenchmarkCase,
    BenchmarkRun,
    run_benchmark_case,
)
from repro.harness.artifacts import decode, encode
from repro.harness.cache import ResultCache
from repro.harness.hashing import case_cache_key
from repro.harness.progress import NullProgress, Progress

__all__ = ["run_cases"]


def _execute_case(config: SimConfig, case: BenchmarkCase,
                  num_workers: int) -> Tuple[BenchmarkRun, float]:
    """Worker entry point: run and time one case on every runtime.

    Returns ``(run, wall_seconds)``; both halves are picklable so the pair
    travels back from process-pool workers unchanged.  Timing happens here,
    in the worker, so parallel sweeps measure simulation cost rather than
    pool scheduling latency.
    """
    started = time.perf_counter()
    run = run_benchmark_case(case, config, num_workers)
    return run, time.perf_counter() - started


def _decode_cached_run(cache: ResultCache, key: str) -> Optional[BenchmarkRun]:
    """Decode a cached case run; schema-invalid entries become misses."""
    payload = cache.get(key)
    if payload is None:
        return None
    try:
        run = decode(payload)
    except (EvaluationError, KeyError, TypeError, ValueError):
        run = None
    if not isinstance(run, BenchmarkRun):
        cache.demote_hit(key)
        return None
    return run


def run_cases(
    config: SimConfig,
    cases: Sequence[BenchmarkCase],
    num_workers: int,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Progress] = None,
    timings: Optional[Dict[str, float]] = None,
) -> List[BenchmarkRun]:
    """Execute ``cases`` and return their runs in input order.

    ``num_workers`` is the number of *simulated* cores each non-serial
    runtime uses; ``jobs`` is the number of *host* processes the sweep fans
    out over (1 keeps everything in-process).

    When a ``timings`` mapping is passed, it is populated with the
    wall-clock seconds of every case that was actually simulated (keyed by
    ``case.key``); cache hits cost no simulation and are not recorded.
    """
    if jobs <= 0:
        raise EvaluationError("jobs must be positive")
    progress = progress if progress is not None else NullProgress()
    progress.start("benchmark sweep", len(cases))

    results: List[Optional[BenchmarkRun]] = [None] * len(cases)
    pending = []  # (slot, case, cache key)
    for slot, case in enumerate(cases):
        key = None
        if cache is not None:
            key = case_cache_key(case, config, num_workers)
            run = _decode_cached_run(cache, key)
            if run is not None:
                results[slot] = run
                progress.advance(case.key, cached=True)
                continue
        pending.append((slot, case, key))

    def record(slot: int, case: BenchmarkCase, key: Optional[str],
               run: BenchmarkRun, seconds: float) -> None:
        results[slot] = run
        if cache is not None and key is not None:
            cache.put(key, encode(run), case=case.key)
        if timings is not None:
            timings[case.key] = seconds
        progress.advance(case.key)

    if jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_execute_case, config, case, num_workers):
                    (slot, case, key)
                for slot, case, key in pending
            }
            for future in as_completed(futures):
                slot, case, key = futures[future]
                run, seconds = future.result()
                record(slot, case, key, run, seconds)
    else:
        for slot, case, key in pending:
            run, seconds = _execute_case(config, case, num_workers)
            record(slot, case, key, run, seconds)

    progress.finish()
    return [run for run in results if run is not None]
