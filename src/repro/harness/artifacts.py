"""JSON round-tripping of result records and an on-disk artifact store.

Every result type of the evaluation layer (:class:`RuntimeResult`,
:class:`BenchmarkRun`, :class:`HeadlineSummary`, the bound/overhead/resource
records) can be encoded to plain JSON-serialisable data and decoded back to
the original dataclasses.  Encoded values carry a ``__type__`` tag so that
nested structures — a :class:`BenchmarkRun` holds a dict of
:class:`RuntimeResult` — reconstruct exactly; tuples are tagged too, so
frozen dataclasses round-trip to equal (and equally hashable) values.

The :class:`ArtifactStore` persists encoded experiment outputs under a
directory, one JSON document per artifact, so sweeps can be archived and
re-loaded without re-simulating.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Type

from repro.api import StudyResult, StudySweep
from repro.common.errors import EvaluationError
from repro.eval.experiments import (
    BenchmarkCase,
    BenchmarkRun,
    BoundComparison,
    GranularityPoint,
    HeadlineSummary,
)
from repro.eval.mtt import MttBound
from repro.eval.overhead import OverheadMeasurement
from repro.eval.resources import ResourceEntry
from repro.eval.scaling import ScalingCurve, ScalingPoint
from repro.harness.executor import UnitFailure
from repro.runtime.base import RuntimeResult

__all__ = ["ARTIFACT_TYPES", "encode", "decode", "ArtifactStore"]

#: Dataclasses the codec understands, keyed by their ``__type__`` tag.
ARTIFACT_TYPES: Dict[str, Type] = {
    cls.__name__: cls for cls in (
        RuntimeResult,
        BenchmarkCase,
        BenchmarkRun,
        BoundComparison,
        GranularityPoint,
        HeadlineSummary,
        MttBound,
        OverheadMeasurement,
        ResourceEntry,
        ScalingCurve,
        ScalingPoint,
        StudyResult,
        StudySweep,
        UnitFailure,
    )
}

_TYPE_TAG = "__type__"


def encode(value: object) -> object:
    """Encode ``value`` (results, containers, scalars) to JSON-able data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if name not in ARTIFACT_TYPES:
            raise EvaluationError(f"cannot encode dataclass {name!r}")
        return {
            _TYPE_TAG: name,
            "fields": {
                spec.name: encode(getattr(value, spec.name))
                for spec in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {_TYPE_TAG: "tuple", "items": [encode(item) for item in value]}
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): encode(item) for key, item in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise EvaluationError(
        f"cannot encode value of type {type(value).__name__}: {value!r}"
    )


def decode(data: object) -> object:
    """Inverse of :func:`encode`."""
    if isinstance(data, dict):
        tag = data.get(_TYPE_TAG)
        if tag == "tuple":
            return tuple(decode(item) for item in data["items"])
        if tag is not None:
            cls = ARTIFACT_TYPES.get(tag)
            if cls is None:
                raise EvaluationError(f"unknown artifact type {tag!r}")
            fields = {name: decode(item)
                      for name, item in data["fields"].items()}
            return cls(**fields)
        return {key: decode(item) for key, item in data.items()}
    if isinstance(data, list):
        return [decode(item) for item in data]
    return data


class ArtifactStore:
    """Directory of named, JSON-encoded experiment outputs."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path_for(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise EvaluationError(f"invalid artifact name {name!r}")
        return self.root / f"{name}.json"

    def save(self, name: str, value: object, **metadata: object) -> Path:
        """Persist ``value`` under ``name`` and return the file written."""
        path = self.path_for(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "artifact": name,
            "metadata": metadata,
            "payload": encode(value),
        }
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    def load(self, name: str) -> object:
        """Load and decode the artifact stored under ``name``."""
        path = self.path_for(name)
        if not path.is_file():
            raise EvaluationError(f"no artifact named {name!r} in {self.root}")
        document = json.loads(path.read_text(encoding="utf-8"))
        return decode(document["payload"])

    def metadata(self, name: str) -> dict:
        """The metadata recorded when ``name`` was saved."""
        path = self.path_for(name)
        if not path.is_file():
            raise EvaluationError(f"no artifact named {name!r} in {self.root}")
        document = json.loads(path.read_text(encoding="utf-8"))
        return dict(document.get("metadata", {}))

    def names(self) -> List[str]:
        """Every artifact name currently stored, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))
