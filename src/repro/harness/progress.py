"""Progress reporting for long-running sweeps.

The harness reports case-level progress through the tiny observer interface
below so that the CLI can print live status lines while library callers
(tests, the benchmark conftest) stay silent by default.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["Progress", "NullProgress"]


class Progress:
    """Prints one status line per completed unit of work to ``stream``."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._label = ""
        self._total = 0
        self._done = 0
        self._started = 0.0

    def start(self, label: str, total: int) -> None:
        """Begin a phase of ``total`` units called ``label``."""
        self._label = label
        self._total = total
        self._done = 0
        self._started = time.monotonic()
        if total:
            print(f"{label}: {total} unit(s)", file=self.stream, flush=True)

    def advance(self, description: str, cached: bool = False,
                failed: bool = False) -> None:
        """Record one resolved unit (completed, cache-served, or failed)."""
        self._done += 1
        suffix = " (cached)" if cached else (" (FAILED)" if failed else "")
        print(f"  [{self._done}/{self._total}] {description}{suffix}",
              file=self.stream, flush=True)

    def finish(self) -> None:
        """Close the phase, reporting elapsed wall-clock time."""
        elapsed = time.monotonic() - self._started
        print(f"{self._label}: done in {elapsed:.1f}s",
              file=self.stream, flush=True)


class NullProgress(Progress):
    """A reporter that swallows every update (the library default)."""

    def __init__(self) -> None:
        super().__init__(stream=None)

    def start(self, label: str, total: int) -> None:
        pass

    def advance(self, description: str, cached: bool = False,
                failed: bool = False) -> None:
        pass

    def finish(self) -> None:
        pass
