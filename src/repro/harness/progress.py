"""Progress reporting for long-running sweeps.

The harness reports case-level progress through the tiny observer interface
below so that the CLI can print live status lines while library callers
(tests, the benchmark conftest) stay silent by default.

Since the telemetry layer landed (:mod:`repro.harness.telemetry`), this
interface is an *adapter*: the harness emits structured span records
through a :class:`~repro.harness.telemetry.Tracer`, and a
``ProgressSink`` translates them back into the ``start``/``advance``/
``finish`` calls below — so the stderr status line is just one more
consumer of the same stream a ``trace.jsonl`` file records.

Status lines carry throughput context: each advance reports the elapsed
rate and an ETA once at least one unit resolved, and ``finish`` breaks the
phase down into simulated / cached / failed unit counts alongside the
wall clock.  A phase started with ``total=0`` did nothing and prints
nothing — including at ``finish``, which used to leak a stray "done"
line for empty phases.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["Progress", "NullProgress"]


class Progress:
    """Prints one status line per completed unit of work to ``stream``."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._label = ""
        self._total = 0
        self._done = 0
        self._cached = 0
        self._failed = 0
        self._started = 0.0

    def start(self, label: str, total: int) -> None:
        """Begin a phase of ``total`` units called ``label``."""
        self._label = label
        self._total = total
        self._done = 0
        self._cached = 0
        self._failed = 0
        self._started = time.monotonic()
        if total:
            print(f"{label}: {total} unit(s)", file=self.stream, flush=True)

    def _pace(self) -> str:
        """Elapsed rate and ETA of the phase (empty before any signal)."""
        elapsed = time.monotonic() - self._started
        if elapsed <= 0 or self._done <= 0:
            return ""
        rate = self._done / elapsed
        remaining = self._total - self._done
        if remaining <= 0:
            return f" [{rate:.1f} unit/s]"
        return f" [{rate:.1f} unit/s, ETA {remaining / rate:.0f}s]"

    def advance(self, description: str, cached: bool = False,
                failed: bool = False) -> None:
        """Record one resolved unit (completed, cache-served, or failed)."""
        self._done += 1
        if cached:
            self._cached += 1
        if failed:
            self._failed += 1
        suffix = " (cached)" if cached else (" (FAILED)" if failed else "")
        print(f"  [{self._done}/{self._total}] {description}{suffix}"
              f"{self._pace()}",
              file=self.stream, flush=True)

    def finish(self) -> None:
        """Close the phase: wall clock plus simulated/cached/failed counts.

        A phase whose ``start`` saw ``total=0`` printed no header and
        resolved no units, so it prints no "done" line either (it used to
        emit one under the label of whatever phase came before it).
        """
        if not self._total:
            return
        elapsed = time.monotonic() - self._started
        simulated = self._done - self._cached - self._failed
        print(f"{self._label}: done in {elapsed:.1f}s "
              f"({simulated} simulated, {self._cached} cached, "
              f"{self._failed} failed)",
              file=self.stream, flush=True)


class NullProgress(Progress):
    """A reporter that swallows every update (the library default)."""

    def __init__(self) -> None:
        super().__init__(stream=None)

    def start(self, label: str, total: int) -> None:
        pass

    def advance(self, description: str, cached: bool = False,
                failed: bool = False) -> None:
        pass

    def finish(self) -> None:
        pass
