"""Grid sweeps: (experiment × config-override) products for the harness.

The paper evaluates one machine; the harness treats that as the degenerate
1×1 grid.  A :class:`SweepGrid` is the cartesian product of experiment
identifiers and configuration overrides — each :class:`GridPoint` names one
experiment to run under one overridden :class:`~repro.common.config.SimConfig`.
:meth:`ExperimentEngine.run_grid <repro.harness.engine.ExperimentEngine.run_grid>`
executes a grid end to end: all benchmark-sweep work across every point is
fanned out through *one* process pool and the shared result cache, so grid
columns that coincide with previous runs (e.g. the 8-core column of a
scaling sweep after a Figure 9 run) are pure cache hits.

Overrides are plain ``{field: value}`` mappings resolved against
:class:`~repro.common.config.MachineConfig` first and the top-level
:class:`SimConfig` second (``{"num_cores": 16}`` rebuilds the machine;
``{"max_cycles": 10**9}`` adjusts the engine horizon), so any frozen
configuration knob is sweepable without new plumbing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, List, Mapping, Sequence, Tuple

from repro.common.config import MachineConfig, SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import EXPERIMENT_SPECS

__all__ = ["GridPoint", "GridResult", "SweepGrid", "apply_overrides"]

_MACHINE_FIELDS = {spec.name for spec in dataclasses.fields(MachineConfig)}
_SIMCONFIG_FIELDS = {spec.name for spec in dataclasses.fields(SimConfig)
                     if spec.name != "machine"}


def apply_overrides(config: SimConfig,
                    overrides: Mapping[str, object]) -> SimConfig:
    """Return ``config`` with every override applied.

    Keys resolve against :class:`MachineConfig` first, then the top-level
    :class:`SimConfig`; unknown keys raise :class:`EvaluationError` (the
    frozen dataclasses would otherwise silently accept nothing).
    """
    machine_updates = {}
    config_updates = {}
    for key, value in overrides.items():
        if key in _MACHINE_FIELDS:
            machine_updates[key] = value
        elif key in _SIMCONFIG_FIELDS:
            config_updates[key] = value
        else:
            raise EvaluationError(
                f"unknown config override {key!r}; expected a MachineConfig "
                f"field ({sorted(_MACHINE_FIELDS)}) or a SimConfig field "
                f"({sorted(_SIMCONFIG_FIELDS)})"
            )
    if machine_updates:
        config_updates["machine"] = dataclasses.replace(
            config.machine, **machine_updates)
    return dataclasses.replace(config, **config_updates) \
        if config_updates else config


@dataclass(frozen=True)
class GridPoint:
    """One cell of a sweep grid: an experiment under a config override.

    ``overrides`` is stored as a sorted tuple of pairs so points stay
    hashable and deterministically fingerprintable, exactly like
    :class:`~repro.eval.experiments.BenchmarkCase` parameters.
    """

    experiment_id: str
    overrides: Tuple[Tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        """Stable display name, e.g. ``figure9[num_cores=16]``."""
        if not self.overrides:
            return self.experiment_id
        rendered = ",".join(f"{key}={value}"
                            for key, value in self.overrides)
        return f"{self.experiment_id}[{rendered}]"

    def apply(self, config: SimConfig) -> SimConfig:
        """The effective configuration of this grid point."""
        return apply_overrides(config, dict(self.overrides))


@dataclass
class GridResult:
    """The outcome of one grid point (whatever its runner returned)."""

    point: GridPoint
    result: object


class SweepGrid:
    """The cartesian product of experiments and config overrides."""

    def __init__(self, experiments: Sequence[str],
                 overrides: Sequence[Mapping[str, object]] = ({},)) -> None:
        """Build a grid from experiment ids and override mappings.

        ``overrides`` defaults to the single empty override (a plain run of
        each experiment); every experiment id must exist in the registry.
        """
        self.experiments = tuple(experiments)
        if not self.experiments:
            raise EvaluationError("SweepGrid needs at least one experiment")
        unknown = [name for name in self.experiments
                   if name not in EXPERIMENT_SPECS]
        if unknown:
            raise EvaluationError(
                f"unknown experiments {unknown!r}; expected a subset of "
                f"{sorted(EXPERIMENT_SPECS)}"
            )
        materialised = [dict(override) for override in overrides]
        if not materialised:
            raise EvaluationError("SweepGrid needs at least one override")
        self.overrides: Tuple[dict, ...] = tuple(materialised)

    @classmethod
    def cores(cls, experiments: Sequence[str],
              core_counts: Sequence[int]) -> "SweepGrid":
        """A grid sweeping ``experiments`` over simulated core counts."""
        return cls(experiments,
                   [{"num_cores": count} for count in core_counts])

    def points(self) -> List[GridPoint]:
        """Every (experiment, override) cell, experiments varying slowest."""
        return [
            GridPoint(experiment_id,
                      tuple(sorted(override.items())))
            for experiment_id in self.experiments
            for override in self.overrides
        ]

    def __iter__(self) -> Iterator[GridPoint]:
        return iter(self.points())

    def __len__(self) -> int:
        return len(self.experiments) * len(self.overrides)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SweepGrid(experiments={self.experiments!r}, "
                f"overrides={list(self.overrides)!r})")
