"""Structured run telemetry: hierarchical spans, counters and manifests.

The harness used to expose exactly one window into a running study — the
:class:`~repro.harness.progress.Progress` stderr line.  This module makes
run state *machine-readable*: a :class:`Tracer` emits hierarchical spans
(run → phase → sweep → unit) plus point events to pluggable
:class:`TelemetrySink` objects, and accumulates named counters (cache
hits/misses, pool starts/rebuilds, retry rounds) that are snapshotted into
the trace when the run closes.  Three sinks cover the built-in needs:

* :class:`NullSink` — swallows everything; a tracer with no live sink
  skips record construction entirely, so the default (untraced) path adds
  no overhead to a sweep;
* :class:`JsonlSink` — appends one JSON object per line to a
  ``trace.jsonl`` file (the ``--trace PATH`` / ``$REPRO_TRACE`` surface),
  the seam a future ``repro serve`` daemon will stream job status from;
* :class:`ProgressSink` — adapts span records back onto the classic
  :class:`~repro.harness.progress.Progress` interface, so the live stderr
  status lines are now just one more consumer of the telemetry stream
  (:class:`ConsoleSink` is the stream-facing convenience wrapper).

Every record is a flat JSON document stamped with :data:`TRACE_SCHEMA`:

* ``span_start`` — ``{"type", "schema", "span", "parent", "name",
  "kind", "ts", "attrs"}``; the *run* span's attrs carry the
  :class:`RunManifest` (package version, config fingerprint, jobs, host,
  plugin list);
* ``span_end`` — the same identity fields plus ``"seconds"`` (wall-clock
  duration) and the span's final attributes;
* ``event`` — a point record parented at the current span;
* ``counters`` — a snapshot of every counter accumulated so far.

Span identifiers are sequential integers assigned in emission order and
parentage follows a plain stack, so a single-threaded run always produces
a byte-for-byte deterministic span *structure* (timestamps and durations
vary, nesting and ordering do not).  Unit spans are synthesised at
completion time — the coordinator only learns a unit's fate (and its
worker-measured wall clock) when the result lands — so their
``span_start``/``span_end`` records are emitted back-to-back with the
start timestamp back-dated by the measured duration.

:func:`read_trace` parses a trace file strictly (CI validates traces with
it) and :func:`summarize_trace` folds one into a :class:`TraceSummary` —
per-phase wall-clock, unit-latency percentiles, cache hit ratio, pool
counters and the failure list — rendered by ``repro trace summary``.
"""

from __future__ import annotations

import itertools
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, TextIO

from repro.common.errors import EvaluationError
from repro.harness.progress import NullProgress, Progress

__all__ = [
    "TRACE_SCHEMA",
    "COUNTER_NAMES",
    "TelemetrySink",
    "NullSink",
    "JsonlSink",
    "ProgressSink",
    "ConsoleSink",
    "SpanHandle",
    "Tracer",
    "null_tracer",
    "progress_tracer",
    "RunManifest",
    "build_manifest",
    "read_trace",
    "summarize_trace",
    "TraceSummary",
]

#: Version stamped into every emitted record; bumped when record fields
#: change shape so trace consumers can dispatch on it.
TRACE_SCHEMA = 1


# --------------------------------------------------------------------- #
# Sinks
# --------------------------------------------------------------------- #
class TelemetrySink:
    """Receives telemetry records; implementations must never raise."""

    def emit(self, record: Dict[str, Any]) -> None:
        """Consume one record (a plain JSON-serialisable dict)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; further emits are undefined."""


class NullSink(TelemetrySink):
    """Swallows every record — the zero-overhead default for tests.

    A :class:`Tracer` treats a sink list containing only null sinks as
    *inactive* and skips record construction altogether, so attaching a
    ``NullSink`` costs a sweep nothing beyond counter bookkeeping.
    """

    def emit(self, record: Dict[str, Any]) -> None:
        pass


class JsonlSink(TelemetrySink):
    """Appends records to ``path``, one compact JSON object per line.

    The file handle opens lazily on the first emit and every line is
    flushed, so a crashed run still leaves a parseable prefix — an
    append-only trace is the debugging artifact of last resort and must
    survive the process that wrote it.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = None

    def emit(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        json.dump(record, self._handle, sort_keys=True,
                  separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()


class ProgressSink(TelemetrySink):
    """Adapts span records onto a :class:`Progress` reporter.

    This is the inversion the telemetry layer introduces: the harness
    emits spans, and the classic progress line becomes an *adapter* over
    the same stream everything else consumes — a sweep span's start/end
    bracket a phase, and each unit span's completion advances it.
    """

    def __init__(self, progress: Progress) -> None:
        self.progress = progress

    def emit(self, record: Dict[str, Any]) -> None:
        kind = record.get("kind")
        record_type = record.get("type")
        if kind == "sweep" and record_type == "span_start":
            self.progress.start(record["name"],
                                int(record["attrs"].get("total", 0)))
        elif kind == "unit" and record_type == "span_end":
            attrs = record.get("attrs", {})
            self.progress.advance(record["name"],
                                  cached=bool(attrs.get("cached")),
                                  failed=bool(attrs.get("failed")))
        elif kind == "sweep" and record_type == "span_end":
            self.progress.finish()


class ConsoleSink(ProgressSink):
    """Live status lines on ``stream`` (stderr by default).

    The stream-facing convenience form of :class:`ProgressSink`: exactly
    the rendering ``python -m repro`` shows, driven by telemetry records
    instead of direct calls.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        super().__init__(Progress(stream))


# --------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------- #
@dataclass
class SpanHandle:
    """One open span; ``set`` folds attributes into the end record."""

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    attributes: Dict[str, Any]
    started: float = 0.0

    def set(self, **attributes: Any) -> "SpanHandle":
        """Attach attributes reported with the span's end record."""
        self.attributes.update(attributes)
        return self


#: Every counter name the harness may emit.  ``Tracer.count()`` validates
#: against this set at runtime and the ``telemetry`` lint rule validates
#: string literals statically, so the two enforcement layers share one
#: source of truth and a typo cannot mint a phantom metric series.
COUNTER_NAMES = frozenset({
    "cache.hits",
    "cache.misses",
    "cache.stores",
    "cache.evictions",
    "cache.evicted_bytes",
    "cache.read_seconds",
    "cache.write_seconds",
    "pool.starts",
    "pool.dispatches",
    "pool.rebuilds",
    "pool.retries",
    "sweep.retries",
    "sweep.unit_failures",
})


class Tracer:
    """Emits hierarchical spans and counters to a set of sinks.

    Spans nest through a plain stack (the harness coordinates work from
    one thread), identifiers are sequential, and counters are in-memory
    name → number accumulators snapshotted by :meth:`emit_counters`.  A
    tracer whose sinks are all :class:`NullSink` is *inactive*: spans
    still nest (so counters and structure stay correct) but no record is
    built or emitted.  Counter names must come from :data:`COUNTER_NAMES`.
    """

    def __init__(self,
                 sinks: Optional[Sequence[TelemetrySink]] = None) -> None:
        self.sinks: List[TelemetrySink] = list(sinks or [])
        self.counters: Dict[str, float] = {}
        self._ids = itertools.count(1)
        self._stack: List[SpanHandle] = []

    # ------------------------------ state ----------------------------- #
    @property
    def active(self) -> bool:
        """Whether any attached sink actually consumes records."""
        return any(not isinstance(sink, NullSink) for sink in self.sinks)

    @property
    def current_span(self) -> Optional[SpanHandle]:
        """The innermost open span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero).

        ``name`` must be declared in :data:`COUNTER_NAMES`; rejecting
        unknown names here keeps the metric namespace closed so a typo
        shows up as a crash in tests, not as a phantom series in traces.
        """
        if name not in COUNTER_NAMES:
            raise ValueError(
                f"unknown telemetry counter {name!r}; declare it in "
                "repro.harness.telemetry.COUNTER_NAMES")
        self.counters[name] = self.counters.get(name, 0) + value

    # ----------------------------- spans ------------------------------ #
    def _emit(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def start_span(self, name: str, kind: str,
                   **attributes: Any) -> SpanHandle:
        """Open a span under the current one and emit its start record."""
        parent = self._stack[-1].span_id if self._stack else None
        handle = SpanHandle(span_id=next(self._ids), parent_id=parent,
                            name=name, kind=kind,
                            attributes=dict(attributes),
                            started=time.perf_counter())
        self._stack.append(handle)
        if self.active:
            self._emit({
                "type": "span_start", "schema": TRACE_SCHEMA,
                "span": handle.span_id, "parent": handle.parent_id,
                "name": name, "kind": kind, "ts": time.time(),
                "attrs": dict(handle.attributes),
            })
        return handle

    def end_span(self, handle: SpanHandle) -> None:
        """Close ``handle`` (and anything still open inside it)."""
        while self._stack:
            top = self._stack.pop()
            seconds = time.perf_counter() - top.started
            if self.active:
                self._emit({
                    "type": "span_end", "schema": TRACE_SCHEMA,
                    "span": top.span_id, "parent": top.parent_id,
                    "name": top.name, "kind": top.kind, "ts": time.time(),
                    "seconds": seconds, "attrs": dict(top.attributes),
                })
            if top is handle:
                return
        raise EvaluationError(
            f"span {handle.name!r} (id {handle.span_id}) is not open"
        )

    @contextmanager
    def span(self, name: str, kind: str,
             **attributes: Any) -> Iterator[SpanHandle]:
        """Context-managed :meth:`start_span` / :meth:`end_span` pair."""
        handle = self.start_span(name, kind, **attributes)
        try:
            yield handle
        finally:
            self.end_span(handle)

    def unit(self, name: str, seconds: float, **attributes: Any) -> None:
        """Emit one completed *unit* span under the current span.

        Units finish in worker processes and report their wall clock with
        the result, so the span pair is synthesised here at completion
        time: the start timestamp is back-dated by ``seconds``.
        """
        if not self.active:
            return
        parent = self._stack[-1].span_id if self._stack else None
        span_id = next(self._ids)
        ended = time.time()
        attrs = dict(attributes)
        self._emit({
            "type": "span_start", "schema": TRACE_SCHEMA,
            "span": span_id, "parent": parent, "name": name,
            "kind": "unit", "ts": ended - seconds, "attrs": attrs,
        })
        self._emit({
            "type": "span_end", "schema": TRACE_SCHEMA,
            "span": span_id, "parent": parent, "name": name,
            "kind": "unit", "ts": ended, "seconds": seconds,
            "attrs": attrs,
        })

    def event(self, name: str, **attributes: Any) -> None:
        """Emit a point event parented at the current span."""
        if not self.active:
            return
        parent = self._stack[-1].span_id if self._stack else None
        self._emit({
            "type": "event", "schema": TRACE_SCHEMA, "span": parent,
            "name": name, "ts": time.time(), "attrs": dict(attributes),
        })

    # --------------------------- lifecycle ---------------------------- #
    def emit_counters(self) -> None:
        """Snapshot every counter into the trace (no-op when inactive)."""
        if self.active and self.counters:
            self._emit({
                "type": "counters", "schema": TRACE_SCHEMA,
                "ts": time.time(),
                "values": dict(sorted(self.counters.items())),
            })

    def close(self) -> None:
        """Unwind open spans, snapshot counters and close every sink."""
        while self._stack:
            self.end_span(self._stack[0])
        self.emit_counters()
        for sink in self.sinks:
            sink.close()


def null_tracer() -> Tracer:
    """A tracer that records counters but emits nothing."""
    return Tracer([NullSink()])


def progress_tracer(progress: Optional[Progress]) -> Tracer:
    """A tracer rendering through ``progress`` (None → silent)."""
    if progress is None or isinstance(progress, NullProgress):
        return Tracer([NullSink()])
    return Tracer([ProgressSink(progress)])


# --------------------------------------------------------------------- #
# Run manifest
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunManifest:
    """What a run *was*: the identity card stamped on the run span.

    Everything a later reader needs to attribute a trace: the package
    version, a stable fingerprint of the simulated configuration, the
    host fan-out, where it ran and which plugins were loaded.
    """

    version: str
    config_fingerprint: str
    jobs: int
    host: Dict[str, str]
    workloads: List[str] = field(default_factory=list)
    runtimes: List[str] = field(default_factory=list)
    label: Optional[str] = None

    def as_attributes(self) -> Dict[str, Any]:
        """The manifest as flat span attributes (``manifest.*`` keys)."""
        attrs: Dict[str, Any] = {
            "manifest.version": self.version,
            "manifest.config": self.config_fingerprint,
            "manifest.jobs": self.jobs,
            "manifest.host": dict(self.host),
            "manifest.workloads": list(self.workloads),
            "manifest.runtimes": list(self.runtimes),
        }
        if self.label is not None:
            attrs["manifest.label"] = self.label
        return attrs


def build_manifest(config: object, jobs: int,
                   label: Optional[str] = None) -> RunManifest:
    """Assemble the :class:`RunManifest` of one engine run.

    Imports the hashing/registry layers lazily so this module stays
    importable from the cache and executor (which sit below them).
    """
    import platform
    import sys

    import repro
    from repro import registry
    from repro.harness.hashing import config_fingerprint, stable_hash

    return RunManifest(
        version=repro.__version__,
        config_fingerprint=stable_hash(config_fingerprint(config)),
        jobs=jobs,
        host={
            "hostname": platform.node(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
        },
        workloads=registry.workload_names(),
        runtimes=registry.runtime_names(),
        label=label,
    )


# --------------------------------------------------------------------- #
# Trace reading and summarisation
# --------------------------------------------------------------------- #
def read_trace(path) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file strictly; malformed lines raise.

    Strictness is the point: CI validates the trace a run produced, and a
    half-written line (a crash mid-emit) must surface, not be skipped.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise EvaluationError(f"cannot read trace {path}: {exc}")
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise EvaluationError(
                f"trace {path} line {number} is not valid JSON: {exc}"
            )
        if not isinstance(record, dict) or "type" not in record:
            raise EvaluationError(
                f"trace {path} line {number} is not a telemetry record"
            )
        records.append(record)
    return records


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (which must be non-empty)."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1,
               max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class TraceSummary:
    """The digest ``repro trace summary`` renders from one trace file."""

    manifest: Dict[str, Any]
    phases: List[Dict[str, Any]]
    unit_seconds: List[float]
    cached_units: int
    failed_units: List[Dict[str, Any]]
    total_units: int
    counters: Dict[str, float]
    run_seconds: Optional[float] = None

    @property
    def cache_hit_ratio(self) -> Optional[float]:
        """Cache hits / lookups from the counter snapshot (None if none)."""
        hits = self.counters.get("cache.hits", 0)
        misses = self.counters.get("cache.misses", 0)
        lookups = hits + misses
        return hits / lookups if lookups else None

    def latency(self, fraction: float) -> Optional[float]:
        """Unit-latency percentile over the simulated (non-cached) units."""
        if not self.unit_seconds:
            return None
        return _percentile(self.unit_seconds, fraction)

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines: List[str] = []
        if self.manifest:
            version = self.manifest.get("manifest.version", "?")
            host = self.manifest.get("manifest.host", {})
            lines.append(
                f"run: repro {version} on {host.get('hostname', '?')} "
                f"(python {host.get('python', '?')}, "
                f"jobs={self.manifest.get('manifest.jobs', '?')})"
            )
            config = self.manifest.get("manifest.config")
            if config:
                lines.append(f"config fingerprint: {config[:16]}")
            label = self.manifest.get("manifest.label")
            if label:
                lines.append(f"label: {label}")
        if self.run_seconds is not None:
            lines.append(f"run wall-clock: {self.run_seconds:.2f}s")
        if self.phases:
            lines.append("phases:")
            for phase in self.phases:
                lines.append(f"  {phase['name']:<24} "
                             f"{phase['seconds']:8.2f}s  ({phase['kind']})")
        simulated = len(self.unit_seconds)
        lines.append(
            f"units: {self.total_units} total, {simulated} simulated, "
            f"{self.cached_units} cached, {len(self.failed_units)} failed"
        )
        if self.unit_seconds:
            lines.append(
                f"unit latency: p50 {self.latency(0.50):.3f}s, "
                f"p95 {self.latency(0.95):.3f}s, "
                f"max {max(self.unit_seconds):.3f}s"
            )
        ratio = self.cache_hit_ratio
        if ratio is not None:
            lines.append(
                f"cache: {self.counters.get('cache.hits', 0):.0f} hit(s), "
                f"{self.counters.get('cache.misses', 0):.0f} miss(es) "
                f"({ratio * 100:.0f}% hit ratio)"
            )
        pool = {name: value for name, value in sorted(self.counters.items())
                if name.startswith("pool.")}
        if pool:
            rendered = ", ".join(f"{name.split('.', 1)[1]}={value:.0f}"
                                 for name, value in pool.items())
            lines.append(f"pool: {rendered}")
        retries = self.counters.get("sweep.retries")
        if retries:
            lines.append(f"retries: {retries:.0f} isolated re-attempt(s)")
        for failure in self.failed_units:
            attrs = failure.get("attrs", {})
            lines.append(
                f"  FAILED {failure.get('name')}: "
                f"{attrs.get('error_type', '?')}: {attrs.get('error', '?')} "
                f"(after {attrs.get('attempts', '?')} attempt(s))"
            )
        return "\n".join(lines)


def summarize_trace(path) -> TraceSummary:
    """Fold the trace at ``path`` into a :class:`TraceSummary`."""
    records = read_trace(path)
    manifest: Dict[str, Any] = {}
    phases: List[Dict[str, Any]] = []
    unit_seconds: List[float] = []
    cached = 0
    failed: List[Dict[str, Any]] = []
    total_units = 0
    counters: Dict[str, float] = {}
    run_seconds: Optional[float] = None
    for record in records:
        record_type = record.get("type")
        kind = record.get("kind")
        if record_type == "span_start" and kind == "run" and not manifest:
            manifest = dict(record.get("attrs", {}))
        elif record_type == "span_end":
            if kind == "run" and run_seconds is None:
                run_seconds = float(record.get("seconds", 0.0))
            elif kind in ("phase", "sweep"):
                phases.append({"name": record.get("name"),
                               "kind": kind,
                               "seconds": float(record.get("seconds", 0.0))})
            elif kind == "unit":
                total_units += 1
                attrs = record.get("attrs", {})
                if attrs.get("failed"):
                    failed.append(record)
                elif attrs.get("cached"):
                    cached += 1
                else:
                    unit_seconds.append(float(record.get("seconds", 0.0)))
        elif record_type == "counters":
            # Later snapshots supersede earlier ones (close() re-emits).
            counters = {str(name): float(value)
                        for name, value in record.get("values", {}).items()}
    return TraceSummary(manifest=manifest, phases=phases,
                        unit_seconds=unit_seconds, cached_units=cached,
                        failed_units=failed, total_units=total_units,
                        counters=counters, run_seconds=run_seconds)
