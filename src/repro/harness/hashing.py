"""Stable content fingerprints used as result-cache keys.

A cache key must change whenever anything that can change a result changes:
the experiment identifier, the full :class:`~repro.common.config.SimConfig`
(every cycle cost lives there), the case parameters and the package version.
Keys are SHA-256 digests of a canonical JSON rendering (sorted keys, no
whitespace), so they are stable across processes, Python versions and dict
insertion orders — unlike :func:`hash`, which is salted per process.

Anything that **cannot** change a result stays out of the key.  In
particular no host-side execution knob (``jobs`` / ``REPRO_JOBS`` process
fan-out, progress rendering, artifact archiving) is ever hashed, and the
simulated worker count is *canonicalised into the configuration* rather
than hashed separately: ``Runtime.build_soc`` rebuilds the SoC with
``config.with_cores(num_workers)``, so ``(8-core config, 4 workers)`` and
``(4-core config, 4 workers)`` describe the same simulation and must share
one cache entry.  Earlier releases hashed the raw worker count as an extra
key component, which forced spurious recomputation; :data:`CACHE_SCHEMA`
was bumped when the canonical form was introduced so stale entries are
simply never addressed again.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Mapping, Optional, Sequence

import repro
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import BenchmarkCase, canonical_runtime_selection
from repro.scenario import ScenarioSpec, canonical_scenario

__all__ = [
    "CACHE_SCHEMA",
    "stable_hash",
    "config_fingerprint",
    "canonical_case_config",
    "scenario_fingerprint",
    "case_cache_key",
    "experiment_cache_key",
    "grid_cache_key",
]

#: Version of the cache-key schema.  Bumped whenever the composition of the
#: keys changes (v2: the simulated worker count is canonicalised into the
#: config fingerprint instead of being hashed as a separate component), so
#: entries written under an older schema are never addressed again.
CACHE_SCHEMA = 2


def _jsonable(value: object) -> object:
    """Canonical JSON form of ``value`` (raises for unsupported types)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {name: _jsonable(item)
                for name, item in sorted(dataclasses.asdict(value).items())}
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item)
                for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise EvaluationError(
        f"cannot fingerprint value of type {type(value).__name__}: {value!r}"
    )


def stable_hash(payload: object) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``payload``."""
    text = json.dumps(_jsonable(payload), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def config_fingerprint(config: SimConfig) -> dict:
    """Every result-affecting field of ``config`` as a plain dict."""
    return dataclasses.asdict(config)


def canonical_case_config(config: SimConfig,
                          num_workers: Optional[int] = None) -> SimConfig:
    """The configuration that actually determines a benchmark-case result.

    ``Runtime.build_soc`` replaces the machine's core count with the
    effective worker count, so a case result depends only on
    ``config.with_cores(workers)`` — not on the ``(config, num_workers)``
    pair.  Folding the worker count in here makes equivalent invocations
    address one cache entry.
    """
    workers = (num_workers if num_workers is not None
               else config.machine.num_cores)
    return config.with_cores(workers)


def scenario_fingerprint(scenario: Optional[ScenarioSpec]) -> Optional[dict]:
    """The cache-key payload of a scenario, or ``None`` for the default.

    Mirrors :func:`canonical_runtime_selection`: the default (or absent)
    scenario contributes *nothing* to a key, so deterministic-harness keys
    stay byte-identical to pre-scenario releases, while any non-default
    component — including a bare non-zero seed — changes every key it
    touches.
    """
    spec = canonical_scenario(scenario)
    if spec is None:
        return None
    return _jsonable(spec)


def case_cache_key(case: BenchmarkCase, config: SimConfig,
                   num_workers: Optional[int] = None,
                   version: Optional[str] = None,
                   runtimes: Optional[Sequence[str]] = None,
                   scenario: Optional[ScenarioSpec] = None) -> str:
    """Cache key of one benchmark case execution.

    Case-level keys make overlapping sweeps share work: the quick sweep is
    a subset of the full one, Figures 8/10 plus the headline summary all
    reuse the Figure 9 case results, and the 8-core column of a scaling
    grid sweep addresses exactly the Figure 9 entries.  The worker count is
    canonicalised into the config (see :func:`canonical_case_config`); host
    execution knobs such as ``jobs`` are deliberately absent.

    ``runtimes`` is canonicalised through
    :func:`~repro.eval.experiments.canonical_runtime_selection` and only
    enters the key when the selection reaches outside the default case
    runtimes — a default-selection key is byte-identical to pre-registry
    releases, so existing caches stay 100%-hit.  ``scenario`` enters the
    same way through :func:`scenario_fingerprint`: only non-default
    stochastic scenarios change the key.
    """
    payload = {
        "kind": "benchmark-case",
        "schema": CACHE_SCHEMA,
        "benchmark": case.benchmark,
        "label": case.label,
        "builder": case.builder,
        "params": case.params,
        "config": config_fingerprint(canonical_case_config(config,
                                                           num_workers)),
        "version": version if version is not None else repro.__version__,
    }
    selection = canonical_runtime_selection(runtimes)
    if selection is not None:
        payload["runtimes"] = list(selection)
    scenario_payload = scenario_fingerprint(scenario)
    if scenario_payload is not None:
        payload["scenario"] = scenario_payload
    return stable_hash(payload)


def experiment_cache_key(experiment_id: str, config: SimConfig,
                         parameters: Optional[Mapping[str, object]] = None,
                         version: Optional[str] = None) -> str:
    """Cache key of a whole experiment invocation."""
    return stable_hash({
        "kind": "experiment",
        "schema": CACHE_SCHEMA,
        "experiment": experiment_id,
        "parameters": dict(parameters) if parameters else {},
        "config": config_fingerprint(config),
        "version": version if version is not None else repro.__version__,
    })


def grid_cache_key(experiment_id: str, config: SimConfig,
                   overrides: Sequence[Mapping[str, object]],
                   parameters: Optional[Mapping[str, object]] = None,
                   version: Optional[str] = None) -> str:
    """Cache key of one experiment swept over a grid of config overrides.

    ``overrides`` is the ordered list of override mappings of the grid axis
    (e.g. ``[{"num_cores": 1}, {"num_cores": 2}, ...]``); the base config
    and the override list together pin every simulated configuration of the
    sweep, so the key changes whenever any grid point would.
    """
    return stable_hash({
        "kind": "grid",
        "schema": CACHE_SCHEMA,
        "experiment": experiment_id,
        "overrides": [dict(override) for override in overrides],
        "parameters": dict(parameters) if parameters else {},
        "config": config_fingerprint(config),
        "version": version if version is not None else repro.__version__,
    })
