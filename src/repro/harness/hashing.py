"""Stable content fingerprints used as result-cache keys.

A cache key must change whenever anything that can change a result changes:
the experiment identifier, the full :class:`~repro.common.config.SimConfig`
(every cycle cost lives there), the case parameters, the worker count and
the package version.  Keys are SHA-256 digests of a canonical JSON rendering
(sorted keys, no whitespace), so they are stable across processes, Python
versions and dict insertion orders — unlike :func:`hash`, which is salted
per process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Mapping, Optional

import repro
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import BenchmarkCase

__all__ = [
    "stable_hash",
    "config_fingerprint",
    "case_cache_key",
    "experiment_cache_key",
]


def _jsonable(value: object) -> object:
    """Canonical JSON form of ``value`` (raises for unsupported types)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {name: _jsonable(item)
                for name, item in dataclasses.asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise EvaluationError(
        f"cannot fingerprint value of type {type(value).__name__}: {value!r}"
    )


def stable_hash(payload: object) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``payload``."""
    text = json.dumps(_jsonable(payload), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def config_fingerprint(config: SimConfig) -> dict:
    """Every result-affecting field of ``config`` as a plain dict."""
    return dataclasses.asdict(config)


def case_cache_key(case: BenchmarkCase, config: SimConfig,
                   num_workers: int,
                   version: Optional[str] = None) -> str:
    """Cache key of one benchmark case execution (all runtimes).

    Case-level keys make overlapping sweeps share work: the quick sweep is a
    subset of the full one, and Figures 8/10 plus the headline summary all
    reuse the Figure 9 case results.
    """
    return stable_hash({
        "kind": "benchmark-case",
        "benchmark": case.benchmark,
        "label": case.label,
        "builder": case.builder,
        "params": case.params,
        "config": config_fingerprint(config),
        "num_workers": num_workers,
        "version": version if version is not None else repro.__version__,
    })


def experiment_cache_key(experiment_id: str, config: SimConfig,
                         parameters: Optional[Mapping[str, object]] = None,
                         version: Optional[str] = None) -> str:
    """Cache key of a whole experiment invocation."""
    return stable_hash({
        "kind": "experiment",
        "experiment": experiment_id,
        "parameters": dict(parameters) if parameters else {},
        "config": config_fingerprint(config),
        "version": version if version is not None else repro.__version__,
    })
