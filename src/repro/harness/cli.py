"""The ``python -m repro`` command-line interface.

Subcommands::

    python -m repro list                      # registry contents
    python -m repro run figure9 --quick --jobs 8
    python -m repro run all --cache-dir /tmp/repro-cache
    python -m repro cache --stats / --clear
    python -m repro bench --events 1000000    # engine microbenchmark

``run`` drives the :class:`~repro.harness.engine.ExperimentEngine`, so every
invocation benefits from the result cache and the process-pool sweep, and
renders the same rows/series the paper reports.  (The overhead-based bound
experiments accept tuning knobs — ``--num-tasks`` here, explicit task-size
grids in ``examples/reproduce_paper.py`` — so absolute bound values may
differ between entry points when those knobs differ.)

``bench`` measures raw engine throughput (synthetic events/sec on the fast
and legacy loops plus one timed Figure 9 case) and appends the measurement
to the ``BENCH_engine.json`` perf trajectory — see
:mod:`repro.harness.bench`.  ``run --bench-out PATH`` records per-case
sweep wall-clock into the same trajectory.

Note the cache is keyed by configuration, case parameters and the package
*version* — it cannot see source edits.  After changing simulator code
without bumping ``repro.__version__``, pass ``--no-cache`` or clear the
cache to avoid being served pre-change results.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.common.config import SimConfig
from repro.common.errors import ReproError
from repro.eval.experiments import EXPERIMENT_SPECS
from repro.eval.reporting import (
    benchmarks_report,
    bounds_report,
    comparisons_report,
    granularity_report,
    headline_report,
    overhead_report,
    resources_report,
)
from repro.harness.artifacts import encode
from repro.harness.bench import (
    DEFAULT_TRAJECTORY,
    SPEEDUP_TARGET,
    PerfTrajectory,
    run_engine_bench,
)
from repro.harness.cache import ResultCache
from repro.harness.engine import ExperimentEngine
from repro.harness.progress import NullProgress, Progress

__all__ = ["main", "build_parser", "render_report"]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"

#: Experiment identifiers in presentation order ("all" runs these in order).
_RUN_ORDER = ("figure7", "figure6", "figure9", "figure8", "figure10",
              "table2", "headline")

_RENDERERS = {
    "figure6": bounds_report,
    "figure7": overhead_report,
    "figure8": granularity_report,
    "figure9": benchmarks_report,
    "figure10": comparisons_report,
    "table2": resources_report,
    "headline": headline_report,
}


def render_report(experiment_id: str, result: object) -> str:
    """Render one experiment result as the paper's text table."""
    return _RENDERERS[experiment_id](result)


def default_cache_dir() -> Path:
    """The result-cache directory: ``$REPRO_CACHE_DIR`` or ``.repro_cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser of ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's evaluation experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run one or more experiments (or 'all')",
    )
    run.add_argument("experiments", nargs="+",
                     help=f"experiment ids ({', '.join(_RUN_ORDER)}) or 'all'")
    run.add_argument("--quick", action="store_true",
                     help="reduced benchmark sweep")
    run.add_argument("--scale", type=float, default=1.0,
                     help="shrink problem sizes proportionally (default 1.0)")
    run.add_argument("--jobs", "-j", type=int, default=1,
                     help="host processes for the sweep (default 1)")
    run.add_argument("--workers", type=int, default=None,
                     help="simulated cores per run (default: config)")
    run.add_argument("--num-tasks", type=int, default=None,
                     help="micro-benchmark task count for figures 6/7")
    run.add_argument("--cache-dir", type=Path, default=None,
                     help=f"result cache directory (default "
                          f"${CACHE_DIR_ENV} or {DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the result cache")
    run.add_argument("--artifact-dir", type=Path, default=None,
                     help="also archive results as JSON artifacts here")
    run.add_argument("--format", choices=("text", "json"), default="text",
                     help="report format (default text)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress progress output")
    run.add_argument("--bench-out", type=Path, default=None,
                     help="append per-case sweep timings to this "
                          "BENCH_engine.json trajectory")

    sub.add_parser("list", help="list the experiment registry")

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("--cache-dir", type=Path, default=None)
    cache.add_argument("--clear", action="store_true",
                       help="delete every cache entry")

    bench = sub.add_parser(
        "bench",
        help="engine microbenchmark (events/sec) + perf trajectory",
    )
    bench.add_argument("--events", type=int, default=1_000_000,
                       help="synthetic workload size (default 1000000)")
    bench.add_argument("--no-case", action="store_true",
                       help="skip the timed Figure 9 case")
    bench.add_argument("--no-slow", action="store_true",
                       help="skip the legacy-loop comparison run")
    bench.add_argument("--repeats", type=int, default=3,
                       help="runs per measurement, best-of (default 3)")
    bench.add_argument("--output", type=Path, default=None,
                       help=f"trajectory file to append to (default "
                            f"{DEFAULT_TRAJECTORY}; use '-' to disable)")
    bench.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format (default text)")
    return parser


def _cmd_list(out) -> int:
    """Print the experiment registry, one line per experiment."""
    for experiment_id in _RUN_ORDER:
        spec = EXPERIMENT_SPECS[experiment_id]
        needs = (f" (derived from {', '.join(spec.depends_on)})"
                 if spec.depends_on else "")
        print(f"{experiment_id:<10} {spec.title}{needs}", file=out)
    return 0


def _cmd_cache(args: argparse.Namespace, out) -> int:
    """Report cache statistics, or wipe the cache with ``--clear``."""
    cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
    cache = ResultCache(cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}", file=out)
        return 0
    print(f"cache directory: {cache.root}", file=out)
    print(f"entries: {len(cache)}", file=out)
    print(f"size: {cache.size_bytes() / 1024:.1f} KiB", file=out)
    return 0


def _cmd_bench(args: argparse.Namespace, out) -> int:
    """Run the engine microbenchmark and append it to the trajectory."""
    entry = run_engine_bench(
        num_events=args.events,
        include_case=not args.no_case,
        compare_slow=not args.no_slow,
        config=SimConfig(),
        repeats=args.repeats,
    )
    if args.format == "json":
        print(json.dumps(entry, indent=2, sort_keys=True), file=out)
    else:
        synthetic = entry["synthetic"]
        print(f"synthetic workload: {synthetic['num_events']} events, "
              f"{synthetic['events_per_sec']:,.0f} events/sec", file=out)
        if "speedup_vs_slow" in synthetic:
            print(f"legacy loop:        "
                  f"{synthetic['slow_events_per_sec']:,.0f} events/sec "
                  f"({synthetic['speedup_vs_slow']:.2f}x speedup)", file=out)
        case = entry.get("figure9_case")
        if case:
            print(f"figure9 case:       {case['case']} in "
                  f"{case['seconds']:.3f}s", file=out)
    speedup = entry["synthetic"].get("speedup_vs_slow")
    if speedup is not None and speedup < SPEEDUP_TARGET:
        print(f"WARNING: fast path is only {speedup:.2f}x the legacy loop "
              f"(target {SPEEDUP_TARGET}x)", file=sys.stderr)
    if args.output is None or str(args.output) != "-":
        path = args.output if args.output is not None \
            else Path(DEFAULT_TRAJECTORY)
        trajectory = PerfTrajectory(path)
        trajectory.append(entry)
        # Status goes to stderr so `--format json` stdout stays parseable.
        print(f"recorded in {trajectory.path} "
              f"({len(trajectory.entries())} entries)", file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace, out) -> int:
    """Run the selected experiments through one shared engine."""
    selected: List[str] = []
    for name in args.experiments:
        if name == "all":
            selected.extend(_RUN_ORDER)
        elif name in EXPERIMENT_SPECS:
            selected.append(name)
        else:
            print(f"error: unknown experiment {name!r}; expected one of "
                  f"{', '.join(_RUN_ORDER)} or 'all'", file=sys.stderr)
            return 2
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
    engine = ExperimentEngine(
        config=SimConfig(),
        jobs=args.jobs,
        cache_dir=cache_dir,
        artifact_dir=args.artifact_dir,
        progress=NullProgress() if args.quiet else Progress(),
        bench_path=args.bench_out,
    )
    json_payload = {}
    for experiment_id in selected:
        result = engine.run(
            experiment_id,
            quick=args.quick,
            scale=args.scale,
            num_workers=args.workers,
            num_tasks=args.num_tasks,
        )
        if args.format == "json":
            json_payload[experiment_id] = encode(result)
        else:
            title = EXPERIMENT_SPECS[experiment_id].title
            print(f"\n=== {experiment_id}: {title} ===", file=out)
            print(render_report(experiment_id, result), file=out)
    if args.format == "json":
        print(json.dumps(json_payload, indent=2, sort_keys=True), file=out)
    stats = engine.cache_stats
    if not args.quiet and stats.lookups:
        print(f"cache: {stats.hits} hit(s), {stats.misses} miss(es) "
              f"({stats.hit_rate * 100:.0f}% hit rate)", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro`` and the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(sys.stdout)
        if args.command == "cache":
            return _cmd_cache(args, sys.stdout)
        if args.command == "bench":
            return _cmd_bench(args, sys.stdout)
        return _cmd_run(args, sys.stdout)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
