"""The ``python -m repro`` command-line interface.

Subcommands::

    python -m repro list                      # experiment registry
    python -m repro workloads --tag paper     # workload plugin registry
    python -m repro runtimes                  # runtime plugin registry
    python -m repro arrivals / etms / schedulers  # scenario registries
    python -m repro run figure9 --quick --jobs 8
    python -m repro run figure9 --workload jacobi --runtime phentos
    python -m repro run figure9 --arrival bursty:load=0.8 --seed 7
    python -m repro run all --cache-dir /tmp/repro-cache
    python -m repro sweep --experiment scaling_curves --cores 1,2,4,8
    python -m repro cache --stats / --clear
    python -m repro cache evict --cache-budget 512M  # LRU shrink
    python -m repro cache migrate                    # flat -> sharded
    python -m repro bench --events 1000000    # engine microbenchmark
    python -m repro trace summary trace.jsonl # digest a telemetry trace

``run``/``sweep`` also accept a stochastic scenario: ``--arrival`` /
``--etm`` / ``--scheduler`` select registered scenario components (with
inline ``NAME:key=value,...`` parameters), ``--seed`` picks the
deterministic random stream and ``--deadline-factor`` stamps per-task
deadlines.  The same seeded scenario always reproduces byte-identical
results, under any ``--jobs`` value (:mod:`repro.scenario`).

``run``/``sweep``/``bench`` accept ``--workload``/``--runtime``/``--tag``
filters resolved through the plugin registries (:mod:`repro.registry`), so
a workload or runtime registered by a drop-in plugin is immediately
runnable from the command line; unknown names fail with a did-you-mean
suggestion listing the registered names.

``run`` drives the :class:`~repro.harness.engine.ExperimentEngine`, so every
invocation benefits from the result cache and the engine's persistent warm
worker pool, and renders the same rows/series the paper reports.  Sweeps
isolate unit failures: a failing unit is retried in a fresh worker
(``--retries``, default 1) and remaining failures either abort the run
with one aggregated error naming every failed unit, or — with
``--keep-going`` — are reported on stderr while the run finishes with
partial results and exit code 0.  (The overhead-based bound
experiments accept tuning knobs — ``--num-tasks`` here, explicit task-size
grids in ``examples/reproduce_paper.py`` — so absolute bound values may
differ between entry points when those knobs differ.)

``sweep`` runs grid sweeps: the ``scaling_curves`` experiment over a
``--cores`` grid (optionally filtered to ``--runtimes``), or any other
registry experiment repeated per core count.  All grid work shares one
process pool (``--jobs``, defaulting to ``$REPRO_JOBS``) and the result
cache, and the 8-core column of a scaling sweep addresses exactly the
Figure 9 cache entries — re-running a sweep, with any ``--jobs`` value,
is a pure cache hit.

``bench`` measures raw engine throughput (synthetic events/sec plus one
timed Figure 9 case) and appends the measurement to the
``BENCH_engine.json`` perf trajectory — see :mod:`repro.harness.bench`.
``run --bench-out PATH`` records per-case sweep wall-clock into the same
trajectory.

``run``, ``sweep`` and ``bench`` accept ``--trace PATH`` (default
``$REPRO_TRACE``) to record the invocation's telemetry stream — run
manifest, phase/sweep/unit spans, cache and pool counters — as JSONL
(:mod:`repro.harness.telemetry`); ``trace summary FILE`` digests such a
file into per-phase wall-clock, unit-latency percentiles, cache hit ratio
and the failure list.  ``cache --stats`` reports the cache directory's
*lifetime* hit/miss/store/evict counters alongside its entry count and
size.

``--cache-dir`` accepts a directory path or a backend spec (``mem:``,
``dir:PATH``, ``sharded:PATH``, ``tiered:LOCAL|SHARED``), and
``--cache-budget`` (default ``$REPRO_CACHE_BUDGET``) bounds the store
with LRU eviction; ``cache evict`` shrinks explicitly and ``cache
migrate`` rewrites a legacy flat layout in place — see
``docs/caching.md``.

Note the cache is keyed by configuration, case parameters and the package
*version* — it cannot see source edits.  After changing simulator code
without bumping ``repro.__version__``, pass ``--no-cache`` or clear the
cache to avoid being served pre-change results.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro import registry
from repro.common.config import SimConfig
from repro.common.errors import ReproError
from repro.eval.experiments import EXPERIMENT_SPECS, benchmark_cases
from repro.eval.reporting import (
    benchmarks_report,
    bounds_report,
    comparisons_report,
    granularity_report,
    headline_report,
    overhead_report,
    resources_report,
    scaling_report,
)
from repro.harness.artifacts import encode
from repro.harness.bench import (
    DEFAULT_TRAJECTORY,
    PerfTrajectory,
    run_engine_bench,
)
from repro.harness.cache import CACHE_BUDGET_ENV, open_store, resolve_budget
from repro.harness.engine import ExperimentEngine
from repro.harness.progress import NullProgress, Progress
from repro.harness.sweep import SweepGrid
from repro.scenario import ScenarioSpec

__all__ = ["main", "build_parser", "render_report"]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"

#: Environment variable giving the default host-process fan-out of
#: ``sweep`` (never part of any cache key, so changing it cannot
#: invalidate results).
JOBS_ENV = "REPRO_JOBS"

#: Environment variable naming plugin modules (comma-separated module
#: names or ``.py`` file paths) imported before any registry lookup, so
#: ``@register_workload``/``@register_runtime`` plugins are addressable
#: from a fresh CLI process.  ``--plugin`` does the same per invocation.
PLUGINS_ENV = "REPRO_PLUGINS"

#: Environment variable giving the default ``--trace`` path of
#: ``run``/``sweep``/``bench`` (never part of any cache key, so tracing a
#: run cannot change its results).
TRACE_ENV = "REPRO_TRACE"

#: Experiment identifiers in presentation order ("all" runs these in order;
#: ``scaling_curves`` is grid-shaped and runs through ``sweep`` instead).
_RUN_ORDER = ("figure7", "figure6", "figure9", "figure8", "figure10",
              "table2", "headline")

_RENDERERS = {
    "figure6": bounds_report,
    "figure7": overhead_report,
    "figure8": granularity_report,
    "figure9": benchmarks_report,
    "figure10": comparisons_report,
    "table2": resources_report,
    "headline": headline_report,
    "scaling_curves": scaling_report,
}


def render_report(experiment_id: str, result: object,
                  runtimes: Optional[List[str]] = None) -> str:
    """Render one experiment result as the paper's text table.

    ``runtimes`` narrows the figure9 report columns to a selection (the
    other renderers have fixed columns and ignore it).
    """
    if experiment_id == "figure9" and runtimes:
        return _RENDERERS[experiment_id](result, runtimes=runtimes)
    return _RENDERERS[experiment_id](result)


def default_cache_dir() -> Path:
    """The result-cache directory: ``$REPRO_CACHE_DIR`` or ``.repro_cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


def _parse_cores(text: str) -> List[int]:
    """argparse type for ``--cores``: '1,2,4' -> [1, 2, 4]."""
    try:
        return [int(item) for item in text.split(",") if item.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid core list {text!r}; expected comma-separated integers"
        )


def _parse_names(text: str) -> List[str]:
    """argparse type for name lists: 'phentos,nanos-rv' -> list.

    Used with ``action="extend"``, so ``--runtime a,b --runtime c`` and
    ``--runtime a --runtime b --runtime c`` are equivalent.
    """
    return [item.strip() for item in text.split(",") if item.strip()]


def _parse_component(text: str):
    """argparse type for scenario components: 'bursty:load=0.8,burst=16'.

    Returns ``(name, params)``; parameter values parse as JSON literals
    where possible (``load=0.8`` → float, ``edf=true`` → bool) and fall
    back to strings.
    """
    name, _, params_text = text.partition(":")
    name = name.strip()
    if not name:
        raise argparse.ArgumentTypeError(
            f"invalid scenario component {text!r}; expected "
            f"NAME or NAME:key=value[,key=value...]"
        )
    params = {}
    for item in params_text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise argparse.ArgumentTypeError(
                f"invalid parameter {item!r} in {text!r}; expected key=value"
            )
        try:
            params[key.strip()] = json.loads(value.strip())
        except ValueError:
            params[key.strip()] = value.strip()
    return name, params


#: Experiments whose execution honours a ``--runtime`` selection (the
#: derived figures hard-code the paper's three-way comparison).
_RUNTIME_AWARE = ("figure9", "scaling_curves")


def _selected_cases(args: argparse.Namespace):
    """The registry-derived case list of ``--workload``/``--tag`` filters.

    Returns ``None`` (the experiment default) when no filter was given.
    Unknown workload names raise :class:`EvaluationError` upstream with a
    did-you-mean suggestion.
    """
    if not getattr(args, "workload", None) and not getattr(args, "tag", None):
        return None
    return benchmark_cases(quick=args.quick, scale=args.scale,
                           workloads=args.workload or None,
                           tags=args.tag or None)


def _is_case_aware(experiment_id: str) -> bool:
    """Whether an experiment consumes a benchmark-case selection."""
    if experiment_id in ("figure9", "scaling_curves"):
        return True
    return "figure9" in EXPERIMENT_SPECS[experiment_id].depends_on


def _cases_for(args: argparse.Namespace, cases, experiment_id: str):
    """``cases`` where the experiment consumes them; note-and-drop else."""
    if cases is None or _is_case_aware(experiment_id):
        return cases
    print(f"note: --workload/--tag apply to the benchmark-sweep "
          f"experiments; ignored for {experiment_id}", file=sys.stderr)
    return None


def _runtimes_for(args: argparse.Namespace, experiment_id: str):
    """The ``--runtime`` selection, where the experiment honours it."""
    runtimes = getattr(args, "runtimes", None)
    if not runtimes:
        return None
    if experiment_id not in _RUNTIME_AWARE:
        print(f"note: --runtime applies to "
              f"{'/'.join(_RUNTIME_AWARE)}; ignored for {experiment_id}",
              file=sys.stderr)
        return None
    return runtimes


def _cli_scenario(args: argparse.Namespace) -> Optional[ScenarioSpec]:
    """The :class:`ScenarioSpec` of ``--arrival``/``--etm``/... flags.

    ``None`` when no scenario flag was given, so the default invocation
    stays exactly the deterministic pre-scenario path (and its cache
    keys).  Component names resolve eagerly through the scenario
    registries with did-you-mean suggestions.
    """
    arrival = getattr(args, "arrival", None)
    etm = getattr(args, "etm", None)
    scheduler = getattr(args, "scheduler", None)
    seed = getattr(args, "seed", None)
    deadline = getattr(args, "deadline_factor", None)
    if (arrival is None and etm is None and scheduler is None
            and seed is None and deadline is None):
        return None
    arrival_name, arrival_params = arrival or ("none", {})
    etm_name, etm_params = etm or ("none", {})
    scheduler_name, scheduler_params = scheduler or ("fifo", {})
    if arrival_name != "none":
        registry.arrival(arrival_name)  # did-you-mean on unknown
    if etm_name != "none":
        registry.etm(etm_name)
    registry.scheduler(scheduler_name)
    return ScenarioSpec.make(
        arrival=arrival_name, arrival_params=arrival_params,
        etm=etm_name, etm_params=etm_params,
        scheduler=scheduler_name, scheduler_params=scheduler_params,
        seed=seed if seed is not None else 0,
        deadline_factor=deadline if deadline is not None else 0.0,
    )


def _scenario_for(args: argparse.Namespace,
                  experiment_id: str) -> Optional[ScenarioSpec]:
    """The scenario flags, where the experiment consumes them."""
    scenario = _cli_scenario(args)
    if scenario is None:
        return None
    if not _is_case_aware(experiment_id):
        print(f"note: scenario flags apply to the benchmark-sweep "
              f"experiments; ignored for {experiment_id}", file=sys.stderr)
        return None
    return scenario


def _default_jobs() -> int:
    """The ``$REPRO_JOBS`` fan-out, resolved lazily (1 when unset/invalid).

    Resolved at command time rather than parser-build time so a malformed
    value cannot break unrelated subcommands.
    """
    try:
        return int(os.environ.get(JOBS_ENV, "1") or "1")
    except ValueError:
        print(f"warning: ignoring invalid ${JOBS_ENV}="
              f"{os.environ[JOBS_ENV]!r}; using 1 job", file=sys.stderr)
        return 1


def _load_plugins(specs: Optional[List[str]]) -> None:
    """Import every plugin named by ``--plugin`` and ``$REPRO_PLUGINS``.

    Delegates to :func:`repro.registry.load_plugin` (module names or
    ``.py`` paths; idempotent per file), so the CLI, the Study API and
    the pool workers all share one loading path.
    """
    names = list(specs or [])
    names += _parse_names(os.environ.get(PLUGINS_ENV, ""))
    for name in dict.fromkeys(names):
        registry.load_plugin(name)


def _resolve_trace(args: argparse.Namespace) -> Optional[Path]:
    """The trace output path: ``--trace`` or ``$REPRO_TRACE`` (or None)."""
    trace = getattr(args, "trace", None)
    if trace is not None:
        return trace
    from_env = os.environ.get(TRACE_ENV, "").strip()
    return Path(from_env) if from_env else None


def _build_engine(args: argparse.Namespace, jobs: int,
                  run_label: Optional[str] = None) -> ExperimentEngine:
    """The shared engine wiring of the ``run`` and ``sweep`` subcommands."""
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
    return ExperimentEngine(
        config=SimConfig(),
        jobs=jobs,
        cache_dir=cache_dir,
        cache_budget=getattr(args, "cache_budget", None),
        artifact_dir=args.artifact_dir,
        progress=NullProgress() if args.quiet else Progress(),
        bench_path=args.bench_out,
        run_label=run_label,
        keep_going=getattr(args, "keep_going", False),
        retries=getattr(args, "retries", 1),
        trace_path=_resolve_trace(args),
    )


def _print_cache_stats(engine: ExperimentEngine, quiet: bool) -> None:
    """Report hit/miss counters on stderr (suppressed by ``--quiet``)."""
    stats = engine.cache_stats
    if not quiet and stats.lookups:
        evicted = (f", {stats.evictions} evicted"
                   if getattr(stats, "evictions", 0) else "")
        print(f"cache: {stats.hits} hit(s), {stats.misses} miss(es) "
              f"({stats.hit_rate * 100:.0f}% hit rate){evicted}",
              file=sys.stderr)


def _print_failures(engine: ExperimentEngine) -> None:
    """Report every failed sweep unit on stderr (``--keep-going`` runs).

    Printed even under ``--quiet``: a failure report documents missing
    data, not progress, so it must never be suppressed.
    """
    # Partial results re-served from the sweep memo re-report their
    # failures; collapse those repeats for the human-facing summary.
    failures = list(dict.fromkeys(engine.unit_failures))
    if not failures:
        return
    print(f"{len(failures)} unit(s) failed (results are partial):",
          file=sys.stderr)
    for failure in failures:
        print(f"  FAILED {failure.describe()}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser of ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's evaluation experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plugins = argparse.ArgumentParser(add_help=False)
    plugins.add_argument("--plugin", dest="plugins", action="append",
                         default=None, metavar="MODULE|FILE.py",
                         help="import this plugin module (or .py file) "
                              "before resolving names; also honours "
                              f"${PLUGINS_ENV} (comma-separated)")

    resilience = argparse.ArgumentParser(add_help=False)
    resilience.add_argument("--keep-going", action="store_true",
                            help="don't abort the sweep when a unit fails: "
                                 "finish everything else, report the "
                                 "failures, exit 0 with partial results")
    resilience.add_argument("--retries", type=int, default=1,
                            help="re-attempts per failed unit, each in a "
                                 "fresh worker process (default 1)")

    tracing = argparse.ArgumentParser(add_help=False)
    tracing.add_argument("--trace", type=Path, default=None, metavar="PATH",
                         help="append the run's telemetry stream (spans, "
                              "counters, run manifest) to this JSONL file; "
                              f"also honours ${TRACE_ENV}; digest it with "
                              "'trace summary'")

    scenario = argparse.ArgumentParser(add_help=False)
    scenario.add_argument("--arrival", type=_parse_component, default=None,
                          metavar="NAME[:k=v,...]",
                          help="release tasks over time via this registered "
                               "arrival model (see 'arrivals'), e.g. "
                               "bursty:load=0.8,burst=16")
    scenario.add_argument("--etm", type=_parse_component, default=None,
                          metavar="NAME[:k=v,...]",
                          help="perturb task execution times via this "
                               "execution-time model (see 'etms'), e.g. "
                               "lognormal:sigma=0.5")
    scenario.add_argument("--scheduler", type=_parse_component, default=None,
                          metavar="NAME[:k=v,...]",
                          help="reorder ready queues via this scheduler "
                               "policy (see 'schedulers'; default fifo, "
                               "the paper's Picos order)")
    scenario.add_argument("--seed", type=int, default=None,
                          help="seed of the scenario's random streams "
                               "(default 0); same seed, same results, "
                               "under any --jobs value")
    scenario.add_argument("--deadline-factor", type=float, default=None,
                          metavar="FACTOR",
                          help="stamp per-task deadlines at FACTOR x "
                               "payload after release and count misses")

    run = sub.add_parser(
        "run", help="run one or more experiments (or 'all')",
        parents=[plugins, resilience, tracing, scenario],
    )
    run.add_argument("experiments", nargs="+",
                     help=f"experiment ids ({', '.join(_RUN_ORDER)}) or 'all'")
    run.add_argument("--quick", action="store_true",
                     help="reduced benchmark sweep")
    run.add_argument("--scale", type=float, default=1.0,
                     help="shrink problem sizes proportionally (default 1.0)")
    run.add_argument("--workload", type=_parse_names, action="extend",
                     default=None, metavar="NAME[,NAME...]",
                     help="restrict the benchmark sweep to these registered "
                          "workloads (see 'workloads')")
    run.add_argument("--tag", type=_parse_names, action="extend",
                     default=None, metavar="TAG[,TAG...]",
                     help="restrict the sweep to workloads carrying every "
                          "listed tag")
    run.add_argument("--runtime", "--runtimes", dest="runtimes",
                     type=_parse_names, action="extend", default=None,
                     metavar="NAME[,NAME...]",
                     help="runtimes to compare for figure9/scaling_curves "
                          "(serial always runs; see 'runtimes')")
    run.add_argument("--jobs", "-j", type=int, default=1,
                     help="host processes for the sweep (default 1)")
    run.add_argument("--workers", type=int, default=None,
                     help="simulated cores per run (default: config)")
    run.add_argument("--num-tasks", type=int, default=None,
                     help="micro-benchmark task count for figures 6/7")
    run.add_argument("--cache-dir", default=None, metavar="DIR_OR_SPEC",
                     help=f"result cache directory or spec "
                          f"(mem:, dir:, sharded:, tiered:LOCAL|SHARED; "
                          f"default ${CACHE_DIR_ENV} or "
                          f"{DEFAULT_CACHE_DIR})")
    run.add_argument("--cache-budget", default=None, metavar="SIZE",
                     help=f"cache size budget with LRU eviction, e.g. "
                          f"512M (default ${CACHE_BUDGET_ENV} or "
                          f"unbounded)")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the result cache")
    run.add_argument("--artifact-dir", type=Path, default=None,
                     help="also archive results as JSON artifacts here")
    run.add_argument("--format", choices=("text", "json"), default="text",
                     help="report format (default text)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress progress output")
    run.add_argument("--bench-out", type=Path, default=None,
                     help="append per-case sweep timings to this "
                          "BENCH_engine.json trajectory")

    sweep = sub.add_parser(
        "sweep",
        help="grid sweeps: an experiment across core counts "
             "(default: scaling_curves)",
        parents=[plugins, resilience, tracing, scenario],
    )
    sweep.add_argument("--experiment", default="scaling_curves",
                       help="experiment to sweep (default scaling_curves)")
    sweep.add_argument("--cores", type=_parse_cores, default=None,
                       help="comma-separated core counts "
                            "(default 1,2,4,8,16,32,64)")
    sweep.add_argument("--runtimes", "--runtime", dest="runtimes",
                       type=_parse_names, action="extend", default=None,
                       metavar="NAME[,NAME...]",
                       help="runtime filter for figure9/scaling_curves "
                            "sweeps (default nanos-sw,nanos-rv,phentos)")
    sweep.add_argument("--workload", type=_parse_names, action="extend",
                       default=None, metavar="NAME[,NAME...]",
                       help="restrict the swept cases to these registered "
                            "workloads (see 'workloads')")
    sweep.add_argument("--tag", type=_parse_names, action="extend",
                       default=None, metavar="TAG[,TAG...]",
                       help="restrict the swept cases to workloads carrying "
                            "every listed tag")
    sweep.add_argument("--quick", action="store_true",
                       help="reduced benchmark sweep")
    sweep.add_argument("--scale", type=float, default=1.0,
                       help="shrink problem sizes proportionally "
                            "(default 1.0)")
    sweep.add_argument("--jobs", "-j", type=int, default=None,
                       help=f"host processes for the grid (default "
                            f"${JOBS_ENV} or 1; never part of cache keys)")
    sweep.add_argument("--cache-dir", default=None, metavar="DIR_OR_SPEC",
                       help=f"result cache directory or spec "
                            f"(mem:, dir:, sharded:, tiered:LOCAL|SHARED; "
                            f"default ${CACHE_DIR_ENV} or "
                            f"{DEFAULT_CACHE_DIR})")
    sweep.add_argument("--cache-budget", default=None, metavar="SIZE",
                       help=f"cache size budget with LRU eviction, e.g. "
                            f"512M (default ${CACHE_BUDGET_ENV} or "
                            f"unbounded)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    sweep.add_argument("--artifact-dir", type=Path, default=None,
                       help="also archive the sweep result as a JSON "
                            "artifact here")
    sweep.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format (default text)")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress progress output")
    sweep.add_argument("--bench-out", type=Path, default=None,
                       help="append per-unit sweep timings to this "
                            "BENCH_engine.json trajectory")

    sub.add_parser("list", help="list the experiment registry")

    workloads = sub.add_parser(
        "workloads", help="list the workload plugin registry",
        parents=[plugins],
    )
    workloads.add_argument("--tag", type=_parse_names, action="extend",
                           default=None, metavar="TAG[,TAG...]",
                           help="only workloads carrying every listed tag")

    runtimes = sub.add_parser(
        "runtimes", help="list the runtime plugin registry",
        parents=[plugins],
    )
    runtimes.add_argument("--tag", type=_parse_names, action="extend",
                          default=None, metavar="TAG[,TAG...]",
                          help="only runtimes carrying every listed tag")

    for kind, title in (("arrivals", "arrival-model"),
                        ("etms", "execution-time-model"),
                        ("schedulers", "scheduler-policy")):
        components = sub.add_parser(
            kind, help=f"list the {title} scenario registry",
            parents=[plugins],
        )
        components.add_argument("--tag", type=_parse_names, action="extend",
                                default=None, metavar="TAG[,TAG...]",
                                help="only components carrying every "
                                     "listed tag")

    cache = sub.add_parser(
        "cache", help="inspect, clear, evict or migrate the result cache")
    cache.add_argument("cache_action", nargs="?", default=None,
                       choices=("evict", "migrate"), metavar="ACTION",
                       help="evict: shrink to --cache-budget (LRU); "
                            "migrate: rewrite legacy flat entries into "
                            "the sharded layout")
    cache.add_argument("--cache-dir", default=None, metavar="DIR_OR_SPEC")
    cache.add_argument("--cache-budget", default=None, metavar="SIZE",
                       help=f"size budget for 'evict' (e.g. 512M; "
                            f"default ${CACHE_BUDGET_ENV})")
    cache.add_argument("--clear", action="store_true",
                       help="delete every cache entry")
    cache.add_argument("--stats", action="store_true",
                       help="also report the directory's lifetime "
                            "hit/miss/store/evict counters")

    trace = sub.add_parser(
        "trace", help="inspect telemetry traces recorded with --trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary",
        help="digest a trace: phase wall-clock, unit latency percentiles, "
             "cache hit ratio, pool counters, failures")
    trace_summary.add_argument("trace_file", type=Path,
                               help="a trace.jsonl recorded with --trace")

    bench = sub.add_parser(
        "bench",
        help="engine microbenchmark (events/sec) + perf trajectory",
        parents=[plugins, tracing],
    )
    bench.add_argument("--events", type=int, default=1_000_000,
                       help="synthetic workload size (default 1000000)")
    bench.add_argument("--no-case", action="store_true",
                       help="skip the timed Figure 9 case")
    bench.add_argument("--repeats", type=int, default=3,
                       help="runs per measurement, best-of (default 3)")
    bench.add_argument("--workload", default=None, metavar="NAME",
                       help="registered workload the timed case is drawn "
                            "from (default: first quick case)")
    bench.add_argument("--runtime", "--runtimes", dest="runtimes",
                       type=_parse_names, action="extend", default=None,
                       metavar="NAME[,NAME...]",
                       help="runtimes the timed case runs on (serial "
                            "always runs)")
    bench.add_argument("--no-pool", action="store_true",
                       help="skip the worker-pool warm-up/dispatch "
                            "overhead measurement")
    bench.add_argument("--no-cache-bench", action="store_true",
                       help="skip the cache get/put latency measurement")
    bench.add_argument("--output", type=Path, default=None,
                       help=f"trajectory file to append to (default "
                            f"{DEFAULT_TRAJECTORY}; use '-' to disable)")
    bench.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format (default text)")

    lint = sub.add_parser(
        "lint",
        help="AST invariant linter (determinism, hot-path, cache-key, "
             "spawn-safety, telemetry rules)")
    from repro.analysis.cli import add_lint_arguments
    add_lint_arguments(lint)
    return parser


def _cmd_list(out) -> int:
    """Print the experiment registry, one line per experiment."""
    for experiment_id in _RUN_ORDER + ("scaling_curves",):
        spec = EXPERIMENT_SPECS[experiment_id]
        needs = (f" (derived from {', '.join(spec.depends_on)})"
                 if spec.depends_on else "")
        if experiment_id == "scaling_curves":
            needs += " [grid-shaped; run via 'sweep']"
        print(f"{experiment_id:<14} {spec.title}{needs}", file=out)
    print("\nSee 'workloads' and 'runtimes' for the plugin registries.",
          file=out)
    return 0


def _cmd_workloads(args: argparse.Namespace, out) -> int:
    """Print the workload registry: name, tags, cases, description."""
    specs = registry.WORKLOADS.specs(tags=args.tag or None)
    if not specs:
        print(f"no registered workload carries every tag in "
              f"{args.tag!r}", file=sys.stderr)
        return 1
    for spec in specs:
        tags = ",".join(spec.tags) if spec.tags else "-"
        cases = len(spec.cases())
        print(f"{spec.name:<14} {tags:<34} {cases:>3} case(s)  "
              f"{spec.description}", file=out)
    return 0


def _cmd_runtimes(args: argparse.Namespace, out) -> int:
    """Print the runtime registry in rank order: name, tags, description."""
    specs = sorted(registry.RUNTIMES.specs(tags=args.tag or None),
                   key=lambda spec: spec.rank)
    if not specs:
        print(f"no registered runtime carries every tag in "
              f"{args.tag!r}", file=sys.stderr)
        return 1
    for spec in specs:
        tags = ",".join(spec.tags) if spec.tags else "-"
        print(f"{spec.name:<14} {tags:<34} {spec.description}", file=out)
    return 0


#: Scenario-component listing subcommands and their registries.
_COMPONENT_REGISTRIES = {
    "arrivals": lambda: registry.ARRIVALS,
    "etms": lambda: registry.ETMS,
    "schedulers": lambda: registry.SCHEDULERS,
}


def _cmd_components(args: argparse.Namespace, out) -> int:
    """Print one scenario registry: name, tags, defaults, description."""
    reg = _COMPONENT_REGISTRIES[args.command]()
    specs = reg.specs(tags=args.tag or None)
    if not specs:
        print(f"no registered {reg.kind} carries every tag in "
              f"{args.tag!r}", file=sys.stderr)
        return 1
    for spec in specs:
        tags = ",".join(spec.tags) if spec.tags else "-"
        defaults = (",".join(f"{key}={value}" for key, value
                             in sorted(dict(spec.defaults).items()))
                    if spec.defaults else "-")
        print(f"{spec.name:<14} {tags:<24} {defaults:<28} "
              f"{spec.description}", file=out)
    return 0


def _cmd_cache(args: argparse.Namespace, out) -> int:
    """Inspect, clear, evict or migrate the result cache."""
    cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
    cache = open_store(cache_dir, budget=args.cache_budget)
    where = getattr(cache, "root", cache_dir)
    if args.cache_action == "migrate":
        migrate = getattr(cache, "migrate", None)
        if migrate is None:
            print(f"the {type(cache).__name__} backend has no layout to "
                  f"migrate", file=sys.stderr)
            return 1
        migrated = migrate()
        print(f"migrated {migrated} legacy entries in {where}", file=out)
        return 0
    if args.cache_action == "evict":
        budget = resolve_budget(args.cache_budget)
        if budget is None:
            print("cache evict needs --cache-budget (or "
                  f"${CACHE_BUDGET_ENV})", file=sys.stderr)
            return 1
        report = cache.evict(budget, block=True)
        print(f"evicted {report['removed']} entries "
              f"({report['freed_bytes'] / 1024:.1f} KiB) from {where}; "
              f"now {report['size_bytes'] / 1024:.1f} KiB", file=out)
        return 0
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} entries from {where}", file=out)
        return 0
    print(f"cache directory: {where}", file=out)
    print(f"entries: {len(cache)}", file=out)
    print(f"size: {cache.size_bytes() / 1024:.1f} KiB", file=out)
    if args.stats:
        lifetime = cache.lifetime_stats()
        print(f"lifetime: {lifetime.hits} hit(s), "
              f"{lifetime.misses} miss(es), {lifetime.stores} store(s) "
              f"({lifetime.hit_rate * 100:.0f}% hit rate)", file=out)
        if lifetime.evictions:
            print(f"lifetime evictions: {lifetime.evictions}", file=out)
    return 0


def _cmd_trace(args: argparse.Namespace, out) -> int:
    """Digest a recorded trace file (``trace summary FILE``)."""
    from repro.harness.telemetry import summarize_trace

    print(summarize_trace(args.trace_file).render(), file=out)
    return 0


def _cmd_bench(args: argparse.Namespace, out) -> int:
    """Run the engine microbenchmark and append it to the trajectory."""
    trace_path = _resolve_trace(args)
    from repro.harness.telemetry import JsonlSink, Tracer, null_tracer
    if trace_path is not None:
        tracer = Tracer([JsonlSink(trace_path)])
    else:
        tracer = null_tracer()
    try:
        with tracer.span("bench", "phase", events=args.events,
                         repeats=args.repeats):
            entry = run_engine_bench(
                num_events=args.events,
                include_case=not args.no_case,
                config=SimConfig(),
                repeats=args.repeats,
                workload=args.workload,
                runtimes=args.runtimes,
                include_pool=not args.no_pool,
                include_cache=not args.no_cache_bench,
            )
            if trace_path is not None:
                tracer.event("bench.entry", **entry)
    finally:
        tracer.close()
    if args.format == "json":
        print(json.dumps(entry, indent=2, sort_keys=True), file=out)
    else:
        synthetic = entry["synthetic"]
        print(f"synthetic workload: {synthetic['num_events']} events, "
              f"{synthetic['events_per_sec']:,.0f} events/sec", file=out)
        case = entry.get("figure9_case")
        if case:
            print(f"figure9 case:       {case['case']} in "
                  f"{case['seconds']:.3f}s", file=out)
        pool = entry.get("pool")
        if pool:
            print(f"worker pool:        {pool['warmup_seconds']:.3f}s "
                  f"warm-up, {pool['dispatch_per_round_seconds'] * 1e3:.1f}ms"
                  f"/dispatch warm ({pool['workers']} workers)", file=out)
        cache_bench = entry.get("cache")
        if cache_bench:
            for backend in ("flat", "sharded"):
                numbers = cache_bench.get(backend)
                if not numbers:
                    continue
                print(f"cache ({backend + '):':<10} "
                      f"put p50={numbers['put_p50_seconds'] * 1e6:.0f}us "
                      f"p95={numbers['put_p95_seconds'] * 1e6:.0f}us, "
                      f"get p50={numbers['get_p50_seconds'] * 1e6:.0f}us "
                      f"p95={numbers['get_p95_seconds'] * 1e6:.0f}us",
                      file=out)
    if args.output is None or str(args.output) != "-":
        path = args.output if args.output is not None \
            else Path(DEFAULT_TRAJECTORY)
        trajectory = PerfTrajectory(path)
        trajectory.append(entry)
        # Status goes to stderr so `--format json` stdout stays parseable.
        print(f"recorded in {trajectory.path} "
              f"({len(trajectory.entries())} entries)", file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace, out) -> int:
    """Run a grid sweep (scaling curves by default) and render it."""
    from repro.eval.scaling import DEFAULT_CORE_COUNTS

    if args.experiment not in EXPERIMENT_SPECS:
        print(f"error: unknown experiment {args.experiment!r}"
              f"{registry.suggest(args.experiment, list(EXPERIMENT_SPECS))}",
              file=sys.stderr)
        return 2
    cores = args.cores if args.cores else list(DEFAULT_CORE_COUNTS)
    jobs = args.jobs if args.jobs is not None else _default_jobs()
    engine = _build_engine(args, jobs,
                           run_label=f"cli:sweep {args.experiment}")
    try:
        return _run_sweep_command(args, engine, cores, out)
    finally:
        engine.close()


def _run_sweep_command(args: argparse.Namespace, engine: ExperimentEngine,
                       cores: List[int], out) -> int:
    """The body of ``sweep``, with the engine's lifetime managed above."""
    cases = _selected_cases(args)
    if args.experiment == "scaling_curves":
        result = engine.run("scaling_curves", quick=args.quick,
                            scale=args.scale, core_counts=cores,
                            runtimes=args.runtimes, cases=cases,
                            scenario=_scenario_for(args, "scaling_curves"))
        if args.format == "json":
            print(json.dumps({"scaling_curves": encode(result)},
                             indent=2, sort_keys=True), file=out)
        else:
            print(f"\n=== scaling_curves: "
                  f"{EXPERIMENT_SPECS['scaling_curves'].title} ===",
                  file=out)
            print(render_report("scaling_curves", result), file=out)
    else:
        runtimes = _runtimes_for(args, args.experiment)
        grid = SweepGrid.cores((args.experiment,), cores)
        results = engine.run_grid(grid, quick=args.quick, scale=args.scale,
                                  cases=_cases_for(args, cases,
                                                   args.experiment),
                                  runtimes=runtimes,
                                  scenario=_scenario_for(args,
                                                         args.experiment))
        if args.format == "json":
            payload = {item.point.label: encode(item.result)
                       for item in results}
            print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        else:
            for item in results:
                print(f"\n=== {item.point.label} ===", file=out)
                print(render_report(args.experiment, item.result), file=out)
        if args.artifact_dir is not None:
            # run_grid has no single experiment id; archive per point.
            from repro.harness.artifacts import ArtifactStore
            store = ArtifactStore(args.artifact_dir)
            for item in results:
                store.save(item.point.label.replace("/", "_"),
                           item.result, cores=dict(item.point.overrides))
    _print_failures(engine)
    _print_cache_stats(engine, args.quiet)
    return 0


def _cmd_run(args: argparse.Namespace, out) -> int:
    """Run the selected experiments through one shared engine."""
    selected: List[str] = []
    for name in args.experiments:
        if name == "all":
            selected.extend(_RUN_ORDER)
        elif name in EXPERIMENT_SPECS:
            selected.append(name)
        else:
            print(f"error: unknown experiment {name!r}"
                  f"{registry.suggest(name, list(EXPERIMENT_SPECS) + ['all'])}",
                  file=sys.stderr)
            return 2
    engine = _build_engine(args, args.jobs,
                           run_label=f"cli:run {','.join(selected)}")
    try:
        cases = _selected_cases(args)
        json_payload = {}
        for experiment_id in selected:
            result = engine.run(
                experiment_id,
                quick=args.quick,
                scale=args.scale,
                num_workers=args.workers,
                num_tasks=args.num_tasks,
                cases=_cases_for(args, cases, experiment_id),
                runtimes=_runtimes_for(args, experiment_id),
                scenario=_scenario_for(args, experiment_id),
            )
            if args.format == "json":
                json_payload[experiment_id] = encode(result)
            else:
                title = EXPERIMENT_SPECS[experiment_id].title
                print(f"\n=== {experiment_id}: {title} ===", file=out)
                print(render_report(experiment_id, result,
                                    runtimes=args.runtimes), file=out)
        if args.format == "json":
            print(json.dumps(json_payload, indent=2, sort_keys=True),
                  file=out)
        _print_failures(engine)
        _print_cache_stats(engine, args.quiet)
        return 0
    finally:
        engine.close()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro`` and the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    try:
        _load_plugins(getattr(args, "plugins", None))
        if args.command == "list":
            return _cmd_list(sys.stdout)
        if args.command == "workloads":
            return _cmd_workloads(args, sys.stdout)
        if args.command == "runtimes":
            return _cmd_runtimes(args, sys.stdout)
        if args.command in _COMPONENT_REGISTRIES:
            return _cmd_components(args, sys.stdout)
        if args.command == "cache":
            return _cmd_cache(args, sys.stdout)
        if args.command == "trace":
            return _cmd_trace(args, sys.stdout)
        if args.command == "bench":
            return _cmd_bench(args, sys.stdout)
        if args.command == "lint":
            from repro.analysis.cli import run_lint
            return run_lint(args, sys.stdout, sys.stderr)
        if args.command == "sweep":
            return _cmd_sweep(args, sys.stdout)
        return _cmd_run(args, sys.stdout)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
