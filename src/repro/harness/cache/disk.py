"""The legacy flat on-disk backend (``dir:`` spec scheme).

Entries are JSON documents stored under
``<cache_dir>/<key[:2]>/<key>.json`` — the full 64-hex-digit key as the
file name, exactly the layout every pre-refactor cache directory holds.
:class:`ResultCache` keeps that layout (and the public name the rest of
the codebase historically imported) so existing directories and tests
keep working verbatim; new caches default to the sharded backend, which
also *reads* this layout through a fallback path and migrates it in
place (see :mod:`repro.harness.cache.sharded`).

Writes are atomic (write to a temporary sibling, then
:func:`os.replace`) so parallel workers and concurrent harness
invocations can share one cache directory; unreadable or corrupt entries
are treated as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterator, Optional

from repro.harness.cache.store import MISS, CacheStore, stats_file_of

__all__ = ["ResultCache", "FlatDiskStore", "STALE_TMP_SECONDS"]

#: Age (seconds) past which a ``*.tmp`` sibling counts as a stale dropping
#: of a killed writer rather than a concurrent in-flight write.  Real
#: writes live for milliseconds; an hour is conservatively beyond any of
#: them.
STALE_TMP_SECONDS = 3600.0


def read_document(path: Path) -> object:
    """The payload of the entry document at ``path``, or :data:`MISS`.

    Any unreadable, unparsable or schema-less document is a miss — the
    cache never fails a run over a corrupt entry.
    """
    try:
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
        return document["payload"]
    except (OSError, ValueError, KeyError, TypeError):
        return MISS


def write_document(path: Path, document: dict, tmp_prefix: str) -> Path:
    """Atomically persist ``document`` at ``path`` via tmp+rename.

    The temporary lives in the *same directory* as the target so the
    :func:`os.replace` is a same-filesystem rename — atomic even with
    concurrent writers racing on the same key (last writer wins a
    complete document; readers never observe a torn one).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent,
        prefix=tmp_prefix, suffix=".tmp", delete=False,
    )
    try:
        with handle:
            json.dump(document, handle)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def sweep_stale_tmp(root: Path) -> None:
    """Remove hour-old ``*.tmp`` droppings of killed writers under ``root``.

    Only temporaries older than :data:`STALE_TMP_SECONDS` are swept, so a
    *concurrent* writer's in-flight temporary is never pulled out from
    under its ``os.replace``.
    """
    if not root.is_dir():
        return
    cutoff = time.time() - STALE_TMP_SECONDS
    for stale in list(root.glob("*/*.tmp")):
        try:
            if stale.stat().st_mtime < cutoff:
                stale.unlink()
        except OSError:
            pass


class ResultCache(CacheStore):
    """Content-addressed JSON result cache in the legacy flat layout.

    ``tracer`` (optional) receives hit/miss/store counters and cumulative
    read/write latency; see :mod:`repro.harness.cache.store`.
    """

    def __init__(self, cache_dir: os.PathLike, tracer=None) -> None:
        super().__init__(tracer=tracer)
        self.root = Path(cache_dir)

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """Location of the entry addressed by ``key``."""
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    # CacheStore backend hooks
    # ------------------------------------------------------------------ #
    def _read(self, key: str) -> object:
        return read_document(self.path_for(key))

    def _write(self, key: str, document: dict) -> Path:
        return write_document(self.path_for(key), document,
                              tmp_prefix=f".{key[:8]}-")

    def contains(self, key: str) -> bool:
        """Whether an entry exists for ``key`` (does not touch the stats)."""
        return self.path_for(key).is_file()

    def delete(self, key: str) -> bool:
        """Drop the entry addressed by ``key``; True if one was removed."""
        try:
            self.path_for(key).unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------ #
    # Lifetime statistics
    # ------------------------------------------------------------------ #
    @property
    def stats_path(self) -> Path:
        """Location of the lifetime-counter document."""
        return stats_file_of(self.root)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[Path]:
        """Every entry file currently in the cache.

        The listing is a snapshot of a directory other processes may be
        mutating; consumers (:meth:`size_bytes`, :meth:`clear`) tolerate
        entries that vanish between listing and use.  Dotfile siblings
        (``.index`` sidecars a sharded store may have left behind) are
        never entries.
        """
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            if not path.name.startswith("."):
                yield path

    def size_bytes(self) -> int:
        """Total on-disk size of all entries.

        An entry deleted concurrently (another process clearing, or a
        ``demote_hit``) is simply skipped rather than raising from
        ``stat()``.
        """
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also sweeps stale ``*.tmp`` siblings — the droppings of a writer
        killed between ``NamedTemporaryFile`` and ``os.replace`` — which
        would otherwise accumulate forever (they are never addressed by
        any key); temporaries do not count toward the return value.
        """
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        sweep_stale_tmp(self.root)
        return removed


#: Spec-scheme-flavoured alias: ``dir:PATH`` opens a FlatDiskStore.
FlatDiskStore = ResultCache
