"""The sharded on-disk backend (``sharded:`` spec scheme, and the default).

Entries are content-addressed into a two-level fan-out:
``<cache_dir>/<key[:2]>/<key[2:]>.json`` — the first two hex digits name
the shard directory, the remaining sixty-two the file.  The legacy flat
layout (``<key[:2]>/<key>.json``, the full key as the file name) shares
the same shard directories, so this store transparently *reads* legacy
entries through a fallback path and :meth:`migrate` renames them in
place, idempotently — a pre-refactor cache directory warm-serves a rerun
with zero misses before and after migration.

Concurrency model (the crash-safety story):

* ``put``/``get`` never lock.  Writes are atomic same-shard tmp+rename;
  readers observe either the old complete document or the new one, never
  a torn read, for any number of concurrent processes.
* Each shard carries an ``.index`` sidecar mapping key → ``[size,
  atime]``, maintained opportunistically (lock-free read-modify-replace,
  failures swallowed).  The index is *advisory*: shard files are the
  ground truth and :meth:`reconcile` rebuilds any drifted sidecar, so a
  lost index update can at worst age an entry's eviction priority.
* Only :meth:`evict` takes a lock (``.evict.lock``), so two processes
  cannot double-delete each other's survivors mid-measure.  Put-time
  enforcement acquires it non-blocking — a put never stalls behind
  another process's maintenance cycle.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.harness.cache.disk import (
    read_document,
    sweep_stale_tmp,
    write_document,
)
from repro.harness.cache.locks import FileLock
from repro.harness.cache.policy import EvictionPolicy, NoEviction
from repro.harness.cache.store import MISS, CacheStore, stats_file_of

__all__ = ["ShardedDiskStore", "INDEX_FILE"]

#: Per-shard index sidecar.  Deliberately *not* ``.json``-suffixed:
#: ``pathlib`` globs match dotfiles, so a ``.index.json`` would be
#: miscounted as an entry by every ``*/*.json`` listing.
INDEX_FILE = ".index"

#: Name of the eviction lock file in the cache root.
EVICT_LOCK = ".evict.lock"

_KEY_HEX_LEN = 64


class ShardedDiskStore(CacheStore):
    """Content-addressed JSON result cache with two-level shard fan-out.

    ``policy`` (an :class:`~repro.harness.cache.policy.EvictionPolicy`)
    is consulted after every put; the default never evicts.
    """

    def __init__(self, cache_dir: os.PathLike, tracer=None,
                 policy: Optional[EvictionPolicy] = None) -> None:
        super().__init__(tracer=tracer)
        self.root = Path(cache_dir)
        self.policy = policy if policy is not None else NoEviction()
        # Running size guess so put-time enforcement skips the full scan
        # while the store is clearly under budget; None until first
        # needed, exact numbers re-measured inside evict().
        self._size_estimate: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """Sharded location of the entry addressed by ``key``."""
        return self.root / key[:2] / f"{key[2:]}.json"

    def legacy_path_for(self, key: str) -> Path:
        """Flat-layout location of the entry addressed by ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def key_for(self, path: Path) -> str:
        """The cache key an entry file (either layout) is addressed by."""
        stem = path.stem
        if len(stem) >= _KEY_HEX_LEN:
            return stem  # legacy flat name carries the full key
        return path.parent.name + stem

    # ------------------------------------------------------------------ #
    # CacheStore backend hooks
    # ------------------------------------------------------------------ #
    def _read(self, key: str) -> object:
        path = self.path_for(key)
        payload = read_document(path)
        if payload is MISS:
            # Legacy flat entry written before the layout change (or by a
            # dir: store sharing this directory).
            path = self.legacy_path_for(key)
            payload = read_document(path)
        if payload is not MISS:
            self._touch(path)
        return payload

    def _write(self, key: str, document: dict) -> Path:
        path = write_document(self.path_for(key), document,
                              tmp_prefix=f".{key[:8]}-")
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        self._index_update(key, size=size, atime=time.time())
        if self._size_estimate is not None:
            self._size_estimate += size
        self.policy.enforce(self)
        return path

    def contains(self, key: str) -> bool:
        """Whether an entry exists for ``key`` in either layout."""
        return (self.path_for(key).is_file()
                or self.legacy_path_for(key).is_file())

    def delete(self, key: str) -> bool:
        """Drop ``key``'s entry (both layouts) and its index row."""
        removed = False
        for path in (self.path_for(key), self.legacy_path_for(key)):
            try:
                path.unlink()
                removed = True
            except OSError:
                pass
        # Always drop the index row, even when no file was present: a
        # demoted or externally-deleted entry must not linger in the LRU
        # index where eviction would re-count it.
        self._index_update(key, remove=True)
        self._size_estimate = None
        return removed

    # ------------------------------------------------------------------ #
    # Per-shard index sidecars (advisory, lock-free)
    # ------------------------------------------------------------------ #
    def _index_path(self, key: str) -> Path:
        return self.root / key[:2] / INDEX_FILE

    @staticmethod
    def _read_index(path: Path) -> Dict[str, list]:
        try:
            index = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(index, dict):
                return {}
            return {key: row for key, row in index.items()
                    if isinstance(row, list) and len(row) == 2}
        except (OSError, ValueError):
            return {}

    @staticmethod
    def _write_index(path: Path, index: Dict[str, list]) -> None:
        """Atomically replace an index sidecar; failures are swallowed
        (the index is advisory — :meth:`reconcile` rebuilds it)."""
        try:
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=path.parent,
                prefix=".index-", suffix=".tmp", delete=False,
            )
            try:
                with handle:
                    json.dump(index, handle, sort_keys=True)
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    def _index_update(self, key: str, size: Optional[int] = None,
                      atime: Optional[float] = None,
                      remove: bool = False) -> None:
        path = self._index_path(key)
        if remove and not path.is_file():
            return
        index = self._read_index(path)
        if remove:
            if index.pop(key, None) is None:
                return
        else:
            row = index.get(key, [0, 0.0])
            index[key] = [size if size is not None else row[0],
                          atime if atime is not None else row[1]]
        self._write_index(path, index)

    @staticmethod
    def _touch(path: Path) -> None:
        """Record a hit as the entry file's new mtime.

        A single ``utime`` syscall instead of an index rewrite, so the
        hot read path stays within noise of the flat backend; eviction
        orders by the *newer* of file mtime and index atime, so hits
        refresh an entry's LRU priority without touching the sidecar.
        """
        try:
            os.utime(path, None)
        except OSError:
            pass

    def _estimated_size(self) -> int:
        """Cheap running size guess used by put-time budget checks."""
        if self._size_estimate is None:
            self._size_estimate = self.size_bytes()
        return self._size_estimate

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[Path]:
        """Every entry file (either layout) currently in the cache."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            if not path.name.startswith("."):
                yield path

    def size_bytes(self) -> int:
        """Total on-disk size of all entries (concurrent deletions skipped)."""
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every entry (and index sidecars, and stale temporaries);
        returns the number of entries removed."""
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            for sidecar in list(self.root.glob(f"*/{INDEX_FILE}")):
                try:
                    sidecar.unlink()
                except OSError:
                    pass
        sweep_stale_tmp(self.root)
        self._size_estimate = 0
        return removed

    def reconcile(self) -> Dict[str, Tuple[Path, int, float]]:
        """Rebuild drifted index sidecars from the shard files.

        Files are the ground truth: rows without a file are dropped, files
        without a row are adopted (last access approximated by mtime), and
        recorded sizes are corrected.  Returns the resulting catalogue,
        key → ``(path, size_bytes, atime)``.
        """
        catalogue: Dict[str, Tuple[Path, int, float]] = {}
        shards: Dict[Path, Dict[str, list]] = {}
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            key = self.key_for(path)
            shard_index = shards.setdefault(
                path.parent, self._read_index(path.parent / INDEX_FILE))
            row = shard_index.get(key)
            # Last access is the newer of the file's mtime (hits touch
            # it) and the recorded index atime (writes record it).
            atime = stat.st_mtime
            if row and row[1]:
                atime = max(atime, float(row[1]))
            catalogue[key] = (path, stat.st_size, atime)
        for shard_dir, index in shards.items():
            rebuilt = {key: [size, atime]
                       for key, (path, size, atime) in catalogue.items()
                       if path.parent == shard_dir}
            if rebuilt != index:
                self._write_index(shard_dir / INDEX_FILE, rebuilt)
        self._size_estimate = sum(size for _, size, _ in catalogue.values())
        return catalogue

    def evict(self, budget: int, block: bool = True):
        """Shrink the store to at most ``budget`` bytes, LRU-first.

        Runs under the eviction lock so two processes cannot double-run a
        maintenance cycle; with ``block=False`` (the put-time path) a held
        lock means another process is already evicting, and skipping is
        correct.  Returns a report dict (``removed`` / ``freed_bytes`` /
        ``size_bytes`` / ``skipped``).
        """
        lock = FileLock(self.root / EVICT_LOCK,
                        timeout=10.0 if block else 0.0)
        if not lock.acquire():
            return {"removed": 0, "freed_bytes": 0,
                    "size_bytes": self._estimated_size(), "skipped": True}
        try:
            catalogue = self.reconcile()
            total = sum(size for _, size, _ in catalogue.values())
            removed = 0
            freed = 0
            # Oldest access first; the newest entry is evicted only when
            # it alone cannot fit the budget.
            victims = sorted(catalogue.items(), key=lambda item: item[1][2])
            for key, (path, size, _) in victims:
                if total <= budget:
                    break
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
                except OSError:
                    continue
                self._index_update(key, remove=True)
                total -= size
                freed += size
                removed += 1
            self._size_estimate = total
        finally:
            lock.release()
        if removed:
            self.stats.evictions += removed
            if self.tracer is not None:
                self.tracer.count("cache.evictions", removed)
                self.tracer.count("cache.evicted_bytes", freed)
        return {"removed": removed, "freed_bytes": freed,
                "size_bytes": total, "skipped": False}

    def migrate(self) -> int:
        """Rename legacy flat entries into the sharded layout, in place.

        Idempotent: already-sharded entries are untouched and a second
        invocation finds nothing to do.  Returns the number of entries
        migrated.
        """
        migrated = 0
        for path in list(self.entries()):
            stem = path.stem
            if len(stem) < _KEY_HEX_LEN:
                continue  # already sharded
            key = stem
            target = self.path_for(key)
            try:
                stat = path.stat()
                os.replace(path, target)
            except OSError:
                continue
            self._index_update(key, size=stat.st_size, atime=stat.st_mtime)
            migrated += 1
        return migrated

    # ------------------------------------------------------------------ #
    # Lifetime statistics
    # ------------------------------------------------------------------ #
    @property
    def stats_path(self) -> Path:
        """Location of the lifetime-counter document."""
        return stats_file_of(self.root)
