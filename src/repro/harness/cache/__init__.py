"""Layered content-addressed result cache.

One interface, several backends, one composition point:

* :class:`~repro.harness.cache.store.CacheStore` — the abstract contract
  (``get``/``put``/``contains``/``delete``/``entries``/``stats``) the
  engine, sweep runner, memoisation and CLI consume exclusively.
* :class:`~repro.harness.cache.sharded.ShardedDiskStore` — the default
  on-disk backend: two-level shard fan-out, lock-free atomic writes,
  advisory per-shard ``.index`` sidecars, LRU eviction under a budget,
  and a legacy-layout read fallback plus in-place :meth:`migrate`.
* :class:`~repro.harness.cache.disk.ResultCache` — the legacy flat
  backend (``dir:`` scheme), kept byte-for-byte layout compatible.
* :class:`~repro.harness.cache.memory.MemoryStore` and
  :class:`~repro.harness.cache.tiered.TieredStore` — the in-process and
  fleet/CI composition tiers.
* :func:`~repro.harness.cache.spec.open_store` — spec-string → store
  (``mem:``, ``dir:``, ``sharded:``, ``tiered:LOCAL|SHARED``, bare
  path), with ``--cache-budget`` / ``$REPRO_CACHE_BUDGET`` resolution.

Cache *keys* are unchanged by all of this —
:func:`repro.harness.hashing.stable_hash` digests pin byte-identity, and
``figure9_fingerprints.json`` gates it in CI.  See ``docs/caching.md``.
"""

from repro.harness.cache.disk import FlatDiskStore, ResultCache
from repro.harness.cache.locks import FileLock
from repro.harness.cache.memory import MemoryStore
from repro.harness.cache.policy import (
    EvictionPolicy,
    LruEviction,
    NoEviction,
    parse_budget,
)
from repro.harness.cache.sharded import ShardedDiskStore
from repro.harness.cache.spec import (
    CACHE_BUDGET_ENV,
    open_store,
    resolve_budget,
)
from repro.harness.cache.stats import CacheStats
from repro.harness.cache.store import CacheStore
from repro.harness.cache.tiered import TieredStore

__all__ = [
    "CACHE_BUDGET_ENV",
    "CacheStats",
    "CacheStore",
    "EvictionPolicy",
    "FileLock",
    "FlatDiskStore",
    "LruEviction",
    "MemoryStore",
    "NoEviction",
    "ResultCache",
    "ShardedDiskStore",
    "TieredStore",
    "open_store",
    "parse_budget",
    "resolve_budget",
]
