"""The :class:`CacheStore` contract every cache backend implements.

Consumers — :class:`~repro.harness.engine.ExperimentEngine`, the sweep
runner's memoisation path, the CLI — program against this interface only;
which backend actually holds the bytes (flat directory, sharded store,
memory, a tiered composition) is decided once, by
:func:`~repro.harness.cache.spec.open_store`.

The base class owns everything backend-independent: the per-instance
:class:`~repro.harness.cache.stats.CacheStats` counters, tracer
instrumentation (``cache.hits`` / ``cache.misses`` / ``cache.stores`` /
``cache.evictions`` counters plus cumulative ``cache.read_seconds`` /
``cache.write_seconds`` latencies), hit demotion, and the locked
lifetime-stats merge.  Backends implement the raw document IO
(:meth:`_read` / :meth:`_write`) plus enumeration and deletion.
"""

from __future__ import annotations

import abc
import time
from pathlib import Path
from typing import Iterator, Optional

from repro.common.errors import EvaluationError
from repro.harness.cache.stats import (
    STATS_FILE,
    CacheStats,
    merge_lifetime_stats,
    read_lifetime_stats,
)

__all__ = ["CacheStore", "MISS"]

#: Sentinel a backend's :meth:`CacheStore._read` returns on a miss, so a
#: legitimately stored ``None`` payload is distinguishable internally.
MISS = object()


class CacheStore(abc.ABC):
    """Abstract content-addressed result store.

    Keys are :func:`~repro.harness.hashing.stable_hash` digests of
    everything that can affect a result, so there is no invalidation
    protocol: changing any input simply addresses a different entry.
    """

    def __init__(self, tracer=None) -> None:
        self.stats = CacheStats()
        self.tracer = tracer
        # Counters already folded into the lifetime document, so repeated
        # persist_stats() calls write each lookup exactly once.
        self._persisted = CacheStats()
        # Lock-wait budget of the lifetime-stats merge; overridable for
        # tests that exercise the cannot-lock path.
        self._stats_lock_timeout = 5.0

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _read(self, key: str) -> object:
        """The payload stored under ``key``, or :data:`MISS`."""

    @abc.abstractmethod
    def _write(self, key: str, document: dict) -> object:
        """Persist ``document`` under ``key``; returns its location."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        """Whether an entry exists for ``key`` (does not touch the stats)."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Drop the entry addressed by ``key``; True if one was removed."""

    @abc.abstractmethod
    def entries(self) -> Iterator:
        """Every entry currently in the store (paths for disk backends).

        The listing is a snapshot of state other processes may be
        mutating; consumers (:meth:`size_bytes`, :meth:`clear`) tolerate
        entries that vanish between listing and use.
        """

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Total stored size of all entries."""

    @abc.abstractmethod
    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""

    # ------------------------------------------------------------------ #
    # Lookup / store (instrumented template methods)
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[object]:
        """The JSON payload stored under ``key``, or None on a miss."""
        started = time.perf_counter() if self.tracer is not None else 0.0
        payload = self._read(key)
        if payload is MISS:
            self.stats.misses += 1
            if self.tracer is not None:
                self.tracer.count("cache.misses")
                self.tracer.count("cache.read_seconds",
                                  time.perf_counter() - started)
            return None
        self.stats.hits += 1
        if self.tracer is not None:
            self.tracer.count("cache.hits")
            self.tracer.count("cache.read_seconds",
                              time.perf_counter() - started)
        return payload

    def peek(self, key: str) -> Optional[object]:
        """Like :meth:`get` but without touching any counter.

        The read-through path of a :class:`~repro.harness.cache.tiered.
        TieredStore` uses this on its tiers so one logical lookup counts
        exactly once, at the composed store.
        """
        payload = self._read(key)
        return None if payload is MISS else payload

    def put(self, key: str, payload: object, **metadata: object) -> object:
        """Atomically persist ``payload`` (JSON-serialisable) under ``key``."""
        started = time.perf_counter() if self.tracer is not None else 0.0
        document = {"key": key, "metadata": metadata, "payload": payload}
        location = self._write(key, document)
        self.stats.stores += 1
        if self.tracer is not None:
            self.tracer.count("cache.stores")
            self.tracer.count("cache.write_seconds",
                              time.perf_counter() - started)
        return location

    def demote_hit(self, key: str) -> None:
        """Re-classify the last hit on ``key`` as a miss and drop the entry.

        Callers use this when an entry parsed as JSON but failed to decode
        into the expected result type — from the caller's point of view
        that is a corrupt entry, i.e. a miss, and keeping it around would
        make every future run trip over it again.  Backends with an
        eviction index drop the entry's index row too (via
        :meth:`delete`), so a demoted entry can never be "evicted" again
        or resurrect a stale index row.
        """
        self.stats.hits = max(self.stats.hits - 1, 0)
        self.stats.misses += 1
        try:
            self.delete(key)
        except OSError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    # ------------------------------------------------------------------ #
    # Eviction (optional per backend)
    # ------------------------------------------------------------------ #
    def evict(self, budget: int, block: bool = True):
        """Shrink the store under ``budget`` bytes (LRU-capable backends)."""
        raise EvaluationError(
            f"the {type(self).__name__} backend has no eviction support"
        )

    # ------------------------------------------------------------------ #
    # Lifetime statistics
    # ------------------------------------------------------------------ #
    @property
    def stats_path(self) -> Optional[Path]:
        """Location of the lifetime-counter document (None: not persisted)."""
        return None

    def lifetime_stats(self) -> CacheStats:
        """Hit/miss/store/evict totals accumulated across persisted runs.

        Reads the backend's ``stats.json``; a missing or corrupt document
        (or a backend that persists nothing) reads as zeros — lifetime
        counters are a dashboard, never a gate.
        """
        path = self.stats_path
        if path is None:
            return CacheStats()
        return read_lifetime_stats(path)

    def persist_stats(self) -> Optional[Path]:
        """Fold this session's counters into the lifetime document.

        Only the delta since the last successful persist is written, so
        calling this repeatedly (the engine persists on ``close``, which
        is idempotent) counts every lookup exactly once.  The merge runs
        under the stats lock so two engines closing concurrently add
        their deltas instead of overwriting each other; when the lock (or
        the write) fails, the delta is *kept* — not dropped — and simply
        retried by the next persist.  Returns the document path, or None
        when there was nothing to write or the merge could not land.
        """
        path = self.stats_path
        if path is None:
            return None
        delta = CacheStats(
            hits=self.stats.hits - self._persisted.hits,
            misses=self.stats.misses - self._persisted.misses,
            stores=self.stats.stores - self._persisted.stores,
            evictions=self.stats.evictions - self._persisted.evictions,
        )
        if not delta:
            return None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        if not merge_lifetime_stats(path, delta,
                                    timeout=self._stats_lock_timeout):
            return None
        self._persisted = CacheStats(hits=self.stats.hits,
                                     misses=self.stats.misses,
                                     stores=self.stats.stores,
                                     evictions=self.stats.evictions)
        return path


def stats_file_of(root: Path) -> Path:
    """The lifetime-stats document path of a disk store rooted at ``root``."""
    return root / STATS_FILE
