"""Cache counters and the lifetime ``stats.json`` document.

:class:`CacheStats` is the in-memory hit/miss/store/evict counter block of
one store instance.  Across instances, a disk-backed store folds its
session counters into a ``stats.json`` document in its root directory —
the *lifetime* totals ``repro cache --stats`` reports.

The lifetime document used to be a last-writer-wins read-modify-write:
two engines closing concurrently could overwrite each other's delta.
:func:`merge_lifetime_stats` fixes that lost-update race by serialising
the read-modify-rename cycle under a :class:`~repro.harness.cache.locks.
FileLock` sibling (``.stats.lock``); a caller that cannot take the lock
keeps its delta for the next attempt instead of dropping it.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.harness.cache.locks import FileLock

__all__ = ["CacheStats", "STATS_FILE", "read_lifetime_stats",
           "merge_lifetime_stats"]

#: Name of the lifetime-counter document inside a cache directory
#: (outside the ``<shard>/<name>.json`` entry layout, so it is never
#: mistaken for an entry).
STATS_FILE = "stats.json"


@dataclass
class CacheStats:
    """Hit/miss/store/evict counters of one cache store instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __bool__(self) -> bool:
        """Whether any counter is non-zero (a delta worth persisting)."""
        return bool(self.hits or self.misses or self.stores
                    or self.evictions)


def read_lifetime_stats(path: Path) -> CacheStats:
    """The totals recorded in the lifetime document at ``path``.

    A missing or corrupt document reads as zeros — lifetime counters are a
    dashboard, never a gate.
    """
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
        return CacheStats(
            hits=max(0, int(document.get("hits", 0))),
            misses=max(0, int(document.get("misses", 0))),
            stores=max(0, int(document.get("stores", 0))),
            evictions=max(0, int(document.get("evictions", 0))),
        )
    except (OSError, ValueError, TypeError, AttributeError):
        return CacheStats()


def merge_lifetime_stats(path: Path, delta: CacheStats,
                         timeout: float = 5.0) -> bool:
    """Atomically fold ``delta`` into the lifetime document at ``path``.

    The read-modify-rename cycle runs under ``.stats.lock`` so concurrent
    writers merge instead of overwriting each other.  Returns False —
    without touching the document — when the lock cannot be taken or the
    write fails, so the caller can retry the same delta later.
    """
    lock = FileLock(path.parent / ".stats.lock", timeout=timeout)
    if not lock.acquire():
        return False
    try:
        lifetime = read_lifetime_stats(path)
        document = {
            "hits": max(0, lifetime.hits + delta.hits),
            "misses": max(0, lifetime.misses + delta.misses),
            "stores": max(0, lifetime.stores + delta.stores),
            "evictions": max(0, lifetime.evictions + delta.evictions),
        }
        try:
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=path.parent,
                prefix=".stats-", suffix=".tmp", delete=False,
            )
            try:
                with handle:
                    json.dump(document, handle, sort_keys=True)
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True
    finally:
        lock.release()
