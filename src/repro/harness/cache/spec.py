"""URL-style cache-spec parsing: one string picks the backend stack.

``open_store`` is the single composition point every consumer goes
through (engine, CLI, Study API); nothing outside this package names a
concrete backend class.

Spec grammar (anything without a recognised scheme is a directory path):

========================  ===================================================
``mem:``                  in-process :class:`MemoryStore` (tests, dry runs)
``dir:PATH``              legacy flat layout (:class:`ResultCache`)
``sharded:PATH``          sharded layout (:class:`ShardedDiskStore`)
``tiered:LOCAL|SHARED``   read-through/write-back :class:`TieredStore`;
                          each side is itself a spec, ``SHARED`` is
                          never written
``PATH``                  default: sharded store at ``PATH`` (reads any
                          pre-refactor flat entries through the legacy
                          fallback, so existing caches stay warm)
========================  ===================================================

A size budget (``--cache-budget`` / ``$REPRO_CACHE_BUDGET``) attaches an
LRU eviction policy to the opened store; the legacy ``dir:`` backend has
no eviction index, so combining it with a budget is an explicit error
rather than a silently unbounded cache.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.common.errors import EvaluationError
from repro.harness.cache.disk import ResultCache
from repro.harness.cache.memory import MemoryStore
from repro.harness.cache.policy import LruEviction, NoEviction, parse_budget
from repro.harness.cache.sharded import ShardedDiskStore
from repro.harness.cache.store import CacheStore
from repro.harness.cache.tiered import TieredStore

__all__ = ["CACHE_BUDGET_ENV", "open_store", "resolve_budget"]

#: Environment fallback for ``--cache-budget``.
CACHE_BUDGET_ENV = "REPRO_CACHE_BUDGET"

_SCHEMES = ("mem", "dir", "sharded", "tiered")


def _split_scheme(spec: str):
    head, sep, rest = spec.partition(":")
    if sep and head in _SCHEMES:
        return head, rest
    return None, spec


def resolve_budget(budget: Union[int, str, None]) -> Optional[int]:
    """The effective byte budget: explicit value, else the environment."""
    if budget is None:
        budget = os.environ.get(CACHE_BUDGET_ENV)
    return parse_budget(budget)


def open_store(spec, tracer=None,
               budget: Union[int, str, None] = None) -> CacheStore:
    """Open the cache store a spec describes.

    ``spec`` is a spec string, a plain directory path (string or
    PathLike), or an already-constructed :class:`CacheStore` (passed
    through, adopting ``tracer`` if it has none — the injection seam
    tests use).  ``budget`` accepts an int, a ``512M``-style string, or
    None to consult ``$REPRO_CACHE_BUDGET``.
    """
    if isinstance(spec, CacheStore):
        if tracer is not None and spec.tracer is None:
            spec.tracer = tracer
        return spec

    budget_bytes = resolve_budget(budget)
    policy = (LruEviction(budget_bytes) if budget_bytes is not None
              else NoEviction())

    if isinstance(spec, os.PathLike):
        return ShardedDiskStore(spec, tracer=tracer, policy=policy)
    if not isinstance(spec, str):
        raise EvaluationError(f"invalid cache spec: {spec!r}")

    scheme, rest = _split_scheme(spec)
    if scheme is None:
        if not rest:
            raise EvaluationError("empty cache spec")
        return ShardedDiskStore(rest, tracer=tracer, policy=policy)
    if scheme == "mem":
        if rest:
            raise EvaluationError(
                f"mem: takes no path, got {spec!r}")
        return MemoryStore(tracer=tracer, policy=policy)
    if scheme == "dir":
        if not rest:
            raise EvaluationError(f"dir: needs a path, got {spec!r}")
        if budget_bytes is not None:
            raise EvaluationError(
                "the legacy dir: backend has no eviction support; "
                "use sharded: (or a bare path) with --cache-budget"
            )
        return ResultCache(rest, tracer=tracer)
    if scheme == "sharded":
        if not rest:
            raise EvaluationError(f"sharded: needs a path, got {spec!r}")
        return ShardedDiskStore(rest, tracer=tracer, policy=policy)
    # tiered:LOCAL|SHARED — the budget governs the writable local tier.
    local_spec, sep, shared_spec = rest.partition("|")
    if not sep or not local_spec or not shared_spec:
        raise EvaluationError(
            f"tiered: needs LOCAL|SHARED sub-specs, got {spec!r}")
    local = open_store(local_spec, tracer=None, budget=budget_bytes or "none")
    shared = open_store(shared_spec, tracer=None, budget="none")
    return TieredStore(local, shared, tracer=tracer)
