"""Read-through/write-back composition of two stores (``tiered:`` scheme).

The fleet/CI warm-cache story: a *local* writable tier backed by a
*shared* tier treated as read-only.  Lookups try local first, then
shared; a shared hit is written back into the local tier so the next
lookup is local.  Writes, deletion, enumeration and maintenance address
the local tier only — the shared directory (an NFS export, a CI cache
volume, a teammate's directory) is never mutated.

Counter discipline: the composed store owns the stats.  Tier lookups go
through the sub-stores' uncounted ``peek``/``_read`` path, so one logical
lookup counts exactly once, at this store — regardless of which tier
served it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional

from repro.harness.cache.store import MISS, CacheStore

__all__ = ["TieredStore"]


class TieredStore(CacheStore):
    """A writable ``local`` store read-through-backed by a ``shared`` one."""

    def __init__(self, local: CacheStore, shared: CacheStore,
                 tracer=None) -> None:
        super().__init__(tracer=tracer)
        self.local = local
        self.shared = shared

    # ------------------------------------------------------------------ #
    # CacheStore backend hooks
    # ------------------------------------------------------------------ #
    def _read(self, key: str) -> object:
        payload = self.local._read(key)
        if payload is not MISS:
            return payload
        payload = self.shared._read(key)
        if payload is MISS:
            return MISS
        # Write back so the next lookup is local.  Best-effort: a failed
        # write-back still serves the shared hit.
        try:
            self.local._write(key, {"key": key, "metadata":
                                    {"tier": "shared"}, "payload": payload})
        except OSError:
            pass
        return payload

    def _write(self, key: str, document: dict) -> object:
        return self.local._write(key, document)

    def contains(self, key: str) -> bool:
        return self.local.contains(key) or self.shared.contains(key)

    def delete(self, key: str) -> bool:
        """Drop the local copy; the shared tier is read-only by contract."""
        return self.local.delete(key)

    def entries(self) -> Iterator:
        return self.local.entries()

    def size_bytes(self) -> int:
        return self.local.size_bytes()

    def clear(self) -> int:
        return self.local.clear()

    def evict(self, budget: int, block: bool = True):
        return self.local.evict(budget, block=block)

    @property
    def stats_path(self) -> Optional[Path]:
        return self.local.stats_path
