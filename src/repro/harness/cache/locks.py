"""Advisory file locks for cache *maintenance* operations.

The cache's hot path never locks: entry reads are plain opens and entry
writes are atomic same-directory tmp+rename, so any number of concurrent
processes can ``get``/``put`` safely without coordination.  Locks exist
only for the rare maintenance cycles that must observe a consistent
whole-store view — eviction and the lifetime-stats merge — where two
concurrent runs would otherwise double-delete or lose each other's delta.

:class:`FileLock` is the classic ``O_CREAT|O_EXCL`` lock file: creation
is atomic on every POSIX filesystem (including NFS for local-ish use),
the holder's pid is recorded for debugging, and a lock whose file is
older than ``stale_seconds`` is treated as the dropping of a killed
process and broken.  ``acquire`` polls up to ``timeout`` seconds and
returns False rather than raising — callers decide whether skipping the
maintenance cycle is acceptable (put-time eviction: yes; ``repro cache
evict``: no).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

__all__ = ["FileLock"]

#: Age past which a lock file counts as the dropping of a killed holder.
#: Maintenance cycles run for milliseconds-to-seconds; a minute is
#: conservatively beyond any of them.
_DEFAULT_STALE_SECONDS = 60.0


class FileLock:
    """An ``O_CREAT|O_EXCL`` lock file with stale-holder breaking."""

    def __init__(self, path, timeout: float = 5.0,
                 stale_seconds: float = _DEFAULT_STALE_SECONDS,
                 poll: float = 0.01) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.stale_seconds = stale_seconds
        self.poll = poll
        self._held = False

    def acquire(self) -> bool:
        """Take the lock, polling up to ``timeout`` seconds.

        Returns False on timeout (never raises): the caller decides
        whether the guarded maintenance cycle can be skipped or retried.
        """
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._break_stale()
            except OSError:
                # Root directory missing (fresh cache): create and retry.
                try:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                except OSError:
                    return False
            else:
                try:
                    os.write(fd, str(os.getpid()).encode("ascii"))
                finally:
                    os.close(fd)
                self._held = True
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(self.poll)

    def _break_stale(self) -> None:
        """Remove the lock file if its holder died long ago.

        Two breakers racing can in principle both win the re-create; the
        stale threshold is far beyond any live maintenance cycle, so this
        trades a theoretical double-run for never deadlocking on the
        droppings of a killed process.
        """
        try:
            if time.time() - self.path.stat().st_mtime > self.stale_seconds:
                self.path.unlink()
        except OSError:
            pass

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()
