"""Eviction policies and the ``--cache-budget`` size grammar.

A policy decides *when* a store must shrink; the store itself decides
*what* to remove (LRU by last access, see
:meth:`~repro.harness.cache.sharded.ShardedDiskStore.evict`).  The
default :class:`NoEviction` preserves the historical behaviour — the
cache grows without bound — so nothing changes for existing users until
they opt in with ``--cache-budget`` / ``$REPRO_CACHE_BUDGET``.

Put-time enforcement is deliberately best-effort: it is triggered by the
writer's cheap in-memory size estimate and takes the eviction lock
non-blocking, so a put never stalls behind another process's maintenance
cycle.  ``repro cache evict`` is the strict, blocking counterpart.
"""

from __future__ import annotations

import re
from typing import Optional, Union

from repro.common.errors import EvaluationError

__all__ = ["EvictionPolicy", "NoEviction", "LruEviction", "parse_budget"]

_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3, "t": 1024 ** 4}


def parse_budget(value: Union[int, str, None]) -> Optional[int]:
    """A byte budget from an int or a ``512M``-style string.

    Accepts plain byte counts and binary ``K``/``M``/``G``/``T`` suffixes
    (case-insensitive, optional trailing ``B`` / ``iB``); ``None``, empty
    and ``"none"`` mean unbounded.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise EvaluationError(f"invalid cache budget: {value!r}")
    if isinstance(value, int):
        budget = value
    else:
        text = str(value).strip().lower()
        if text in ("", "none"):
            return None
        match = re.fullmatch(r"(\d+(?:\.\d+)?)\s*([kmgt])?i?b?", text)
        if match is None:
            raise EvaluationError(
                f"invalid cache budget {value!r} "
                "(expected bytes or a K/M/G/T-suffixed size, e.g. 512M)"
            )
        scale = _SUFFIXES.get(match.group(2) or "", 1)
        budget = int(float(match.group(1)) * scale)
    if budget <= 0:
        raise EvaluationError(
            f"cache budget must be positive, got {value!r}"
        )
    return budget


class EvictionPolicy:
    """Base policy: never evicts (the historical unbounded behaviour)."""

    name = "none"
    budget_bytes: Optional[int] = None

    def enforce(self, store) -> None:
        """Give the policy a chance to shrink ``store`` after a put."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoEviction(EvictionPolicy):
    """Explicit alias of the default unbounded policy."""


class LruEviction(EvictionPolicy):
    """Keep the store under ``budget_bytes``, removing least-recently-used
    entries first (last access approximated by hit/store touch times)."""

    name = "lru"

    def __init__(self, budget_bytes: int) -> None:
        budget = parse_budget(budget_bytes)
        if budget is None:
            raise EvaluationError("LruEviction requires a byte budget")
        self.budget_bytes = budget

    def enforce(self, store) -> None:
        # The estimate check keeps the common case (store under budget) at
        # zero extra IO; evict() re-measures exactly under its lock.
        estimate = getattr(store, "_estimated_size", None)
        if estimate is not None and estimate() <= self.budget_bytes:
            return
        store.evict(self.budget_bytes, block=False)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(budget_bytes={self.budget_bytes})"
