"""The in-memory backend (``mem:`` spec scheme).

A dict with the full :class:`~repro.harness.cache.store.CacheStore`
surface, including deterministic LRU eviction driven by a logical access
clock — no wall-clock, no disk, no flakiness — which is what the
eviction-order unit tests and the local tier of in-process tiered setups
want.  Nothing survives the process; ``stats_path`` is None so
``persist_stats`` is a no-op.
"""

from __future__ import annotations

import itertools
import json
from typing import Dict, Iterator, Tuple

from repro.harness.cache.policy import EvictionPolicy, NoEviction
from repro.harness.cache.store import MISS, CacheStore

__all__ = ["MemoryStore"]


class MemoryStore(CacheStore):
    """Dict-backed cache store with logical-clock LRU eviction."""

    def __init__(self, tracer=None, policy=None) -> None:
        super().__init__(tracer=tracer)
        self.policy: EvictionPolicy = (policy if policy is not None
                                       else NoEviction())
        # key -> (document, size_bytes, logical access time)
        self._entries: Dict[str, Tuple[dict, int, int]] = {}
        self._clock = itertools.count(1)

    # ------------------------------------------------------------------ #
    # CacheStore backend hooks
    # ------------------------------------------------------------------ #
    def _read(self, key: str) -> object:
        entry = self._entries.get(key)
        if entry is None:
            return MISS
        document, size, _ = entry
        self._entries[key] = (document, size, next(self._clock))
        try:
            return document["payload"]
        except (KeyError, TypeError):
            return MISS

    def _write(self, key: str, document: dict) -> str:
        # Size the entry exactly as a disk backend would store it, so a
        # byte budget means the same thing across backends.
        size = len(json.dumps(document).encode("utf-8"))
        self._entries[key] = (document, size, next(self._clock))
        self.policy.enforce(self)
        return key

    def contains(self, key: str) -> bool:
        return key in self._entries

    def delete(self, key: str) -> bool:
        return self._entries.pop(key, None) is not None

    def entries(self) -> Iterator[str]:
        yield from sorted(self._entries)

    def size_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries.values())

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        return removed

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #
    def _estimated_size(self) -> int:
        return self.size_bytes()

    def evict(self, budget: int, block: bool = True):
        """Drop least-recently-used entries until under ``budget`` bytes."""
        total = self.size_bytes()
        removed = 0
        freed = 0
        for key, (_, size, _) in sorted(self._entries.items(),
                                        key=lambda item: item[1][2]):
            if total <= budget:
                break
            del self._entries[key]
            total -= size
            freed += size
            removed += 1
        if removed:
            self.stats.evictions += removed
            if self.tracer is not None:
                self.tracer.count("cache.evictions", removed)
                self.tracer.count("cache.evicted_bytes", freed)
        return {"removed": removed, "freed_bytes": freed,
                "size_bytes": total, "skipped": False}
