"""Execution backends: where sweep units run, and how their failures land.

The runner (:mod:`repro.harness.runner`) used to own a transient
``ProcessPoolExecutor`` per sweep: every sweep of a multi-phase study paid
full pool cold-start (re-importing the ~100-module package per worker), and
one crashed worker aborted the whole sweep with every in-flight unit
discarded.  This module decomposes that into an :class:`ExecutorBackend`
abstraction the :class:`~repro.harness.engine.ExperimentEngine` owns and
shares across every sweep, grid and scaling phase it drives:

* :class:`SerialBackend` — everything in-process, the ``jobs=1`` path;
* :class:`ProcessPoolBackend` — a persistent **warm pool** of worker
  processes, built once and reused across dispatches, so the second and
  later phases of a study pay dispatch cost only.

Failure isolation is typed rather than exceptional: a unit that raises
produces a :class:`UnitFailure` (unit key, exception text, attempt count)
instead of propagating out of ``future.result()`` and tearing down the
sweep.  Failed units are retried in a **fresh** worker process
(:meth:`ExecutorBackend.run_isolated`) — a deliberate guard against
poisoned interpreter state in a warm worker — and whatever still fails is
aggregated into one :class:`SweepError` naming every failed unit, or, under
keep-going mode, returned alongside the partial results.  A worker that
dies hard (``os._exit``, a segfault) breaks the pool; the backend detects
that, rebuilds the pool, and the driver retries the affected batches, so a
single crash costs one retry round instead of the whole sweep.

Backends speak in **batches** (tuples of picklable argument tuples), so
small units amortise IPC and pickling over one dispatch; the runner picks
the batch size (:func:`batch_size`).

Backends are observable: attaching a
:class:`~repro.harness.telemetry.Tracer` (the ``tracer`` attribute, set by
the engine) counts pool constructions (``pool.starts``), dispatch rounds
(``pool.dispatches``), crash-triggered rebuilds (``pool.rebuilds``) and
fresh-worker retry executions (``pool.retries``), and emits a
``pool.rebuild`` event when a broken pool is discarded — so a ``--trace``
run records every pool lifecycle transition a sweep went through.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, \
    as_completed
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import EvaluationError

__all__ = [
    "UnitFailure",
    "SweepError",
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "batch_size",
]


@dataclass(frozen=True)
class UnitFailure:
    """One sweep unit that failed every attempt it was given.

    ``key`` is the unit's display key (``case.key@Nw``), ``slot`` its
    position in the sweep's input list (so callers can zip failures back
    against their unit list), ``error_type``/``error`` the exception class
    name and text of the *last* attempt, and ``attempts`` how many times
    the unit was executed before being given up on.
    """

    key: str
    slot: int
    error_type: str
    error: str
    attempts: int

    def describe(self) -> str:
        """One-line human-readable form, used by reports and errors."""
        return (f"{self.key}: {self.error_type}: {self.error} "
                f"(after {self.attempts} attempt(s))")


class SweepError(EvaluationError):
    """A sweep finished with failed units (strict, non-keep-going mode).

    Carries the full :class:`UnitFailure` list plus completion counters;
    the message names every failed unit, so the CLI error line alone
    identifies what was lost.  Everything that *did* complete before the
    error was already landed in the result cache — re-running the sweep
    only re-attempts the failed units.
    """

    def __init__(self, failures: Sequence[UnitFailure],
                 completed: int, total: int) -> None:
        self.failures = list(failures)
        self.completed = completed
        self.total = total
        details = "; ".join(failure.describe() for failure in self.failures)
        super().__init__(
            f"{len(self.failures)} of {total} sweep unit(s) failed "
            f"({completed} completed, results cached): {details}"
        )


def batch_size(num_units: int, width: int) -> int:
    """Units per dispatched batch for ``num_units`` over ``width`` workers.

    Batching amortises per-dispatch IPC and pickling, but oversized batches
    destroy load balance (units vary wildly in simulation cost), so aim for
    at least four batches per worker and never more than eight units per
    batch.  Serial execution (``width <= 1``) keeps batches of one so
    progress reporting stays per-unit.
    """
    if width <= 1:
        return 1
    return max(1, min(8, num_units // (width * 4)))


class ExecutorBackend:
    """Where sweep batches execute.

    The two operations sweeps need: :meth:`dispatch` fans a list of batches
    out and yields their outcomes as they complete (an outcome is either
    the worker function's return value or the exception that killed the
    batch — never raised), and :meth:`run_isolated` runs one call in a
    fresh worker, the retry path for units suspected of poisoning their
    worker's interpreter state.  ``width`` is the usable parallelism, used
    by the runner to size batches.
    """

    kind = "abstract"

    #: Optional :class:`~repro.harness.telemetry.Tracer` receiving
    #: ``pool.*`` counters/events; set by the owner (the engine).
    tracer = None

    def _count(self, name: str, value: float = 1) -> None:
        if self.tracer is not None:
            self.tracer.count(name, value)

    @property
    def width(self) -> int:
        raise NotImplementedError

    def dispatch(self, fn: Callable, batches: Sequence[Tuple]
                 ) -> Iterator[Tuple[int, object]]:
        """Yield ``(batch_index, outcome)`` as batches complete.

        ``outcome`` is ``fn(*batches[batch_index])``'s return value, or the
        exception it (or the transport under it) raised; exceptions are
        yielded, not raised, so one bad batch cannot abort the dispatch.
        """
        raise NotImplementedError

    def run_isolated(self, fn: Callable, *args: object) -> object:
        """Run ``fn(*args)`` in a fresh worker; exceptions propagate."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources; the backend may be restarted later."""

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialBackend(ExecutorBackend):
    """In-process execution — the ``jobs=1`` path, no pool machinery.

    Batches run one after another as the dispatch iterator is consumed, so
    progress advances live exactly like the pool path.  "Isolated" retries
    simply re-run in-process: there is no worker state to poison.
    """

    kind = "serial"

    @property
    def width(self) -> int:
        return 1

    def dispatch(self, fn: Callable, batches: Sequence[Tuple]
                 ) -> Iterator[Tuple[int, object]]:
        self._count("pool.dispatches")
        for index, batch in enumerate(batches):
            try:
                yield index, fn(*batch)
            except Exception as exc:  # isolation: yield, don't raise
                yield index, exc

    def run_isolated(self, fn: Callable, *args: object) -> object:
        self._count("pool.retries")
        return fn(*args)


class ProcessPoolBackend(ExecutorBackend):
    """A persistent warm pool of ``max_workers`` worker processes.

    The underlying :class:`ProcessPoolExecutor` is created lazily on the
    first dispatch and *kept* across dispatches until :meth:`close` — an
    engine-owned backend therefore imports the package once per worker for
    an entire multi-phase study.  ``starts`` counts pool constructions
    (1 for a healthy lifetime; +1 per crash recovery) and ``dispatches``
    counts dispatch rounds, so tests and the ``repro bench`` pool probe can
    verify warm reuse.

    A batch whose worker dies hard breaks the whole pool
    (:class:`concurrent.futures.BrokenExecutor`): the remaining in-flight
    futures all fail with the same error.  ``dispatch`` yields those as
    per-batch outcomes and discards the broken pool, so the next dispatch
    (or the driver's retry round) transparently builds a fresh one.
    """

    kind = "process-pool"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise EvaluationError("max_workers must be positive")
        self.max_workers = max_workers
        self.starts = 0
        self.dispatches = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def width(self) -> int:
        return self.max_workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self.starts += 1
            self._count("pool.starts")
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool so the next dispatch starts a fresh one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            self._count("pool.rebuilds")
            if self.tracer is not None:
                self.tracer.event("pool.rebuild", workers=self.max_workers)

    def dispatch(self, fn: Callable, batches: Sequence[Tuple]
                 ) -> Iterator[Tuple[int, object]]:
        self.dispatches += 1
        self._count("pool.dispatches")
        # Submission can itself hit a broken pool: a warm worker that died
        # *between* dispatches makes the next submit raise BrokenExecutor
        # synchronously.  That costs one pool rebuild; a second breakage
        # during the same dispatch fails the remaining batches as
        # outcomes (the driver's retry path picks them up) rather than
        # thrashing through pool restarts.
        futures = {}
        failed_submits: List[Tuple[int, BaseException]] = []
        items = list(enumerate(batches))
        position = 0
        rebuilt = False
        while position < len(items):
            index, batch = items[position]
            try:
                futures[self._ensure_pool().submit(fn, *batch)] = index
            except BrokenExecutor as exc:
                self._discard_pool()
                if rebuilt:
                    failed_submits.extend(
                        (i, exc) for i, _batch in items[position:])
                    break
                rebuilt = True
                continue  # retry the same batch on a fresh pool
            position += 1
        for index, exc in failed_submits:
            yield index, exc
        broken = False
        for future in as_completed(futures):
            index = futures[future]
            try:
                yield index, future.result()
            except Exception as exc:
                if isinstance(exc, BrokenExecutor):
                    broken = True
                yield index, exc
        if broken:
            self._discard_pool()

    def run_isolated(self, fn: Callable, *args: object) -> object:
        # A single-use single-worker pool: the retried call gets a process
        # no previous unit can have poisoned, and its crash cannot touch
        # the warm pool.
        self._count("pool.retries")
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(fn, *args).result()

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
