"""Experiment harness: parallel execution, result caching, artifacts, CLI.

The harness is the orchestration layer above :mod:`repro.eval`:

* :mod:`repro.harness.hashing` — stable content fingerprints of configs,
  cases and experiment requests, used as cache keys.
* :mod:`repro.harness.cache` — a content-addressed on-disk result cache so
  re-runs and overlapping sweeps are served from disk.
* :mod:`repro.harness.artifacts` — JSON round-tripping of every result
  dataclass plus an artifact store for archiving experiment outputs.
* :mod:`repro.harness.executor` — execution backends: serial in-process
  execution and the persistent warm process pool the engine shares across
  sweep phases, plus the typed failure records (``UnitFailure`` /
  ``SweepError``) of per-unit failure isolation.
* :mod:`repro.harness.runner` — fans benchmark (case × config) units out
  over an executor backend with deterministic, order-independent result
  assembly, per-dispatch batching and retry-in-a-fresh-worker failure
  handling.
* :mod:`repro.harness.sweep` — grid sweeps: :class:`SweepGrid` products of
  experiments and config overrides (e.g. core counts), the substrate of
  the ``scaling_curves`` experiment.
* :mod:`repro.harness.engine` — the experiment engine driving the
  :data:`repro.eval.EXPERIMENTS` registry, chaining derived experiments
  behind their inputs and executing grid sweeps end to end.
* :mod:`repro.harness.bench` — engine microbenchmarks and the
  ``BENCH_engine.json`` perf trajectory tracking events/sec and per-case
  sweep wall-clock across runs.
* :mod:`repro.harness.telemetry` — structured run telemetry: hierarchical
  spans (run → phase → sweep → unit), counters, run manifests and the
  pluggable sinks (JSONL trace files, the live progress line) they feed.
* :mod:`repro.harness.cli` — the ``python -m repro`` command-line front end.

Typical usage::

    from repro.harness import ExperimentEngine

    engine = ExperimentEngine(jobs=8, cache_dir=".repro_cache")
    runs = engine.run("figure9", quick=True)
    summary = engine.run("headline", quick=True)   # served from cache
"""

from repro.harness.artifacts import ArtifactStore, decode, encode
from repro.harness.bench import (
    PerfTrajectory,
    measure_cache,
    measure_case,
    measure_pool,
    measure_synthetic,
    run_engine_bench,
)
from repro.harness.cache import (
    CacheStats,
    CacheStore,
    MemoryStore,
    ResultCache,
    ShardedDiskStore,
    TieredStore,
    open_store,
)
from repro.harness.engine import ExperimentEngine
from repro.harness.executor import (
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    SweepError,
    UnitFailure,
)
from repro.harness.hashing import (
    CACHE_SCHEMA,
    canonical_case_config,
    case_cache_key,
    config_fingerprint,
    experiment_cache_key,
    grid_cache_key,
    stable_hash,
)
from repro.harness.progress import NullProgress, Progress
from repro.harness.runner import CaseUnit, run_case_grid, run_cases
from repro.harness.sweep import (
    GridPoint,
    GridResult,
    SweepGrid,
    apply_overrides,
)
from repro.harness.telemetry import (
    ConsoleSink,
    JsonlSink,
    NullSink,
    ProgressSink,
    RunManifest,
    SpanHandle,
    TelemetrySink,
    TraceSummary,
    Tracer,
    build_manifest,
    null_tracer,
    progress_tracer,
    read_trace,
    summarize_trace,
)

__all__ = [
    "ArtifactStore",
    "CACHE_SCHEMA",
    "CacheStats",
    "CacheStore",
    "CaseUnit",
    "ConsoleSink",
    "ExecutorBackend",
    "ExperimentEngine",
    "GridPoint",
    "GridResult",
    "JsonlSink",
    "MemoryStore",
    "NullProgress",
    "NullSink",
    "PerfTrajectory",
    "ProcessPoolBackend",
    "Progress",
    "ProgressSink",
    "ResultCache",
    "RunManifest",
    "SerialBackend",
    "ShardedDiskStore",
    "SpanHandle",
    "SweepError",
    "SweepGrid",
    "TelemetrySink",
    "TieredStore",
    "TraceSummary",
    "Tracer",
    "UnitFailure",
    "apply_overrides",
    "build_manifest",
    "canonical_case_config",
    "case_cache_key",
    "config_fingerprint",
    "decode",
    "encode",
    "experiment_cache_key",
    "grid_cache_key",
    "measure_cache",
    "measure_case",
    "measure_pool",
    "measure_synthetic",
    "null_tracer",
    "open_store",
    "progress_tracer",
    "read_trace",
    "run_case_grid",
    "run_cases",
    "run_engine_bench",
    "stable_hash",
    "summarize_trace",
]
