"""Content-addressed on-disk result cache.

Entries are JSON documents stored under ``<cache_dir>/<key[:2]>/<key>.json``
where ``key`` is a :func:`repro.harness.hashing.stable_hash` digest of
everything that can affect the result.  Because the key is content-derived
there is no invalidation protocol: changing the configuration, the case
parameters or the package version simply addresses a different entry.

Writes are atomic (write to a temporary sibling, then :func:`os.replace`) so
that parallel workers and concurrent harness invocations can share one cache
directory; unreadable or corrupt entries are treated as misses.

The cache is observable two ways.  Per instance, a
:class:`~repro.harness.telemetry.Tracer` attached via ``tracer`` receives
``cache.hits`` / ``cache.misses`` / ``cache.stores`` counters plus
cumulative ``cache.read_seconds`` / ``cache.write_seconds`` latencies, so
a ``--trace`` run records exactly what the cache cost it.  Across
instances, :meth:`persist_stats` folds the session's counters into a
``stats.json`` document in the cache directory — the *lifetime*
hit/miss/store totals ``repro cache --stats`` reports.  The lifetime file
is a read-modify-write dashboard like the perf trajectory: concurrent
writers may lose each other's latest delta, never the cache entries
themselves.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

__all__ = ["CacheStats", "ResultCache"]

#: Age (seconds) past which a ``*.tmp`` sibling counts as a stale dropping
#: of a killed writer rather than a concurrent in-flight write.  Real
#: writes live for milliseconds; an hour is conservatively beyond any of
#: them.
_STALE_TMP_SECONDS = 3600.0


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0


#: Name of the lifetime-counter document inside the cache directory
#: (outside the ``<shard>/<key>.json`` entry layout, so it is never
#: mistaken for an entry).
_STATS_FILE = "stats.json"


class ResultCache:
    """Content-addressed JSON result cache rooted at ``cache_dir``.

    ``tracer`` (optional) receives hit/miss/store counters and cumulative
    read/write latency; see the module docstring.
    """

    def __init__(self, cache_dir: os.PathLike, tracer=None) -> None:
        self.root = Path(cache_dir)
        self.stats = CacheStats()
        self.tracer = tracer
        # Counters already folded into stats.json, so repeated
        # persist_stats() calls write each lookup exactly once.
        self._persisted = CacheStats()

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """Location of the entry addressed by ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[object]:
        """The JSON payload stored under ``key``, or None on a miss."""
        path = self.path_for(key)
        started = time.perf_counter() if self.tracer is not None else 0.0
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
            payload = document["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            if self.tracer is not None:
                self.tracer.count("cache.misses")
                self.tracer.count("cache.read_seconds",
                                  time.perf_counter() - started)
            return None
        self.stats.hits += 1
        if self.tracer is not None:
            self.tracer.count("cache.hits")
            self.tracer.count("cache.read_seconds",
                              time.perf_counter() - started)
        return payload

    def put(self, key: str, payload: object, **metadata: object) -> Path:
        """Atomically persist ``payload`` (JSON-serialisable) under ``key``."""
        path = self.path_for(key)
        started = time.perf_counter() if self.tracer is not None else 0.0
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"key": key, "metadata": metadata, "payload": payload}
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent,
            prefix=f".{key[:8]}-", suffix=".tmp", delete=False,
        )
        try:
            with handle:
                json.dump(document, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        if self.tracer is not None:
            self.tracer.count("cache.stores")
            self.tracer.count("cache.write_seconds",
                              time.perf_counter() - started)
        return path

    def contains(self, key: str) -> bool:
        """Whether an entry exists for ``key`` (does not touch the stats)."""
        return self.path_for(key).is_file()

    def demote_hit(self, key: str) -> None:
        """Re-classify the last hit on ``key`` as a miss and drop the entry.

        Callers use this when an entry parsed as JSON but failed to decode
        into the expected result type — from the caller's point of view that
        is a corrupt entry, i.e. a miss, and keeping it on disk would make
        every future run trip over it again.
        """
        self.stats.hits = max(self.stats.hits - 1, 0)
        self.stats.misses += 1
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Lifetime statistics
    # ------------------------------------------------------------------ #
    @property
    def stats_path(self) -> Path:
        """Location of the lifetime-counter document."""
        return self.root / _STATS_FILE

    def lifetime_stats(self) -> CacheStats:
        """Hit/miss/store totals accumulated across every persisted run.

        Reads ``stats.json``; a missing or corrupt document reads as
        zeros — lifetime counters are a dashboard, never a gate.
        """
        try:
            document = json.loads(self.stats_path.read_text(encoding="utf-8"))
            return CacheStats(
                hits=max(0, int(document.get("hits", 0))),
                misses=max(0, int(document.get("misses", 0))),
                stores=max(0, int(document.get("stores", 0))),
            )
        except (OSError, ValueError, TypeError, AttributeError):
            return CacheStats()

    def persist_stats(self) -> Optional[Path]:
        """Fold this session's counters into the lifetime document.

        Only the delta since the last persist is written, so calling this
        repeatedly (the engine persists on ``close``, which is idempotent)
        counts every lookup exactly once.  Failures to write are swallowed:
        losing a stats delta must never fail a run.
        """
        delta_hits = self.stats.hits - self._persisted.hits
        delta_misses = self.stats.misses - self._persisted.misses
        delta_stores = self.stats.stores - self._persisted.stores
        if not (delta_hits or delta_misses or delta_stores):
            return None
        lifetime = self.lifetime_stats()
        document = {
            "hits": max(0, lifetime.hits + delta_hits),
            "misses": max(0, lifetime.misses + delta_misses),
            "stores": max(0, lifetime.stores + delta_stores),
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=self.root,
                prefix=".stats-", suffix=".tmp", delete=False,
            )
            try:
                with handle:
                    json.dump(document, handle, sort_keys=True)
                os.replace(handle.name, self.stats_path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except OSError:
            return None
        self._persisted = CacheStats(hits=self.stats.hits,
                                     misses=self.stats.misses,
                                     stores=self.stats.stores)
        return self.stats_path

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[Path]:
        """Every entry file currently in the cache.

        The listing is a snapshot of a directory other processes may be
        mutating; consumers (:meth:`size_bytes`, :meth:`clear`) tolerate
        entries that vanish between listing and use.
        """
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        """Total on-disk size of all entries.

        An entry deleted concurrently (another process clearing, or a
        ``demote_hit``) is simply skipped rather than raising from
        ``stat()``.
        """
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also sweeps stale ``*.tmp`` siblings — the droppings of a writer
        killed between ``NamedTemporaryFile`` and ``os.replace`` — which
        would otherwise accumulate forever (they are never addressed by
        any key).  Only temporaries older than an hour are swept, so a
        *concurrent* writer's in-flight temporary is never pulled out from
        under its ``os.replace``; temporaries do not count toward the
        return value.
        """
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            cutoff = time.time() - _STALE_TMP_SECONDS
            for stale in list(self.root.glob("*/*.tmp")):
                try:
                    if stale.stat().st_mtime < cutoff:
                        stale.unlink()
                except OSError:
                    pass
        return removed
