"""Content-addressed on-disk result cache.

Entries are JSON documents stored under ``<cache_dir>/<key[:2]>/<key>.json``
where ``key`` is a :func:`repro.harness.hashing.stable_hash` digest of
everything that can affect the result.  Because the key is content-derived
there is no invalidation protocol: changing the configuration, the case
parameters or the package version simply addresses a different entry.

Writes are atomic (write to a temporary sibling, then :func:`os.replace`) so
that parallel workers and concurrent harness invocations can share one cache
directory; unreadable or corrupt entries are treated as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

__all__ = ["CacheStats", "ResultCache"]

#: Age (seconds) past which a ``*.tmp`` sibling counts as a stale dropping
#: of a killed writer rather than a concurrent in-flight write.  Real
#: writes live for milliseconds; an hour is conservatively beyond any of
#: them.
_STALE_TMP_SECONDS = 3600.0


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed JSON result cache rooted at ``cache_dir``."""

    def __init__(self, cache_dir: os.PathLike) -> None:
        self.root = Path(cache_dir)
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """Location of the entry addressed by ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[object]:
        """The JSON payload stored under ``key``, or None on a miss."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
            payload = document["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: object, **metadata: object) -> Path:
        """Atomically persist ``payload`` (JSON-serialisable) under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"key": key, "metadata": metadata, "payload": payload}
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=path.parent,
            prefix=f".{key[:8]}-", suffix=".tmp", delete=False,
        )
        try:
            with handle:
                json.dump(document, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def contains(self, key: str) -> bool:
        """Whether an entry exists for ``key`` (does not touch the stats)."""
        return self.path_for(key).is_file()

    def demote_hit(self, key: str) -> None:
        """Re-classify the last hit on ``key`` as a miss and drop the entry.

        Callers use this when an entry parsed as JSON but failed to decode
        into the expected result type — from the caller's point of view that
        is a corrupt entry, i.e. a miss, and keeping it on disk would make
        every future run trip over it again.
        """
        self.stats.hits = max(self.stats.hits - 1, 0)
        self.stats.misses += 1
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def entries(self) -> Iterator[Path]:
        """Every entry file currently in the cache.

        The listing is a snapshot of a directory other processes may be
        mutating; consumers (:meth:`size_bytes`, :meth:`clear`) tolerate
        entries that vanish between listing and use.
        """
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        """Total on-disk size of all entries.

        An entry deleted concurrently (another process clearing, or a
        ``demote_hit``) is simply skipped rather than raising from
        ``stat()``.
        """
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also sweeps stale ``*.tmp`` siblings — the droppings of a writer
        killed between ``NamedTemporaryFile`` and ``os.replace`` — which
        would otherwise accumulate forever (they are never addressed by
        any key).  Only temporaries older than an hour are swept, so a
        *concurrent* writer's in-flight temporary is never pulled out from
        under its ``os.replace``; temporaries do not count toward the
        return value.
        """
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            cutoff = time.time() - _STALE_TMP_SECONDS
            for stale in list(self.root.glob("*/*.tmp")):
                try:
                    if stale.stat().st_mtime < cutoff:
                        stale.unlink()
                except OSError:
                    pass
        return removed
