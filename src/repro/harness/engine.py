"""The experiment engine: one execution path for every evaluation artefact.

:class:`ExperimentEngine` drives the :data:`repro.eval.EXPERIMENT_SPECS`
registry.  It resolves experiment dependencies (Figures 8/10 and the
headline summary are derived from the Figure 9 sweep), fans the sweep out
over a process pool, and serves anything it has computed before from the
content-addressed result cache.  The examples, the benchmark conftest and
the ``python -m repro`` CLI all sit on top of this one class, so they cannot
drift apart.

When constructed with ``bench_path``, the engine appends one ``"sweep"``
entry of per-case wall-clock seconds to that ``BENCH_engine.json``
trajectory (:class:`repro.harness.bench.PerfTrajectory`) after every sweep
that simulated at least one case, so real-experiment performance is tracked
across runs and commits, not just the synthetic microbenchmark.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import (
    EXPERIMENT_SPECS,
    FIGURE6_DEFAULT_NUM_TASKS,
    BenchmarkCase,
    BenchmarkRun,
    benchmark_cases,
    figure6_mtt_bounds,
    figure10_bound_task_sizes,
)
from repro.eval.overhead import DEFAULT_NUM_TASKS as FIGURE7_DEFAULT_NUM_TASKS
from repro.harness.artifacts import ArtifactStore, decode, encode
from repro.harness.bench import PerfTrajectory
from repro.harness.cache import CacheStats, ResultCache
from repro.harness.hashing import experiment_cache_key
from repro.harness.progress import NullProgress, Progress
from repro.harness.runner import run_cases

__all__ = ["ExperimentEngine"]

#: Default micro-benchmark lengths of the overhead-based experiments,
#: taken from the eval layer's own defaults so the engine cannot drift from
#: direct calls (``figure10`` uses figure6's bounds internally, hence
#: shares its task count).
_DEFAULT_NUM_TASKS = {
    "figure6": FIGURE6_DEFAULT_NUM_TASKS,
    "figure7": FIGURE7_DEFAULT_NUM_TASKS,
    "figure10": FIGURE6_DEFAULT_NUM_TASKS,
}


class ExperimentEngine:
    """Runs registry experiments with caching, chaining and parallelism."""

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        jobs: int = 1,
        cache_dir: Optional[Path] = None,
        artifact_dir: Optional[Path] = None,
        progress: Optional[Progress] = None,
        bench_path: Optional[Path] = None,
    ) -> None:
        """Create an engine.

        ``jobs`` is the process-pool width of the benchmark sweep;
        ``cache_dir`` enables the on-disk result cache; ``artifact_dir``
        archives every experiment result as JSON; ``bench_path`` appends
        per-case sweep timings to a ``BENCH_engine.json`` trajectory.
        """
        if jobs <= 0:
            raise EvaluationError("jobs must be positive")
        self.config = config if config is not None else SimConfig()
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.artifacts = (ArtifactStore(artifact_dir)
                          if artifact_dir is not None else None)
        self.progress = progress if progress is not None else NullProgress()
        self.trajectory = (PerfTrajectory(bench_path)
                           if bench_path is not None else None)
        #: Wall-clock seconds per simulated case of the most recent sweep
        #: (empty when the sweep was fully served from cache/memo).
        self.case_timings: dict = {}
        # In-memory memo of completed sweeps, so chained derived experiments
        # in one engine share the Figure 9 runs even with no disk cache.
        self._sweep_memo: dict = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the attached cache (zeros when disabled)."""
        return self.cache.stats if self.cache is not None else CacheStats()

    def run(
        self,
        experiment_id: str,
        quick: bool = False,
        scale: float = 1.0,
        num_workers: Optional[int] = None,
        num_tasks: Optional[int] = None,
        cases: Optional[Sequence[BenchmarkCase]] = None,
    ) -> object:
        """Run one experiment, chaining its dependencies as needed.

        Returns exactly what the underlying :data:`EXPERIMENTS` runner
        returns, so callers migrating from direct calls keep their types.
        ``quick``/``scale``/``cases`` select the benchmark sweep inputs and
        ``num_tasks`` the micro-benchmark length of the overhead-based
        experiments; irrelevant knobs are ignored per experiment.
        """
        spec = EXPERIMENT_SPECS.get(experiment_id)
        if spec is None:
            raise EvaluationError(
                f"unknown experiment {experiment_id!r}; expected one of "
                f"{sorted(EXPERIMENT_SPECS)}"
            )
        if experiment_id == "figure9":
            result = self._run_sweep(quick, scale, num_workers, cases)
        elif spec.is_derived:
            result = self._run_derived(experiment_id, quick, scale,
                                       num_workers, num_tasks, cases)
        else:
            result = self._run_simple(experiment_id, num_tasks)
        if self.artifacts is not None:
            self.artifacts.save(experiment_id, result,
                                quick=quick, scale=scale)
        return result

    # ------------------------------------------------------------------ #
    # Execution strategies
    # ------------------------------------------------------------------ #
    def _run_sweep(
        self,
        quick: bool,
        scale: float,
        num_workers: Optional[int],
        cases: Optional[Sequence[BenchmarkCase]],
    ) -> List[BenchmarkRun]:
        workers = (num_workers if num_workers is not None
                   else self.config.machine.num_cores)
        selected = (list(cases) if cases is not None
                    else benchmark_cases(quick, scale))
        memo_key = (workers, tuple(selected))
        if memo_key in self._sweep_memo:
            self.case_timings = {}
            return list(self._sweep_memo[memo_key])
        timings: dict = {}
        runs = run_cases(self.config, selected, workers, jobs=self.jobs,
                         cache=self.cache, progress=self.progress,
                         timings=timings)
        self.case_timings = timings
        if self.trajectory is not None:
            self.trajectory.record_sweep("figure9", timings)
        self._sweep_memo[memo_key] = runs
        return list(runs)

    def _run_simple(self, experiment_id: str,
                    num_tasks: Optional[int]) -> object:
        """Self-contained experiments: run the registry runner, cached."""
        runner = EXPERIMENT_SPECS[experiment_id].runner
        parameters = {}
        if experiment_id in _DEFAULT_NUM_TASKS:
            parameters["num_tasks"] = (
                num_tasks if num_tasks is not None
                else _DEFAULT_NUM_TASKS[experiment_id]
            )
        return self._run_cached(
            experiment_id, parameters,
            lambda: runner(self.config, **parameters),
        )

    def _run_cached(self, experiment_id: str, parameters: dict,
                    compute) -> object:
        """Whole-result caching for the non-sweep experiments."""
        key = None
        if self.cache is not None:
            key = experiment_cache_key(experiment_id, self.config, parameters)
            payload = self.cache.get(key)
            if payload is not None:
                try:
                    return decode(payload)
                except (EvaluationError, KeyError, TypeError, ValueError):
                    # Entry parsed as JSON but not as a result: a miss.
                    self.cache.demote_hit(key)
        result = compute()
        if self.cache is not None and key is not None:
            self.cache.put(key, encode(result), experiment=experiment_id)
        return result

    def _run_derived(
        self,
        experiment_id: str,
        quick: bool,
        scale: float,
        num_workers: Optional[int],
        num_tasks: Optional[int],
        cases: Optional[Sequence[BenchmarkCase]],
    ) -> object:
        """Experiments computed from the Figure 9 sweep."""
        spec = EXPERIMENT_SPECS[experiment_id]
        if spec.depends_on != ("figure9",):
            raise EvaluationError(
                f"unsupported dependency chain {spec.depends_on!r} "
                f"for {experiment_id!r}"
            )
        # Dependency runs go through _run_sweep directly (not self.run) so
        # they share the memo/cache without re-saving the figure9 artifact
        # once per derived experiment.
        runs = self._run_sweep(quick, scale, num_workers, cases)
        runner = spec.runner
        if experiment_id == "figure10":
            # Figure 10 overlays the runs on the MTT bound curves, which
            # come from their own (cached) overhead measurement.
            tasks = (num_tasks if num_tasks is not None
                     else _DEFAULT_NUM_TASKS["figure10"])
            sizes = figure10_bound_task_sizes()
            bounds = self._run_cached(
                "figure6", {"num_tasks": tasks, "task_sizes": sizes},
                lambda: figure6_mtt_bounds(self.config, task_sizes=sizes,
                                           num_tasks=tasks),
            )
            return runner(runs, self.config, bounds)
        return runner(runs)
