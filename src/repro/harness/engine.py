"""The experiment engine: one execution path for every evaluation artefact.

:class:`ExperimentEngine` drives the :data:`repro.eval.EXPERIMENT_SPECS`
registry.  It resolves experiment dependencies (Figures 8/10 and the
headline summary are derived from the Figure 9 sweep), fans the sweep out
over a process pool, and serves anything it has computed before from the
content-addressed result cache.  The examples, the benchmark conftest and
the ``python -m repro`` CLI all sit on top of this one class, so they cannot
drift apart.

Beyond the paper's single-machine experiments the engine executes **grid
sweeps** (:meth:`run_grid`): a :class:`~repro.harness.sweep.SweepGrid` of
(experiment × config-override) points whose benchmark work — across *all*
grid points — is fanned through one process pool and the shared result
cache.  The ``scaling_curves`` experiment is built on this: every Figure 9
case at every requested core count, assembled into speedup-versus-cores
curves against the MTT bounds (:mod:`repro.eval.scaling`).  Because cache
keys canonicalise the worker count into the configuration, the 8-core
column of a scaling sweep addresses exactly the Figure 9 entries.

The engine owns one :class:`~repro.harness.executor.ExecutorBackend`
(serial for ``jobs=1``, a persistent warm process pool otherwise) shared
by every sweep, grid and scaling phase it drives, so a multi-phase study
builds one pool and reuses warm workers instead of re-importing the
package per sweep; :meth:`close` (or using the engine as a context
manager) releases it.  Failure isolation is engine-wide too: a failing
unit becomes a :class:`~repro.harness.executor.UnitFailure` (retried
``retries`` times in a fresh worker first), and sweeps either raise one
aggregated :class:`~repro.harness.executor.SweepError` or — when the
engine was built with ``keep_going=True`` — deliver partial results while
collecting every failure in :attr:`unit_failures`, with everything
completed already landed in the cache.

When constructed with ``bench_path``, the engine appends one ``"sweep"``
entry of per-case wall-clock seconds (plus each case's sim-core
cycles-per-second throughput) to that ``BENCH_engine.json`` trajectory
(:class:`repro.harness.bench.PerfTrajectory`) after every sweep that
simulated at least one case, so real-experiment performance is tracked
across runs and commits, not just the synthetic microbenchmark.

The engine is the telemetry root (:mod:`repro.harness.telemetry`): it owns
one :class:`~repro.harness.telemetry.Tracer` shared with its cache and
executor, opens the *run* span (stamped with the
:class:`~repro.harness.telemetry.RunManifest` — version, config
fingerprint, jobs, host, plugin registries) on the first experiment, nests
a *phase* span per :meth:`run`/:meth:`run_grid` around the runner's sweep
and unit spans, and snapshots every counter when :meth:`close` ends the
run.  ``trace_path`` attaches a
:class:`~repro.harness.telemetry.JsonlSink` (the ``--trace`` /
``$REPRO_TRACE`` surface); a ``progress`` reporter is fed through a
``ProgressSink``, so the stderr status line consumes the same stream.
Closing also folds the session's cache counters into the cache
directory's lifetime ``stats.json`` (``repro cache --stats``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import (
    EXPERIMENT_SPECS,
    FIGURE6_DEFAULT_NUM_TASKS,
    BenchmarkCase,
    BenchmarkRun,
    benchmark_cases,
    canonical_runtime_selection,
    figure6_mtt_bounds,
    figure10_bound_task_sizes,
)
from repro.eval.overhead import DEFAULT_NUM_TASKS as FIGURE7_DEFAULT_NUM_TASKS
from repro.eval.overhead import measure_lifetime_overhead
from repro.eval.scaling import (
    DEFAULT_OVERHEAD_NUM_TASKS,
    ScalingCurve,
    align_runs_by_cores,
    build_scaling_curves,
    normalize_core_counts,
    normalize_runtimes,
)
from repro.harness.artifacts import ArtifactStore, decode, encode
from repro.harness.bench import PerfTrajectory
from repro.harness.cache import CacheStats, CacheStore, open_store
from repro.harness.executor import (
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    UnitFailure,
)
from repro.harness.hashing import (
    canonical_case_config,
    experiment_cache_key,
    grid_cache_key,
    scenario_fingerprint,
)
from repro.registry import suggest
from repro.scenario import ScenarioSpec, canonical_scenario
from repro.harness.progress import NullProgress, Progress
from repro.harness.runner import CaseUnit, run_case_grid, run_cases
from repro.harness.sweep import GridPoint, GridResult, SweepGrid
from repro.harness.telemetry import (
    JsonlSink,
    NullSink,
    ProgressSink,
    Tracer,
    build_manifest,
)

__all__ = ["ExperimentEngine"]

#: Default micro-benchmark lengths of the overhead-based experiments,
#: taken from the eval layer's own defaults so the engine cannot drift from
#: direct calls (``figure10`` uses figure6's bounds internally, hence
#: shares its task count).
_DEFAULT_NUM_TASKS = {
    "figure6": FIGURE6_DEFAULT_NUM_TASKS,
    "figure7": FIGURE7_DEFAULT_NUM_TASKS,
    "figure10": FIGURE6_DEFAULT_NUM_TASKS,
}


class ExperimentEngine:
    """Runs registry experiments with caching, chaining and parallelism."""

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        jobs: int = 1,
        cache_dir: Optional[Path] = None,
        cache_budget=None,
        artifact_dir: Optional[Path] = None,
        progress: Optional[Progress] = None,
        bench_path: Optional[Path] = None,
        run_label: Optional[str] = None,
        keep_going: bool = False,
        retries: int = 1,
        trace_path: Optional[Path] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """Create an engine.

        ``jobs`` is the worker-pool width of the benchmark sweep;
        ``cache_dir`` enables the result cache — a directory path, a
        ``mem:``/``dir:``/``sharded:``/``tiered:`` spec string (see
        :func:`repro.harness.cache.open_store`), or a pre-built
        :class:`~repro.harness.cache.CacheStore`; ``cache_budget``
        bounds its size (bytes or ``512M``-style string, LRU eviction,
        default unbounded / ``$REPRO_CACHE_BUDGET``); ``artifact_dir``
        archives every experiment result as JSON; ``bench_path`` appends
        per-case sweep timings to a ``BENCH_engine.json`` trajectory, and
        ``run_label`` is recorded on every trajectory entry so bench data
        is attributable to the Study/CLI invocation that produced it.
        ``retries`` is how many times a failing sweep unit is re-attempted
        in a fresh worker; ``keep_going`` turns failed sweeps into partial
        results plus :attr:`unit_failures` records instead of an
        aggregated :class:`~repro.harness.executor.SweepError`.
        ``trace_path`` records the run's telemetry stream as JSONL
        (readable by ``repro trace summary``); alternatively a pre-built
        ``tracer`` may be injected, in which case the engine uses it as-is
        (``progress`` then only renders if the tracer carries a sink for
        it) and leaves closing its sinks to the caller.
        """
        if jobs <= 0:
            raise EvaluationError("jobs must be positive")
        if retries < 0:
            raise EvaluationError("retries must be >= 0")
        self.config = config if config is not None else SimConfig()
        self.jobs = jobs
        self.progress = progress if progress is not None else NullProgress()
        self._owns_tracer = tracer is None
        if tracer is None:
            sinks = []
            if not isinstance(self.progress, NullProgress):
                sinks.append(ProgressSink(self.progress))
            if trace_path is not None:
                sinks.append(JsonlSink(trace_path))
            tracer = Tracer(sinks or [NullSink()])
        self.tracer = tracer
        self.cache: Optional[CacheStore] = (
            open_store(cache_dir, tracer=self.tracer, budget=cache_budget)
            if cache_dir is not None else None)
        self.artifacts = (ArtifactStore(artifact_dir)
                          if artifact_dir is not None else None)
        self.trajectory = (PerfTrajectory(bench_path)
                           if bench_path is not None else None)
        self.run_label = run_label
        self.keep_going = keep_going
        self.retries = retries
        #: Every :class:`UnitFailure` any sweep of this engine produced
        #: (only populated under ``keep_going``; strict sweeps raise).
        self.unit_failures: List[UnitFailure] = []
        #: Wall-clock seconds per simulated case of the most recent sweep
        #: (empty when the sweep was fully served from cache/memo).
        self.case_timings: dict = {}
        #: Sim-core throughput (simulated cycles per wall-second) per
        #: simulated case of the most recent sweep, keyed like
        #: :attr:`case_timings`.
        self.case_rates: dict = {}
        # The open run span (started lazily with the RunManifest on the
        # first experiment, ended by close()).
        self._run_span = None
        # In-memory memo of completed sweeps keyed by (config, workers,
        # cases), so chained derived experiments and grid points in one
        # engine share the Figure 9 runs even with no disk cache.
        self._sweep_memo: dict = {}
        # Failures of partial (keep-going) sweeps, by memo key: a
        # memo-served partial sweep must re-report its losses, so callers
        # (and the scaling partiality check) never mistake a gap-ridden
        # result for a complete one.
        self._partial_memo: dict = {}
        # The persistent execution backend, built lazily on first use and
        # shared by every sweep/grid/scaling phase this engine drives.
        self._executor: Optional[ExecutorBackend] = None

    @property
    def executor(self) -> ExecutorBackend:
        """The engine's execution backend (a warm pool when ``jobs > 1``).

        Created on first access and kept until :meth:`close`, so
        multi-phase runs (a Study's scaling grid plus its per-count
        sweeps, or ``repro run all``) reuse one set of warm workers.
        """
        if self._executor is None:
            self._executor = (SerialBackend() if self.jobs == 1
                              else ProcessPoolBackend(self.jobs))
            self._executor.tracer = self.tracer
        return self._executor

    def _ensure_run_span(self) -> None:
        """Open the run span (manifest-stamped) on the first experiment."""
        if self._run_span is not None:
            return
        manifest = build_manifest(self.config, self.jobs,
                                  label=self.run_label)
        # The run span outlives this call — it is opened by the first
        # experiment and closed in close() — so a with-block cannot
        # express its lifetime.
        self._run_span = self.tracer.start_span(  # repro: lint-ignore[telemetry]
            "run", "run", keep_going=self.keep_going, retries=self.retries,
            **manifest.as_attributes())

    def close(self) -> None:
        """Shut the engine down (idempotent; everything lazily rebuilt).

        Releases the execution backend, closes the run span and snapshots
        the telemetry counters into the trace, folds the session's cache
        counters into the cache directory's lifetime stats, and — when the
        engine built its own tracer — closes the trace sinks.
        """
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.close()
        run_span, self._run_span = self._run_span, None
        if run_span is not None:
            if self.unit_failures:
                run_span.set(unit_failures=len(self.unit_failures))
            # Closes the run span opened in _ensure_run_span() (see the
            # pragma there for why it is not a with-block).
            self.tracer.end_span(run_span)  # repro: lint-ignore[telemetry]
        if self.cache is not None:
            self.cache.persist_stats()
        if self._owns_tracer:
            self.tracer.close()  # snapshots counters, closes sinks
        elif run_span is not None:
            self.tracer.emit_counters()

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the attached cache (zeros when disabled)."""
        return self.cache.stats if self.cache is not None else CacheStats()

    def run(
        self,
        experiment_id: str,
        quick: bool = False,
        scale: float = 1.0,
        num_workers: Optional[int] = None,
        num_tasks: Optional[int] = None,
        cases: Optional[Sequence[BenchmarkCase]] = None,
        core_counts: Optional[Sequence[int]] = None,
        runtimes: Optional[Sequence[str]] = None,
        scenario: Optional[ScenarioSpec] = None,
    ) -> object:
        """Run one experiment, chaining its dependencies as needed.

        Returns exactly what the underlying :data:`EXPERIMENTS` runner
        returns, so callers migrating from direct calls keep their types.
        ``quick``/``scale``/``cases`` select the benchmark sweep inputs and
        ``num_tasks`` the micro-benchmark length of the overhead-based
        experiments; ``core_counts``/``runtimes`` parameterise the
        ``scaling_curves`` grid; ``scenario`` applies a stochastic
        :class:`~repro.scenario.ScenarioSpec` to the benchmark sweeps
        (canonicalised, so the default spec behaves exactly like ``None``);
        irrelevant knobs are ignored per experiment.
        """
        spec = EXPERIMENT_SPECS.get(experiment_id)
        if spec is None:
            raise EvaluationError(
                f"unknown experiment {experiment_id!r}"
                f"{suggest(experiment_id, list(EXPERIMENT_SPECS))}"
            )
        self._ensure_run_span()
        with self.tracer.span(experiment_id, "phase",
                              quick=quick, scale=scale):
            if experiment_id == "scaling_curves":
                result = self._run_scaling(quick, scale, cases, core_counts,
                                           runtimes, scenario=scenario)
            elif experiment_id == "figure9":
                result = self._run_sweep(quick, scale, num_workers, cases,
                                         runtimes=runtimes,
                                         scenario=scenario)
            elif spec.is_derived:
                result = self._run_derived(experiment_id, quick, scale,
                                           num_workers, num_tasks, cases,
                                           scenario=scenario)
            else:
                result = self._run_simple(experiment_id, num_tasks)
        if self.artifacts is not None:
            self.artifacts.save(experiment_id, result,
                                quick=quick, scale=scale)
        return result

    def run_grid(
        self,
        grid: SweepGrid,
        quick: bool = False,
        scale: float = 1.0,
        num_tasks: Optional[int] = None,
        cases: Optional[Sequence[BenchmarkCase]] = None,
        runtimes: Optional[Sequence[str]] = None,
        scenario: Optional[ScenarioSpec] = None,
    ) -> List[GridResult]:
        """Execute every point of ``grid`` and return its results in order.

        All benchmark-sweep work behind the grid — every (case × config
        override) unit of every figure9-backed point — is batched through
        *one* process-pool invocation and the shared result cache before
        the points are assembled, so grid wall-clock tracks total work and
        repeated columns are pure cache hits.  ``runtimes`` selects the
        case runtimes of figure9-backed points (default: the registry's
        case set).
        """
        points = grid.points()
        self._ensure_run_span()
        with self.tracer.span("grid", "phase", points=len(points),
                              quick=quick, scale=scale):
            self._prime_grid_sweeps(points, quick, scale, cases,
                                    runtimes=runtimes, scenario=scenario)
            grid_timings = dict(self.case_timings)
            grid_rates = dict(self.case_rates)
            results = [
                GridResult(point, self._run_point(point, quick, scale,
                                                  num_tasks, cases,
                                                  runtimes, scenario))
                for point in points
            ]
            # Memo-served assembly clears per-sweep timings; the grid's own
            # simulated-unit timings are what callers should see.
            self.case_timings = grid_timings
            self.case_rates = grid_rates
        return results

    # ------------------------------------------------------------------ #
    # Execution strategies
    # ------------------------------------------------------------------ #
    def _sweep_inputs(
        self,
        point_config: SimConfig,
        quick: bool,
        scale: float,
        num_workers: Optional[int],
        cases: Optional[Sequence[BenchmarkCase]],
        runtimes: Optional[Sequence[str]] = None,
        scenario: Optional[ScenarioSpec] = None,
    ):
        """The (workers, cases, selection, spec, memo key) of one sweep.

        The memo key folds the worker count into the configuration
        (:func:`~repro.harness.hashing.canonical_case_config`) exactly like
        the disk cache, so a scaling column at N cores and a direct
        ``num_workers=N`` sweep share one in-memory entry too.  The
        canonical scenario (``None`` for the default) is a key component,
        so seeded stochastic sweeps never alias deterministic ones.
        """
        workers = (num_workers if num_workers is not None
                   else point_config.machine.num_cores)
        selected = (list(cases) if cases is not None
                    else benchmark_cases(quick, scale))
        selection = canonical_runtime_selection(runtimes)
        spec = canonical_scenario(scenario)
        memo_key = (canonical_case_config(point_config, workers),
                    tuple(selected), selection, spec)
        return workers, selected, selection, spec, memo_key

    def _run_sweep(
        self,
        quick: bool,
        scale: float,
        num_workers: Optional[int],
        cases: Optional[Sequence[BenchmarkCase]],
        config: Optional[SimConfig] = None,
        runtimes: Optional[Sequence[str]] = None,
        scenario: Optional[ScenarioSpec] = None,
    ) -> List[BenchmarkRun]:
        config = config if config is not None else self.config
        workers, selected, selection, spec, memo_key = self._sweep_inputs(
            config, quick, scale, num_workers, cases, runtimes, scenario)
        if memo_key in self._sweep_memo:
            self.case_timings = {}
            self.case_rates = {}
            # A memo-served *partial* sweep re-reports its failures, so
            # the result is never mistaken for a complete one.
            self.unit_failures.extend(self._partial_memo.get(memo_key, ()))
            return list(self._sweep_memo[memo_key])
        timings: dict = {}
        rates: dict = {}
        failures: List[UnitFailure] = []
        runs = run_cases(config, selected, workers, jobs=self.jobs,
                         cache=self.cache, timings=timings,
                         runtimes=selection, executor=self.executor,
                         keep_going=self.keep_going, retries=self.retries,
                         failures=failures, tracer=self.tracer, rates=rates,
                         scenario=spec)
        self.unit_failures.extend(failures)
        if failures:
            self._partial_memo[memo_key] = tuple(failures)
        # Under keep-going, failed slots come back as None; the sweep's
        # result (and memo) is the completed runs.
        runs = [run for run in runs if run is not None]
        self.case_timings = timings
        self.case_rates = rates
        if self.trajectory is not None:
            self.trajectory.record_sweep("figure9", timings,
                                         label=self.run_label, rates=rates)
        self._sweep_memo[memo_key] = runs
        return list(runs)

    def _prime_grid_sweeps(
        self,
        points: Sequence[GridPoint],
        quick: bool,
        scale: float,
        cases: Optional[Sequence[BenchmarkCase]],
        base_config: Optional[SimConfig] = None,
        runtimes: Optional[Sequence[str]] = None,
        scenario: Optional[ScenarioSpec] = None,
    ) -> None:
        """Batch the benchmark units of every sweep-backed grid point.

        Collects the (config × case) units of every figure9-backed point
        that is not already memoised, executes them through one
        :func:`run_case_grid` call (one pool, shared cache), then memoises
        the per-point run lists so :meth:`_run_point` assembly is pure
        lookup.
        """
        base_config = (base_config if base_config is not None
                       else self.config)
        pending: List[tuple] = []  # (memo_key, config, workers, cases,
        #                            selection, scenario)
        seen = set()
        for point in points:
            exp_spec = EXPERIMENT_SPECS[point.experiment_id]
            if point.experiment_id != "figure9" \
                    and exp_spec.depends_on != ("figure9",):
                continue
            if point.experiment_id == "scaling_curves":
                continue  # runs its own nested grid
            config = point.apply(base_config)
            # Derived figures hard-code the paper's comparison and their
            # assembly path (_run_derived) always sweeps the default
            # runtimes — priming them under a selection would batch units
            # the assembly never looks up.
            point_runtimes = (runtimes if point.experiment_id == "figure9"
                              else None)
            workers, selected, selection, spec, memo_key = \
                self._sweep_inputs(config, quick, scale, None, cases,
                                   point_runtimes, scenario)
            if memo_key in self._sweep_memo or memo_key in seen:
                continue
            seen.add(memo_key)
            pending.append((memo_key, config, workers, selected, selection,
                            spec))
        if not pending:
            # Nothing simulated: a previous sweep's timings must not be
            # attributed to this grid.
            self.case_timings = {}
            self.case_rates = {}
            return
        units = [
            CaseUnit(config, case, workers, selection, spec)
            for _memo_key, config, workers, selected, selection, spec
            in pending
            for case in selected
        ]
        timings: dict = {}
        rates: dict = {}
        failures: List[UnitFailure] = []
        runs = run_case_grid(units, jobs=self.jobs, cache=self.cache,
                             timings=timings, executor=self.executor,
                             keep_going=self.keep_going,
                             retries=self.retries, failures=failures,
                             tracer=self.tracer, rates=rates)
        self.unit_failures.extend(failures)
        self.case_timings = timings
        self.case_rates = rates
        if self.trajectory is not None:
            self.trajectory.record_sweep("grid", timings,
                                         label=self.run_label, rates=rates)
        # Results are slot-aligned with the submitted units (failed slots
        # are None under keep-going), so per-point slicing stays correct
        # even for partial sweeps; each point memoises its completed runs
        # and, when partial, the failures that belong to its slot range.
        offset = 0
        for memo_key, _config, _workers, selected, _sel, _spec in pending:
            point_runs = runs[offset:offset + len(selected)]
            self._sweep_memo[memo_key] = [run for run in point_runs
                                          if run is not None]
            point_failures = tuple(
                failure for failure in failures
                if offset <= failure.slot < offset + len(selected))
            if point_failures:
                self._partial_memo[memo_key] = point_failures
            offset += len(selected)

    def _run_point(
        self,
        point: GridPoint,
        quick: bool,
        scale: float,
        num_tasks: Optional[int],
        cases: Optional[Sequence[BenchmarkCase]],
        runtimes: Optional[Sequence[str]] = None,
        scenario: Optional[ScenarioSpec] = None,
    ) -> object:
        """Execute one grid point under its overridden configuration."""
        config = point.apply(self.config)
        experiment_id = point.experiment_id
        spec = EXPERIMENT_SPECS[experiment_id]
        if experiment_id == "scaling_curves":
            return self._run_scaling(quick, scale, cases, None, runtimes,
                                     config=config, scenario=scenario)
        if experiment_id == "figure9":
            return self._run_sweep(quick, scale, None, cases, config=config,
                                   runtimes=runtimes, scenario=scenario)
        if spec.is_derived:
            return self._run_derived(experiment_id, quick, scale, None,
                                     num_tasks, cases, config=config,
                                     scenario=scenario)
        return self._run_simple(experiment_id, num_tasks, config=config)

    def _run_simple(self, experiment_id: str,
                    num_tasks: Optional[int],
                    config: Optional[SimConfig] = None) -> object:
        """Self-contained experiments: run the registry runner, cached."""
        config = config if config is not None else self.config
        runner = EXPERIMENT_SPECS[experiment_id].runner
        parameters = {}
        if experiment_id in _DEFAULT_NUM_TASKS:
            parameters["num_tasks"] = (
                num_tasks if num_tasks is not None
                else _DEFAULT_NUM_TASKS[experiment_id]
            )
        return self._run_cached(
            experiment_id, parameters,
            lambda: runner(config, **parameters),
            config=config,
        )

    def _run_cached(self, experiment_id: str, parameters: dict,
                    compute, config: Optional[SimConfig] = None) -> object:
        """Whole-result caching for the non-sweep experiments."""
        config = config if config is not None else self.config
        key = None
        if self.cache is not None:
            key = experiment_cache_key(experiment_id, config, parameters)
            payload = self.cache.get(key)
            if payload is not None:
                try:
                    return decode(payload)
                except (EvaluationError, KeyError, TypeError, ValueError):
                    # Entry parsed as JSON but not as a result: a miss.
                    self.cache.demote_hit(key)
        result = compute()
        if self.cache is not None and key is not None:
            self.cache.put(key, encode(result), experiment=experiment_id)
        return result

    def _run_derived(
        self,
        experiment_id: str,
        quick: bool,
        scale: float,
        num_workers: Optional[int],
        num_tasks: Optional[int],
        cases: Optional[Sequence[BenchmarkCase]],
        config: Optional[SimConfig] = None,
        scenario: Optional[ScenarioSpec] = None,
    ) -> object:
        """Experiments computed from the Figure 9 sweep."""
        config = config if config is not None else self.config
        spec = EXPERIMENT_SPECS[experiment_id]
        if spec.depends_on != ("figure9",):
            raise EvaluationError(
                f"unsupported dependency chain {spec.depends_on!r} "
                f"for {experiment_id!r}"
            )
        # Dependency runs go through _run_sweep directly (not self.run) so
        # they share the memo/cache without re-saving the figure9 artifact
        # once per derived experiment.
        runs = self._run_sweep(quick, scale, num_workers, cases,
                               config=config, scenario=scenario)
        runner = spec.runner
        if experiment_id == "figure10":
            # Figure 10 overlays the runs on the MTT bound curves, which
            # come from their own (cached) overhead measurement.
            tasks = (num_tasks if num_tasks is not None
                     else _DEFAULT_NUM_TASKS["figure10"])
            sizes = figure10_bound_task_sizes()
            bounds = self._run_cached(
                "figure6", {"num_tasks": tasks, "task_sizes": sizes},
                lambda: figure6_mtt_bounds(config, task_sizes=sizes,
                                           num_tasks=tasks),
                config=config,
            )
            return runner(runs, config, bounds)
        return runner(runs)

    def scaling_overheads(
        self,
        runtimes: Sequence[str],
        config: Optional[SimConfig] = None,
    ) -> Dict[str, float]:
        """Single-worker Task-Chain ``Lo`` per runtime, engine-cached.

        The measurement behind every scaling curve's MTT bound; whole-result
        cached per runtime, so repeated studies/sweeps measure each runtime
        once.
        """
        config = config if config is not None else self.config
        return {
            runtime: self._run_cached(
                f"scaling-overhead-{runtime}",
                {"workload": "task-chain", "dependences": 1,
                 "num_tasks": DEFAULT_OVERHEAD_NUM_TASKS},
                lambda runtime=runtime: measure_lifetime_overhead(
                    runtime, "task-chain", 1, DEFAULT_OVERHEAD_NUM_TASKS,
                    config),
                config=config,
            )
            for runtime in runtimes
        }

    def _run_scaling(
        self,
        quick: bool,
        scale: float,
        cases: Optional[Sequence[BenchmarkCase]],
        core_counts: Optional[Sequence[int]],
        runtimes: Optional[Sequence[str]],
        config: Optional[SimConfig] = None,
        scenario: Optional[ScenarioSpec] = None,
    ) -> object:
        """The scaling-curve grid: every case at every core count.

        Fans the (case × core count) product through the shared pool/cache
        via :meth:`run_grid` machinery, measures (and caches) the
        single-worker lifetime overheads behind the MTT bounds, and
        assembles :class:`~repro.eval.scaling.ScalingCurve` records.
        """
        config = config if config is not None else self.config
        counts = normalize_core_counts(core_counts)
        selected_runtimes = normalize_runtimes(runtimes)
        # Whole-result caching under a grid-aware key: a warm re-run skips
        # even the per-case lookups and the bound-overhead measurements.
        # The scenario fingerprint only enters the key when non-default, so
        # deterministic scaling keys stay byte-identical to older releases.
        key = None
        if self.cache is not None:
            parameters = {
                "quick": quick,
                "scale": scale,
                "runtimes": selected_runtimes,
                "cases": None if cases is None else [
                    {"benchmark": case.benchmark, "label": case.label,
                     "builder": case.builder, "params": case.params}
                    for case in cases
                ],
            }
            scenario_payload = scenario_fingerprint(scenario)
            if scenario_payload is not None:
                parameters["scenario"] = scenario_payload
            key = grid_cache_key(
                "scaling_curves", config,
                [{"num_cores": count} for count in counts],
                parameters,
            )
            payload = self.cache.get(key)
            if payload is not None:
                try:
                    curves = decode(payload)
                except (EvaluationError, KeyError, TypeError, ValueError):
                    curves = None
                if isinstance(curves, list) and all(
                        isinstance(curve, ScalingCurve) for curve in curves):
                    return curves
                self.cache.demote_hit(key)
        grid = SweepGrid.cores(("figure9",), counts)
        points = grid.points()
        failures_before = len(self.unit_failures)
        self._prime_grid_sweeps(points, quick, scale, cases,
                                base_config=config,
                                runtimes=selected_runtimes,
                                scenario=scenario)
        grid_timings = dict(self.case_timings)
        grid_rates = dict(self.case_rates)
        runs_by_cores: Dict[int, List[BenchmarkRun]] = {}
        for point in points:
            point_config = point.apply(config)
            cores = point_config.machine.num_cores
            runs_by_cores[cores] = self._run_sweep(
                quick, scale, None, cases, config=point_config,
                runtimes=selected_runtimes, scenario=scenario)
        self.case_timings = grid_timings
        self.case_rates = grid_rates
        partial = len(self.unit_failures) > failures_before
        if partial:
            # Keep-going mode with failures: assemble curves from the
            # cases that completed at *every* core count, so one failed
            # column doesn't abort the whole experiment.
            runs_by_cores, _dropped = align_runs_by_cores(runs_by_cores)
        overheads = self.scaling_overheads(selected_runtimes, config=config)
        curves = build_scaling_curves(runs_by_cores, overheads,
                                      selected_runtimes)
        if self.cache is not None and key is not None and not partial:
            # A partial curve set must never be cached under the
            # full-grid key: a later healthy run would be served the gaps.
            self.cache.put(key, encode(curves), experiment="scaling_curves")
        return curves
