"""Behavioural model of the Picos hardware task scheduler.

Picos exposes three queues to the outside world (Section IV-D):

* a **submission queue** receiving 32-bit task-descriptor packets,
* a **ready queue** through which it announces ready-to-run tasks as three
  32-bit packets each,
* a **retirement queue** receiving the Picos ID of tasks that finished.

Internally the device reassembles 48-packet descriptors, performs hardware
dependence inference (one pipeline pass per dependence), stores the task in
its reservation station, and emits tasks whose predecessor count drops to
zero.  The model charges the per-stage latencies from
:class:`~repro.common.config.PicosCosts` and applies the reservation-station
capacity as back-pressure on the submission queue, which is what eventually
makes the non-blocking submission instructions return their failure flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from collections import deque

from repro.common.config import PicosCosts
from repro.common.errors import PicosError
from repro.common.stats import Stats
from repro.picos.dependence import TaskGraph
from repro.picos.packets import (
    PACKETS_PER_DESCRIPTOR,
    TaskDescriptor,
    decode_descriptor,
)
from repro.sim.engine import Delay, Engine, Get, ProcessGen
from repro.sim.queues import DecoupledQueue

__all__ = ["ReadyPacket", "ReadyTask", "PicosDevice"]


@dataclass(frozen=True)
class ReadyPacket:
    """One of the three 32-bit packets Picos emits per ready task."""

    word: int
    index: int          # 0, 1 or 2 within the ready-task triple
    picos_id: int
    sw_id: int


@dataclass(frozen=True)
class ReadyTask:
    """A fully assembled ready-task announcement (Picos ID, SW ID)."""

    picos_id: int
    sw_id: int


class PicosDevice:
    """The Picos accelerator, driven through its three hardware queues."""

    def __init__(self, engine: Engine, costs: PicosCosts,
                 name: str = "picos") -> None:
        self.engine = engine
        self.costs = costs
        self.name = name
        self.stats = Stats(name)
        self.graph = TaskGraph(capacity=costs.max_in_flight_tasks)
        #: sw_id keyed by the Picos-assigned task id, for ready announcements.
        self._sw_ids: Dict[int, int] = {}
        self.submission_queue: DecoupledQueue[int] = DecoupledQueue(
            engine, costs.submission_queue_depth, name=f"{name}.submission"
        )
        self.ready_queue: DecoupledQueue[ReadyPacket] = DecoupledQueue(
            engine, costs.ready_queue_depth * 3, name=f"{name}.ready"
        )
        self.retirement_queue: DecoupledQueue[int] = DecoupledQueue(
            engine, costs.retirement_queue_depth, name=f"{name}.retirement"
        )
        #: Tasks whose predecessors are satisfied but whose three ready
        #: packets have not yet been pushed into the ready queue.
        self._ready_backlog: Deque[ReadyTask] = deque()
        self._emitter_busy = False
        # Whenever the consumer drains ready packets, try to emit more.
        self.ready_queue.subscribe_dequeue(self._kick_emitter)
        self._submission_process = engine.spawn(
            self._submission_pipeline(), name=f"{name}.submit", daemon=True
        )
        self._retirement_process = engine.spawn(
            self._retirement_pipeline(), name=f"{name}.retire", daemon=True
        )

    # ------------------------------------------------------------------ #
    # Public queries (used by the Manager and by tests)
    # ------------------------------------------------------------------ #
    @property
    def in_flight_tasks(self) -> int:
        """Number of tasks currently tracked by the reservation station."""
        return self.graph.in_flight

    def can_accept_submission(self) -> bool:
        """True when the submission queue can take one more packet."""
        return self.submission_queue.ready

    def sw_id_of(self, picos_id: int) -> int:
        """The software id the runtime attached to ``picos_id``."""
        try:
            return self._sw_ids[picos_id]
        except KeyError as exc:
            raise PicosError(f"unknown picos id {picos_id}") from exc

    # ------------------------------------------------------------------ #
    # Pipelines
    # ------------------------------------------------------------------ #
    def _submission_pipeline(self) -> ProcessGen:
        """Reassemble 48-packet descriptors and insert them in the graph."""
        buffer: List[int] = []
        while True:
            packet = yield Get(self.submission_queue)
            yield Delay(self.costs.submission_packet_cycles)
            buffer.append(packet)
            self.stats.incr("submission_packets")
            if len(buffer) < PACKETS_PER_DESCRIPTOR:
                continue
            descriptor = decode_descriptor(buffer)
            buffer = []
            yield from self._insert_task(descriptor)

    def _insert_task(self, descriptor: TaskDescriptor) -> ProcessGen:
        analysis = (
            self.costs.task_insert_cycles
            + self.costs.dependence_analysis_cycles * descriptor.num_dependences
        )
        if analysis:
            yield Delay(analysis)
        # Capacity back-pressure: wait until the reservation station frees a
        # slot.  While waiting, the submission queue fills up and the
        # Submission Handler (and ultimately the non-blocking instructions)
        # observe the back-pressure.
        while not self.graph.has_capacity():
            yield Delay(self.costs.retire_cycles)
        task_id, ready = self.graph.submit(descriptor.sw_id,
                                           descriptor.dependences)
        self._sw_ids[task_id] = descriptor.sw_id
        self.stats.incr("tasks_accepted")
        self.stats.observe("dependences_per_task", descriptor.num_dependences)
        if ready:
            self._schedule_ready(ReadyTask(task_id, descriptor.sw_id))

    def _retirement_pipeline(self) -> ProcessGen:
        """Consume retirement packets and wake dependent tasks."""
        while True:
            picos_id = yield Get(self.retirement_queue)
            yield Delay(self.costs.retire_cycles)
            newly_ready = self.graph.retire(picos_id)
            self._sw_ids.pop(picos_id, None)
            self.stats.incr("tasks_retired")
            if newly_ready:
                yield Delay(
                    self.costs.wakeup_per_dependant_cycles * len(newly_ready)
                )
            for ready_id in newly_ready:
                self._schedule_ready(
                    ReadyTask(ready_id, self.graph.task(ready_id).sw_id)
                )

    # ------------------------------------------------------------------ #
    # Ready-task emission
    # ------------------------------------------------------------------ #
    def _schedule_ready(self, ready: ReadyTask) -> None:
        self._ready_backlog.append(ready)
        self.stats.incr("tasks_made_ready")
        self._kick_emitter()

    def _kick_emitter(self) -> None:
        if self._emitter_busy or not self._ready_backlog:
            return
        # Each ready task needs room for its three packets.
        if self.ready_queue.capacity - len(self.ready_queue) < 3:
            return
        self._emitter_busy = True
        self.engine.schedule_callback(self.costs.ready_emit_cycles,
                                      self._emit_ready)

    def _emit_ready(self) -> None:
        self._emitter_busy = False
        if not self._ready_backlog:
            return
        if self.ready_queue.capacity - len(self.ready_queue) < 3:
            # No room: the permanent dequeue observer re-kicks the emitter
            # once the consumer drains packets.
            return
        ready = self._ready_backlog.popleft()
        words = self._ready_words(ready)
        for index, word in enumerate(words):
            self.ready_queue.try_put(
                ReadyPacket(word=word, index=index,
                            picos_id=ready.picos_id, sw_id=ready.sw_id)
            )
        self.stats.incr("ready_tasks_emitted")
        self._kick_emitter()

    @staticmethod
    def _ready_words(ready: ReadyTask) -> List[int]:
        mask = (1 << 32) - 1
        return [
            ready.picos_id & mask,
            (ready.sw_id >> 32) & mask,
            ready.sw_id & mask,
        ]
