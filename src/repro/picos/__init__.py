"""Picos hardware task scheduler: packets, dependence tracking, device."""

from repro.picos.axi import AxiPicosInterface
from repro.picos.dependence import DependenceTracker, TaskGraph, TaskState, TrackedTask
from repro.picos.device import PicosDevice, ReadyPacket, ReadyTask
from repro.picos.packets import (
    HEADER_PACKETS,
    MAX_DEPENDENCES,
    PACKETS_PER_DEPENDENCE,
    PACKETS_PER_DESCRIPTOR,
    Direction,
    TaskDependence,
    TaskDescriptor,
    decode_descriptor,
    encode_descriptor,
    encode_nonzero_packets,
    nonzero_packet_count,
    zero_packet_count,
)

__all__ = [
    "AxiPicosInterface",
    "DependenceTracker",
    "TaskGraph",
    "TaskState",
    "TrackedTask",
    "PicosDevice",
    "ReadyPacket",
    "ReadyTask",
    "HEADER_PACKETS",
    "MAX_DEPENDENCES",
    "PACKETS_PER_DEPENDENCE",
    "PACKETS_PER_DESCRIPTOR",
    "Direction",
    "TaskDependence",
    "TaskDescriptor",
    "decode_descriptor",
    "encode_descriptor",
    "encode_nonzero_packets",
    "nonzero_packet_count",
    "zero_packet_count",
]
