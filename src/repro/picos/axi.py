"""MMIO/AXI access path to Picos, modelling the Picos++ baseline system.

The previous state of the art (Tan et al. 2017, "Nanos-AXI" in the paper's
figures) attaches Picos++ to a quad-core ARM SoC behind an AXI interconnect:
the runtime reaches the scheduler through memory-mapped transactions handled
by a DMA-like communication module, which costs hundreds of core cycles per
interaction instead of the handful of cycles a RoCC instruction costs.

:class:`AxiPicosInterface` wraps the very same :class:`PicosDevice` model but
charges AXI transaction latencies for every submission, work-fetch and
retirement, so the only difference between the Nanos-AXI and Nanos-RV
runtime models is the communication path — which is precisely the variable
the paper isolates.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.common.config import AxiCosts
from repro.common.errors import PicosError
from repro.common.stats import Stats
from repro.picos.device import PicosDevice, ReadyTask
from repro.picos.packets import TaskDescriptor, encode_descriptor
from repro.sim.engine import Delay, Engine, ProcessGen

__all__ = ["AxiPicosInterface"]


class AxiPicosInterface:
    """Software-visible Picos access through modelled AXI transactions."""

    def __init__(self, engine: Engine, device: PicosDevice, costs: AxiCosts,
                 name: str = "axi_picos") -> None:
        self.engine = engine
        self.device = device
        self.costs = costs
        self.name = name
        self.stats = Stats(name)
        self._partial_ready: list = []
        #: CPU-visible staging buffer filled by DMA refills.  Chained
        #: workloads pay one refill per task; parallel ones amortise it.
        self._staging: list = []

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit_task(self, descriptor: TaskDescriptor) -> ProcessGen:
        """Submit a full task descriptor over AXI (blocking, DMA-mediated)."""
        latency = (
            self.costs.submit_transaction
            + self.costs.per_dependence * descriptor.num_dependences
        )
        self.stats.incr("axi_submissions")
        self.stats.add("axi_submit_cycles", latency)
        yield Delay(latency)
        # The DMA engine streams all 48 packets into the Picos submission
        # queue; the stream itself proceeds at queue speed.
        for packet in encode_descriptor(descriptor):
            from repro.sim.engine import Put

            yield Put(self.device.submission_queue, packet)

    # ------------------------------------------------------------------ #
    # Work fetch
    # ------------------------------------------------------------------ #
    def fetch_ready_task(self) -> Generator:
        """Poll the scheduler for a ready task; returns it or ``None``.

        A poll costs a full AXI read transaction whether or not a task is
        available, and an empty CPU-visible staging buffer additionally
        costs a DMA refill that drains whatever Picos has emitted so far —
        this is the cost asymmetry that makes the baseline slow for
        fine-grained and chained workloads.
        """
        self.stats.incr("axi_ready_polls")
        yield Delay(self.costs.ready_transaction)
        if not self._staging:
            if not self.device.ready_queue.valid:
                self.stats.incr("axi_ready_misses")
                return None
            # DMA transfer of every complete descriptor currently available.
            yield Delay(self.costs.dma_refill_cycles)
            self.stats.incr("axi_dma_refills")
            while True:
                ready = self._assemble_ready()
                if ready is None:
                    break
                self._staging.append(ready)
            if not self._staging:
                self.stats.incr("axi_ready_misses")
                return None
        ready = self._staging.pop(0)
        self.device.graph.mark_running(ready.picos_id)
        self.stats.incr("axi_ready_hits")
        return ready

    def _assemble_ready(self) -> Optional[ReadyTask]:
        # Drain whole 3-packet triples from the device ready queue.
        while len(self._partial_ready) < 3:
            packet = self.device.ready_queue.try_get()
            if packet is None:
                return None
            self._partial_ready.append(packet)
        first, _second, _third = self._partial_ready[:3]
        del self._partial_ready[:3]
        return ReadyTask(picos_id=first.picos_id, sw_id=first.sw_id)

    # ------------------------------------------------------------------ #
    # Retirement
    # ------------------------------------------------------------------ #
    def retire_task(self, picos_id: int) -> ProcessGen:
        """Notify the scheduler that ``picos_id`` finished (AXI write)."""
        self.stats.incr("axi_retirements")
        yield Delay(self.costs.retire_transaction)
        from repro.sim.engine import Put

        yield Put(self.device.retirement_queue, picos_id)
