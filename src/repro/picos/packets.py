"""Picos task-descriptor packet encoding (Figure 3 of the paper).

Every task submitted to Picos is described by exactly 48 32-bit packets:

* a 3-packet header: task-ID (high), task-ID (low), number of dependences;
* fifteen 3-packet dependence slots: address (high), address (low),
  directionality;
* unused slots are zero packets.

A task with ``N`` dependences (0 ≤ N ≤ 15) therefore has ``3 + 3·N``
non-zero packets followed by ``(15 − N)·3`` zero packets.  In the paper's
system the runtime only transmits the non-zero prefix; the Zero Padder in
Picos Manager appends the rest (Section IV-E.1).  This module implements
both the full 48-packet encoding and the compact non-zero prefix, plus the
corresponding decoder, so the padding logic can be verified end to end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.errors import PicosError

__all__ = [
    "Direction",
    "TaskDependence",
    "TaskDescriptor",
    "PACKETS_PER_DESCRIPTOR",
    "MAX_DEPENDENCES",
    "HEADER_PACKETS",
    "PACKETS_PER_DEPENDENCE",
    "nonzero_packet_count",
    "zero_packet_count",
    "encode_descriptor",
    "encode_nonzero_packets",
    "decode_descriptor",
]

#: Total packets in a Picos task descriptor.
PACKETS_PER_DESCRIPTOR = 48
#: Maximum number of monitored pointer parameters per task.
MAX_DEPENDENCES = 15
#: Packets in the descriptor header (task-ID high/low, #deps).
HEADER_PACKETS = 3
#: Packets per dependence slot (address high/low, directionality).
PACKETS_PER_DEPENDENCE = 3

_WORD_MASK = (1 << 32) - 1


class Direction(enum.IntEnum):
    """Directionality of a monitored pointer parameter."""

    IN = 1
    OUT = 2
    INOUT = 3

    @property
    def reads(self) -> bool:
        """True when the task reads through this parameter."""
        return self in (Direction.IN, Direction.INOUT)

    @property
    def writes(self) -> bool:
        """True when the task writes through this parameter."""
        return self in (Direction.OUT, Direction.INOUT)


@dataclass(frozen=True)
class TaskDependence:
    """One monitored pointer parameter: a 64-bit address and a direction."""

    address: int
    direction: Direction

    def __post_init__(self) -> None:
        if not 0 <= self.address < (1 << 64):
            raise PicosError(f"dependence address is not 64-bit: {self.address:#x}")
        if not isinstance(self.direction, Direction):
            raise PicosError(f"invalid direction: {self.direction!r}")


@dataclass(frozen=True)
class TaskDescriptor:
    """The software-visible description of one task submitted to Picos."""

    sw_id: int
    dependences: Tuple[TaskDependence, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.sw_id < (1 << 64):
            raise PicosError(f"sw_id is not a 64-bit value: {self.sw_id}")
        if len(self.dependences) > MAX_DEPENDENCES:
            raise PicosError(
                f"Picos supports at most {MAX_DEPENDENCES} dependences per task, "
                f"got {len(self.dependences)}"
            )
        if not isinstance(self.dependences, tuple):
            object.__setattr__(self, "dependences", tuple(self.dependences))

    @property
    def num_dependences(self) -> int:
        """Number of monitored pointer parameters."""
        return len(self.dependences)

    @property
    def nonzero_packets(self) -> int:
        """Packets the runtime must transmit (header + used slots)."""
        return nonzero_packet_count(self.num_dependences)

    @property
    def zero_packets(self) -> int:
        """Packets the Zero Padder appends."""
        return zero_packet_count(self.num_dependences)


def nonzero_packet_count(num_dependences: int) -> int:
    """Non-zero packets of a descriptor with ``num_dependences`` deps."""
    _check_dep_count(num_dependences)
    return HEADER_PACKETS + PACKETS_PER_DEPENDENCE * num_dependences


def zero_packet_count(num_dependences: int) -> int:
    """Zero packets padding a descriptor with ``num_dependences`` deps."""
    _check_dep_count(num_dependences)
    return (MAX_DEPENDENCES - num_dependences) * PACKETS_PER_DEPENDENCE


def encode_nonzero_packets(descriptor: TaskDescriptor) -> List[int]:
    """Encode only the non-zero prefix the runtime transmits."""
    packets = [
        (descriptor.sw_id >> 32) & _WORD_MASK,
        descriptor.sw_id & _WORD_MASK,
        descriptor.num_dependences & _WORD_MASK,
    ]
    for dependence in descriptor.dependences:
        packets.append((dependence.address >> 32) & _WORD_MASK)
        packets.append(dependence.address & _WORD_MASK)
        packets.append(int(dependence.direction) & _WORD_MASK)
    return packets


def encode_descriptor(descriptor: TaskDescriptor) -> List[int]:
    """Encode the full 48-packet sequence Picos expects."""
    packets = encode_nonzero_packets(descriptor)
    packets.extend([0] * zero_packet_count(descriptor.num_dependences))
    return packets


def decode_descriptor(packets: Sequence[int]) -> TaskDescriptor:
    """Decode a full 48-packet sequence back into a :class:`TaskDescriptor`.

    Raises :class:`~repro.common.errors.PicosError` if the sequence has the
    wrong length, an out-of-range dependence count, an invalid
    directionality code, or non-zero padding where zeros are required.
    """
    if len(packets) != PACKETS_PER_DESCRIPTOR:
        raise PicosError(
            f"descriptor must be {PACKETS_PER_DESCRIPTOR} packets, got {len(packets)}"
        )
    for index, packet in enumerate(packets):
        if not 0 <= packet <= _WORD_MASK:
            raise PicosError(f"packet {index} is not a 32-bit word: {packet!r}")
    sw_id = (packets[0] << 32) | packets[1]
    num_deps = packets[2]
    if num_deps > MAX_DEPENDENCES:
        raise PicosError(f"descriptor claims {num_deps} dependences (max 15)")
    dependences = []
    for slot in range(num_deps):
        base = HEADER_PACKETS + slot * PACKETS_PER_DEPENDENCE
        address = (packets[base] << 32) | packets[base + 1]
        direction_code = packets[base + 2]
        try:
            direction = Direction(direction_code)
        except ValueError as exc:
            raise PicosError(
                f"invalid directionality code {direction_code} in slot {slot}"
            ) from exc
        dependences.append(TaskDependence(address, direction))
    padding_start = HEADER_PACKETS + num_deps * PACKETS_PER_DEPENDENCE
    if any(packets[index] != 0 for index in range(padding_start,
                                                  PACKETS_PER_DESCRIPTOR)):
        raise PicosError("non-zero packet found in the zero-padding region")
    return TaskDescriptor(sw_id=sw_id, dependences=tuple(dependences))


def _check_dep_count(num_dependences: int) -> None:
    if not 0 <= num_dependences <= MAX_DEPENDENCES:
        raise PicosError(
            f"dependence count must be between 0 and {MAX_DEPENDENCES}, "
            f"got {num_dependences}"
        )
