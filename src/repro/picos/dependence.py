"""Dependence tracking: the task-graph logic inside Picos.

Picos infers, in hardware, the same data-dependence relations a software
runtime would (Section III-A of the paper): a task *B* depends on an earlier
task *A* when one of RAW, WAW or WAR holds between their monitored pointer
parameters.  This module implements that inference over 64-bit addresses and
maintains the in-flight task graph:

* :class:`DependenceTracker` — per-address version records (last writer and
  readers since the last write) from which predecessor sets are computed,
* :class:`TaskGraph` — per-task state (pending predecessor count, successor
  lists) and the ready/retire transitions.

The same classes back both the hardware Picos model and the pure-software
dependence inference of Nanos-SW; only the cycle costs charged around them
differ, which is exactly the paper's point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import PicosError
from repro.picos.packets import Direction, TaskDependence

__all__ = ["TaskState", "TrackedTask", "DependenceTracker", "TaskGraph"]


class TaskState(enum.Enum):
    """Lifecycle of a task inside the dependence tracker."""

    PENDING = "pending"
    READY = "ready"
    RUNNING = "running"
    RETIRED = "retired"


@dataclass
class TrackedTask:
    """Book-keeping record of one in-flight task."""

    task_id: int
    sw_id: int
    dependences: Tuple[TaskDependence, ...]
    state: TaskState = TaskState.PENDING
    pending_predecessors: int = 0
    successors: List[int] = field(default_factory=list)

    @property
    def is_ready(self) -> bool:
        """True when no unfinished predecessor remains."""
        return self.pending_predecessors == 0 and self.state is TaskState.PENDING


@dataclass
class _AddressRecord:
    """Per-address version record used for dependence inference."""

    last_writer: Optional[int] = None
    readers_since_last_write: Set[int] = field(default_factory=set)


class DependenceTracker:
    """Computes RAW / WAW / WAR predecessors for newly submitted tasks."""

    def __init__(self) -> None:
        self._records: Dict[int, _AddressRecord] = {}
        self.raw_edges = 0
        self.waw_edges = 0
        self.war_edges = 0

    def predecessors_for(
        self,
        task_id: int,
        dependences: Sequence[TaskDependence],
        is_active: "callable",
    ) -> Set[int]:
        """Register ``task_id``'s accesses and return its active predecessors.

        ``is_active(other_id)`` must return True while ``other_id`` has not
        retired; edges to retired tasks are trivially satisfied and are not
        reported.
        """
        predecessors: Set[int] = set()
        for dependence in dependences:
            record = self._records.setdefault(dependence.address, _AddressRecord())
            direction = dependence.direction
            if direction.reads:
                if record.last_writer is not None and record.last_writer != task_id \
                        and is_active(record.last_writer):
                    predecessors.add(record.last_writer)
                    self.raw_edges += 1
            if direction.writes:
                if record.last_writer is not None and record.last_writer != task_id \
                        and is_active(record.last_writer):
                    predecessors.add(record.last_writer)
                    self.waw_edges += 1
                for reader in record.readers_since_last_write:
                    if reader != task_id and is_active(reader):
                        predecessors.add(reader)
                        self.war_edges += 1
            # Update the version record *after* computing edges.
            if direction.writes:
                record.last_writer = task_id
                record.readers_since_last_write = set()
            if direction.reads and not direction.writes:
                record.readers_since_last_write.add(task_id)
        return predecessors

    @property
    def tracked_addresses(self) -> int:
        """Number of distinct addresses with a version record."""
        return len(self._records)

    def forget_task(self, task_id: int) -> None:
        """Drop references to a retired task (keeps records bounded)."""
        stale = []
        for address, record in self._records.items():
            if record.last_writer == task_id:
                record.last_writer = None
            record.readers_since_last_write.discard(task_id)
            if record.last_writer is None and not record.readers_since_last_write:
                stale.append(address)
        for address in stale:
            del self._records[address]


class TaskGraph:
    """The in-flight task graph maintained by Picos (or by Nanos-SW).

    Capacity-bounded: the hardware task reservation station holds at most
    ``capacity`` non-retired tasks; :meth:`has_capacity` is what produces the
    back-pressure that ultimately makes submission instructions fail.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise PicosError("task graph capacity must be positive")
        self.capacity = capacity
        self.tracker = DependenceTracker()
        self._tasks: Dict[int, TrackedTask] = {}
        self._next_task_id = 0
        self.total_submitted = 0
        self.total_retired = 0
        self.max_concurrent = 0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def in_flight(self) -> int:
        """Tasks submitted and not yet retired."""
        return len(self._tasks)

    def has_capacity(self) -> bool:
        """True when one more task can be accepted."""
        return len(self._tasks) < self.capacity

    def task(self, task_id: int) -> TrackedTask:
        """The tracked record of ``task_id`` (must be in flight)."""
        try:
            return self._tasks[task_id]
        except KeyError as exc:
            raise PicosError(f"unknown or retired task id {task_id}") from exc

    def is_active(self, task_id: int) -> bool:
        """True while ``task_id`` is in flight (not retired)."""
        return task_id in self._tasks

    def pending_tasks(self) -> List[int]:
        """Ids of tasks still waiting on predecessors."""
        return [t.task_id for t in self._tasks.values()
                if t.state is TaskState.PENDING and t.pending_predecessors > 0]

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def submit(self, sw_id: int,
               dependences: Sequence[TaskDependence]) -> Tuple[int, bool]:
        """Insert a new task; returns ``(task_id, immediately_ready)``."""
        if not self.has_capacity():
            raise PicosError("task graph is full (reservation station overflow)")
        task_id = self._next_task_id
        self._next_task_id += 1
        record = TrackedTask(task_id=task_id, sw_id=sw_id,
                             dependences=tuple(dependences))
        predecessors = self.tracker.predecessors_for(
            task_id, record.dependences, self.is_active
        )
        record.pending_predecessors = len(predecessors)
        self._tasks[task_id] = record
        for predecessor_id in predecessors:
            self._tasks[predecessor_id].successors.append(task_id)
        self.total_submitted += 1
        self.max_concurrent = max(self.max_concurrent, len(self._tasks))
        ready = record.pending_predecessors == 0
        if ready:
            record.state = TaskState.READY
        return task_id, ready

    def mark_running(self, task_id: int) -> None:
        """Record that a ready task has been handed to a core."""
        record = self.task(task_id)
        if record.state is not TaskState.READY:
            raise PicosError(
                f"task {task_id} fetched while in state {record.state.value}"
            )
        record.state = TaskState.RUNNING

    def retire(self, task_id: int) -> List[int]:
        """Retire ``task_id`` and return ids of tasks that became ready."""
        record = self.task(task_id)
        if record.state is TaskState.PENDING and record.pending_predecessors > 0:
            raise PicosError(f"task {task_id} retired before becoming ready")
        newly_ready: List[int] = []
        for successor_id in record.successors:
            successor = self._tasks.get(successor_id)
            if successor is None:
                continue
            successor.pending_predecessors -= 1
            if successor.pending_predecessors < 0:
                raise PicosError(
                    f"task {successor_id} has negative predecessor count"
                )
            if successor.pending_predecessors == 0 and \
                    successor.state is TaskState.PENDING:
                successor.state = TaskState.READY
                newly_ready.append(successor_id)
        record.state = TaskState.RETIRED
        del self._tasks[task_id]
        self.tracker.forget_task(task_id)
        self.total_retired += 1
        return newly_ready
