"""Core machinery of the invariant linter: findings, file context, runner.

Each file is parsed once; a single recursive walk dispatches every node to
the rules subscribed to its type while maintaining the lexical context
(enclosing functions, classes, ``raise`` statements) that rules need to
reason about scope.  A per-file symbol index — imported names, methods
decorated with ``@property``, module-level definitions — is built in a
cheap pre-pass so rules never re-walk the tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "LintRule",
    "LintError",
    "iter_python_files",
    "lint_files",
    "lint_paths",
    "normalize_relpath",
]

#: Pragma grammar: ``# repro: lint-ignore[rule-a, rule-b] -- optional reason``.
#: A pragma on a line suppresses findings reported for that line; a pragma on
#: a comment-only line additionally covers the following line.
_PRAGMA = re.compile(r"#\s*repro:\s*lint-ignore\[([^\]]*)\]")

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class LintError(Exception):
    """Raised for linter usage errors (unknown rule, unreadable path)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    file: str
    line: int
    col: int
    message: str
    hint: str = ""

    def describe(self) -> str:
        """``file:line:col: [rule] message`` — the text-reporter line."""
        return f"{self.file}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class FileContext:
    """Everything rules may consult about the file being linted.

    Traversal state (``function_stack``, ``class_stack``, ``raise_depth``)
    is mutated by the walker as it descends, so a rule's ``visit`` sees the
    lexical context of the node it was handed.
    """

    def __init__(self, path: Path, relpath: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.pragmas = _parse_pragmas(self.lines)
        # --- per-file symbol index (pre-pass) -------------------------- #
        #: local alias -> dotted module path ("np" -> "numpy").
        self.imports: Dict[str, str] = {}
        #: names of methods decorated with @property / cached_property.
        self.properties: Set[str] = set()
        #: names bound at module level (defs, classes, assignments).
        self.module_names: Set[str] = set()
        self._build_index()
        # --- traversal state ------------------------------------------- #
        self.parents: Dict[ast.AST, ast.AST] = {}
        self.function_stack: List[ast.AST] = []
        self.class_stack: List[ast.ClassDef] = []
        self.raise_depth = 0

    # ------------------------------------------------------------------ #
    # Symbol index
    # ------------------------------------------------------------------ #
    def _build_index(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = alias.name
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = (
                        f"{module}.{alias.name}" if module else alias.name
                    )
            elif isinstance(node, _FUNCTION_NODES):
                for decorator in node.decorator_list:
                    name = decorator_name(decorator)
                    if name in ("property", "cached_property",
                                "functools.cached_property"):
                        self.properties.add(node.name)
        for node in self.tree.body:
            if isinstance(node, (*_FUNCTION_NODES, ast.ClassDef)):
                self.module_names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_names.add(target.id)

    # ------------------------------------------------------------------ #
    # Conveniences for rules
    # ------------------------------------------------------------------ #
    @property
    def current_function(self) -> Optional[ast.AST]:
        """Innermost enclosing def/lambda, or ``None`` at module level."""
        return self.function_stack[-1] if self.function_stack else None

    def current_function_name(self) -> str:
        """Name of the innermost enclosing def ("<lambda>" for lambdas)."""
        node = self.current_function
        if node is None:
            return ""
        return getattr(node, "name", "<lambda>")

    def enclosing_function_names(self) -> Tuple[str, ...]:
        """Names of every enclosing def, outermost first."""
        return tuple(getattr(f, "name", "<lambda>")
                     for f in self.function_stack)

    def in_raise(self) -> bool:
        """True when the current node sits inside a ``raise`` statement."""
        return self.raise_depth > 0

    def resolve_module(self, name: str) -> str:
        """Map a local name to the module it was imported from (or itself)."""
        return self.imports.get(name, name)

    def suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.pragmas.get(line)
        return rules is not None and (rule_id in rules or "*" in rules)


def _parse_pragmas(lines: Sequence[str]) -> Dict[int, Set[str]]:
    pragmas: Dict[int, Set[str]] = {}
    for index, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        if not rules:
            rules = {"*"}
        pragmas.setdefault(index, set()).update(rules)
        if text.lstrip().startswith("#"):
            # A standalone pragma comment covers the statement below it.
            pragmas.setdefault(index + 1, set()).update(rules)
    return pragmas


def decorator_name(node: ast.AST) -> str:
    """Dotted name of a decorator expression ("dataclass", "functools.wraps").

    Call decorators resolve to the name of the callable: both
    ``@dataclass`` and ``@dataclass(frozen=True)`` yield ``"dataclass"``.
    """
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class LintRule:
    """Base class for lint rules; register subclasses with ``@register_rule``.

    Subclasses declare:

    * ``id`` — stable kebab-case identifier (used in pragmas and reports),
    * ``description`` / ``hint`` — one-liners for reports and ``--list-rules``,
    * ``paths`` — fnmatch patterns (relative to the repo root, ``src/``
      stripped) selecting the files the rule applies to,
    * ``node_types`` — AST node classes ``visit`` wants to see.

    The walker calls :meth:`visit` for each matching node and
    :meth:`finish` once per file; both yield :class:`Finding` objects.
    """

    id: str = ""
    description: str = ""
    hint: str = ""
    paths: Tuple[str, ...] = ("*",)
    node_types: Tuple[type, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        return any(fnmatch(relpath, pattern) for pattern in self.paths)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finish(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                hint: Optional[str] = None) -> Finding:
        return Finding(
            rule=self.id,
            file=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint if hint is None else hint,
        )


# ---------------------------------------------------------------------- #
# The shared one-pass walker
# ---------------------------------------------------------------------- #
class _Walker:
    def __init__(self, ctx: FileContext, rules: Sequence[LintRule]) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._by_type: Dict[type, List[LintRule]] = {}
        self._rules = rules
        for lint_rule in rules:
            for node_type in lint_rule.node_types:
                self._by_type.setdefault(node_type, []).append(lint_rule)

    def run(self) -> List[Finding]:
        self._visit(self.ctx.tree)
        for lint_rule in self._rules:
            self._collect(lint_rule.finish(self.ctx))
        return self.findings

    def _collect(self, findings: Iterable[Finding]) -> None:
        ctx = self.ctx
        for found in findings:
            if not ctx.suppressed(found.rule, found.line):
                self.findings.append(found)

    def _visit(self, node: ast.AST) -> None:
        ctx = self.ctx
        is_function = isinstance(node, (*_FUNCTION_NODES, ast.Lambda))
        is_class = isinstance(node, ast.ClassDef)
        is_raise = isinstance(node, ast.Raise)
        if is_function:
            ctx.function_stack.append(node)
        if is_class:
            ctx.class_stack.append(node)
        if is_raise:
            ctx.raise_depth += 1
        interested = self._by_type.get(type(node))
        if interested:
            for lint_rule in interested:
                self._collect(lint_rule.visit(node, ctx))
        for child in ast.iter_child_nodes(node):
            ctx.parents[child] = node
            self._visit(child)
        if is_function:
            ctx.function_stack.pop()
        if is_class:
            ctx.class_stack.pop()
        if is_raise:
            ctx.raise_depth -= 1


# ---------------------------------------------------------------------- #
# Runner
# ---------------------------------------------------------------------- #
def normalize_relpath(path: Path, root: Path) -> str:
    """Root-relative posix path with any leading ``src/`` stripped.

    Rule path patterns are written against the *import* layout
    (``repro/sim/engine.py``) so they match whether the tree is linted
    from a src-layout checkout or an installed package directory.
    """
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    text = rel.as_posix()
    if text.startswith("src/"):
        text = text[len("src/"):]
    return text


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterator[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = iter((path,))
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen and candidate.suffix == ".py":
                seen.add(resolved)
                out.append(candidate)
    return out


def lint_files(files: Sequence[Path], root: Path,
               rules: Sequence[LintRule]) -> List[Finding]:
    """Lint ``files`` (paths resolved against ``root``) with ``rules``."""
    findings: List[Finding] = []
    for path in files:
        relpath = normalize_relpath(path, root)
        active = [r for r in rules if r.applies_to(relpath)]
        if not active:
            continue
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(
                f"{relpath}:{exc.lineno or 1}: cannot parse file: {exc.msg}"
            ) from exc
        ctx = FileContext(path, relpath, source, tree)
        findings.extend(_Walker(ctx, active).run())
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return findings


def lint_paths(paths: Sequence[Path], root: Optional[Path] = None,
               rules: Optional[Sequence[LintRule]] = None) -> List[Finding]:
    """Lint files/directories; the convenience wrapper most callers want."""
    from repro.analysis.registry import all_rules

    root = Path.cwd() if root is None else root
    active = list(all_rules().values()) if rules is None else list(rules)
    return lint_files(iter_python_files(paths), root, active)
