"""Command-line front end for the invariant linter.

Shared by the ``repro lint`` harness subcommand and the standalone
``python -m repro.analysis`` entry point.  Exit-code contract:

* ``0`` — no findings (or nothing to lint),
* ``1`` — at least one finding,
* ``2`` — usage error (unknown rule, unreadable path, broken git ref).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from repro.analysis.core import LintError, iter_python_files, lint_files
from repro.analysis.registry import all_rules, select_rules
from repro.analysis.reporters import render_json, render_text

__all__ = ["add_lint_arguments", "run_lint", "changed_files", "main"]

#: Directories linted when no explicit paths are given (first layout that
#: exists wins for the package tree).
_DEFAULT_PACKAGE_DIRS = ("src/repro", "repro")
_DEFAULT_EXTRA_DIRS = ("examples",)

#: Fallback chain for ``--changed`` when the requested ref is absent
#: (fresh clones often lack ``origin/main``).
_REF_FALLBACKS = ("origin/main", "main", "master", "HEAD")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared by both entries)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro + examples)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--rule", dest="rules", action="append", metavar="RULE",
        help="run only this rule (repeatable; default: all rules)")
    parser.add_argument(
        "--changed", nargs="?", const="origin/main", default=None,
        metavar="REF",
        help="lint only files differing from REF (default origin/main, "
             "falling back to main/HEAD), plus untracked files")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root for path scoping (default: cwd)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")


def _git(root: Path, *argv: str) -> "subprocess.CompletedProcess[str]":
    return subprocess.run(
        ["git", *argv], cwd=str(root), capture_output=True, text=True)


def _resolve_ref(root: Path, ref: str, stderr: TextIO) -> Optional[str]:
    candidates = [ref] + [r for r in _REF_FALLBACKS if r != ref]
    for candidate in candidates:
        probe = _git(root, "rev-parse", "--verify", "--quiet",
                     f"{candidate}^{{commit}}")
        if probe.returncode == 0:
            if candidate != ref:
                stderr.write(
                    f"repro lint: ref {ref!r} not found, comparing against "
                    f"{candidate!r}\n")
            return candidate
    return None


def changed_files(root: Path, ref: str,
                  stderr: Optional[TextIO] = None) -> List[Path]:
    """Python files differing from ``ref`` plus untracked ones.

    Raises :class:`LintError` when ``root`` is not a git work tree or no
    candidate ref resolves.
    """
    stderr = sys.stderr if stderr is None else stderr
    inside = _git(root, "rev-parse", "--is-inside-work-tree")
    if inside.returncode != 0:
        raise LintError(f"--changed requires a git work tree at {root}")
    resolved = _resolve_ref(root, ref, stderr)
    if resolved is None:
        raise LintError(
            f"--changed: none of {ref!r} or fallbacks "
            f"{', '.join(_REF_FALLBACKS)} resolve to a commit")
    names: List[str] = []
    diff = _git(root, "diff", "--name-only", resolved, "--", "*.py")
    if diff.returncode != 0:
        raise LintError(f"git diff failed: {diff.stderr.strip()}")
    names.extend(diff.stdout.splitlines())
    untracked = _git(root, "ls-files", "--others", "--exclude-standard",
                     "--", "*.py")
    if untracked.returncode == 0:
        names.extend(untracked.stdout.splitlines())
    files: List[Path] = []
    seen = set()
    for name in names:
        if not name or name in seen:
            continue
        seen.add(name)
        path = root / name
        if path.is_file():
            files.append(path)
    return sorted(files)


def _default_paths(root: Path) -> List[Path]:
    paths: List[Path] = []
    for candidate in _DEFAULT_PACKAGE_DIRS:
        directory = root / candidate
        if directory.is_dir():
            paths.append(directory)
            break
    for candidate in _DEFAULT_EXTRA_DIRS:
        directory = root / candidate
        if directory.is_dir():
            paths.append(directory)
    return paths


def run_lint(args: argparse.Namespace,
             stdout: Optional[TextIO] = None,
             stderr: Optional[TextIO] = None) -> int:
    """Execute the lint run described by parsed ``args``."""
    # Resolve the streams at call time so pytest capture (and callers
    # that rebind sys.stdout) see the output.
    stdout = sys.stdout if stdout is None else stdout
    stderr = sys.stderr if stderr is None else stderr
    if args.list_rules:
        for rule_id, lint_rule in all_rules().items():
            stdout.write(f"{rule_id:16s} {lint_rule.description}\n")
        return 0
    root = (args.root or Path.cwd()).resolve()
    try:
        rules = select_rules(args.rules)
        if args.changed is not None:
            if args.paths:
                raise LintError(
                    "--changed and explicit paths are mutually exclusive")
            files = changed_files(root, args.changed, stderr)
        else:
            paths = args.paths or _default_paths(root)
            if not paths:
                raise LintError(
                    f"nothing to lint under {root} (no src/repro, repro "
                    "or examples directory); pass explicit paths")
            files = iter_python_files(paths)
        findings = lint_files(files, root, rules)
    except LintError as exc:
        stderr.write(f"repro lint: {exc}\n")
        return 2
    if args.format == "json":
        stdout.write(render_json(findings, len(files),
                                 [r.id for r in rules]))
    else:
        render_text(findings, len(files), stdout)
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the repro tree")
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args)
