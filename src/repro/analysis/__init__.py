"""Repo-specific static analysis: an AST-based invariant linter.

The reproduction's credibility rests on invariants nothing in the Python
language enforces: bit-identical simulation results, byte-stable cache
keys, seeded determinism in the scenario layer, and the hot-path coding
rules that keep the event loop fast.  This package makes those invariants
mechanical.  It is dependency-free (stdlib ``ast`` + ``tokenize`` only)
and lints the whole tree in one pass per file.

Entry points:

* ``repro lint`` — harness CLI subcommand,
* ``python -m repro.analysis`` — standalone module entry,
* :func:`lint_paths` / :func:`lint_files` — programmatic API.

Rules live in :mod:`repro.analysis.rules` and self-register through
:func:`repro.analysis.registry.register_rule`, mirroring the decorator
idiom of :mod:`repro.registry`.  Findings can be suppressed per line with
an explicitly-commented pragma::

    something_flagged()  # repro: lint-ignore[rule-id] -- why it is fine

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from repro.analysis.core import (
    Finding,
    LintRule,
    lint_files,
    lint_paths,
    iter_python_files,
)
from repro.analysis.registry import (
    all_rules,
    register_rule,
    rule,
    rule_ids,
)

__all__ = [
    "Finding",
    "LintRule",
    "all_rules",
    "iter_python_files",
    "lint_files",
    "lint_paths",
    "register_rule",
    "rule",
    "rule_ids",
]
