"""Cache-key safety rule: keep cache keys and fingerprints byte-stable.

``case_cache_key`` / ``grid_cache_key`` / the fingerprint helpers hash a
canonical JSON document; the figure-9 fingerprints in
``tests/data/figure9_fingerprints.json`` pin the exact bytes.  Code on
those paths must not:

* iterate mappings (``.items()`` / ``.keys()`` / ``.values()``) without an
  explicit ``sorted(...)`` — insertion order is an implementation detail
  of the caller,
* call ``id()`` or builtin ``hash()`` — both vary across interpreter runs,
* stringify values (f-strings, ``str()``, ``repr()``, ``format()``)
  outside the canonicalizer — float formatting is locale/precision bait.
  Strings built purely for ``raise`` messages are exempt, as are the
  canonicalizer functions themselves and ``__repr__`` debug output.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable

from repro.analysis.core import FileContext, Finding, LintRule
from repro.analysis.registry import register_rule

#: Files linted in full: every line feeds keys, hashes or seeded streams.
_FULL_FILES = (
    "repro/harness/hashing.py",
    "repro/scenario/stream.py",
)

#: Files where only the named key-feeding functions are in scope.
_TARGETED: Dict[str, FrozenSet[str]] = {
    "repro/scenario/spec.py": frozenset({
        "context", "canonical_scenario", "_canonical_params", "is_default",
    }),
    "repro/eval/experiments.py": frozenset({"canonical_runtime_selection"}),
}

#: Functions allowed to stringify: they *are* the canonicalizer.
_CANONICALIZERS = frozenset({
    "_jsonable", "_context_jsonable", "_canonical_params", "__repr__",
})

_MAPPING_VIEWS = frozenset({"items", "keys", "values"})
_STRINGIFIERS = frozenset({"str", "repr", "format"})


@register_rule
class CacheKeyRule(LintRule):
    id = "cache-key"
    description = ("no unsorted mapping iteration, id()/hash() or ad-hoc "
                   "stringification on cache-key paths")
    hint = ("wrap mapping views in sorted(); derive identity from content, "
            "not id()/hash(); stringify only in the canonicalizer")
    paths = _FULL_FILES + tuple(_TARGETED)
    node_types = (ast.Call, ast.JoinedStr)

    def _in_scope(self, ctx: FileContext) -> bool:
        if ctx.relpath in _FULL_FILES:
            return True
        targets = _TARGETED.get(ctx.relpath)
        if not targets:
            return False
        for name in ctx.enclosing_function_names():
            if name in targets:
                return True
        return False

    def _stringify_allowed(self, ctx: FileContext) -> bool:
        if ctx.in_raise():
            return True
        for name in ctx.enclosing_function_names():
            if name in _CANONICALIZERS:
                return True
        return False

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not self._in_scope(ctx):
            return
        if isinstance(node, ast.JoinedStr):
            if not self._stringify_allowed(ctx):
                yield self.finding(
                    ctx, node,
                    "f-string on a cache-key path stringifies values "
                    "outside the canonicalizer")
            return
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("id", "hash") and func.id not in ctx.imports:
                yield self.finding(
                    ctx, node,
                    f"builtin {func.id}() is run-dependent and must not "
                    "feed a cache key")
            elif (func.id in _STRINGIFIERS
                  and not self._stringify_allowed(ctx)):
                yield self.finding(
                    ctx, node,
                    f"{func.id}() on a cache-key path stringifies values "
                    "outside the canonicalizer")
        elif (isinstance(func, ast.Attribute)
              and func.attr in _MAPPING_VIEWS
              and not node.args and not node.keywords):
            parent = ctx.parents.get(node)
            if not (isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id == "sorted"):
                yield self.finding(
                    ctx, node,
                    f".{func.attr}() iterated without sorted() on a "
                    "cache-key path depends on insertion order")
