"""Spawn-safety rule: registered objects must be importable by name.

Warm-pool workers re-import registered workloads/runtimes/scenario
components by ``(module, name)`` — see ``plugin_file_of`` and the
``ensure_*`` helpers in :mod:`repro.registry`.  A lambda, closure or
locally-defined class registered from inside a function exists only in
the registering process and silently diverges (or crashes) in a spawned
worker.  This rule flags:

* ``@register_*`` decorators applied to defs/classes nested inside a
  function,
* lambdas passed as arguments to ``register_*`` / ``ensure_*`` calls,
* immediate decorator application (``register_x(...)(obj)``) from inside
  a function body.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.core import FileContext, Finding, LintRule
from repro.analysis.registry import register_rule

_REGISTER_NAMES = frozenset({
    "register_workload", "register_runtime", "register_arrival",
    "register_etm", "register_scheduler",
})
_ENSURE_NAMES = frozenset({
    "ensure_workload", "ensure_runtime", "ensure_arrival", "ensure_etm",
    "ensure_scheduler",
})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _callable_name(node: ast.AST) -> Optional[str]:
    """Last dotted segment of a call target ("registry.register_etm" -> ...)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _nested_in_function(node: ast.AST, ctx: FileContext) -> bool:
    parent = ctx.parents.get(node)
    while parent is not None:
        if isinstance(parent, _FUNCTION_NODES):
            return True
        parent = ctx.parents.get(parent)
    return False


@register_rule
class SpawnSafetyRule(LintRule):
    id = "spawn-safety"
    description = ("registered workloads/runtimes/scenario components must "
                   "be module-level (warm-pool workers re-import them)")
    hint = ("move the registered def/class to module level; lambdas and "
            "closures cannot be re-imported by spawned workers")
    paths = ("repro/*", "examples/*")
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                  ast.Call)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            yield from self._check_decorated(node, ctx)
        else:
            yield from self._check_call(node, ctx)

    def _check_decorated(self, node: ast.AST,
                         ctx: FileContext) -> Iterable[Finding]:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator,
                                                  ast.Call) else decorator
            name = _callable_name(target)
            if name in _REGISTER_NAMES and _nested_in_function(node, ctx):
                yield self.finding(
                    ctx, node,
                    f"@{name} applied to {node.name!r} inside a function; "
                    "spawned workers cannot re-import it")

    def _check_call(self, node: ast.Call,
                    ctx: FileContext) -> Iterable[Finding]:
        name = _callable_name(node.func)
        if name in _REGISTER_NAMES or name in _ENSURE_NAMES:
            for value in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(value, ast.Lambda):
                    yield self.finding(
                        ctx, value,
                        f"lambda passed to {name}(); spawned workers cannot "
                        "re-import it")
            return
        # register_x(...)(obj) — immediate application inside a function
        # registers a local object.
        if isinstance(node.func, ast.Call):
            inner = _callable_name(node.func.func)
            if inner in _REGISTER_NAMES and _nested_in_function(node, ctx):
                yield self.finding(
                    ctx, node,
                    f"{inner}(...) applied inside a function registers a "
                    "local object; spawned workers cannot re-import it")
