"""Built-in lint rules; importing this package registers all of them."""

from repro.analysis.rules import (  # noqa: F401
    cachekey,
    determinism,
    hotpath,
    spawn,
    telemetry,
)
