"""Telemetry hygiene rule: structured spans, declared counter names.

Two invariants keep trace files trustworthy:

* spans are opened and closed through the ``with tracer.span(...)``
  context manager so an exception can never leave a span dangling —
  direct ``start_span`` / ``end_span`` calls outside
  ``repro/harness/telemetry.py`` need an explicitly-commented pragma
  (the run-span lifecycle in the harness engine is the one such case),
* counter names passed to ``Tracer.count()`` come from the single
  declared :data:`repro.harness.telemetry.COUNTER_NAMES` set, so a typo
  cannot mint a phantom metric series.  The same frozenset is validated
  at runtime by ``Tracer.count()`` — rule and runtime share one source
  of truth.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.core import FileContext, Finding, LintRule
from repro.analysis.registry import register_rule
from repro.harness.telemetry import COUNTER_NAMES

#: The one file allowed to touch the raw span machinery.
_TELEMETRY_FILE = "repro/harness/telemetry.py"

_SPAN_CALLS = frozenset({"start_span", "end_span"})


def _receiver_tail(node: ast.AST) -> Optional[str]:
    """Last segment of the receiver chain of an attribute access."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register_rule
class TelemetryRule(LintRule):
    id = "telemetry"
    description = ("tracer spans only via the context manager; counter "
                   "names drawn from COUNTER_NAMES")
    hint = ("use 'with tracer.span(...)'; add new counter names to "
            "COUNTER_NAMES in repro/harness/telemetry.py")
    paths = ("repro/*",)
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterable[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _SPAN_CALLS and ctx.relpath != _TELEMETRY_FILE:
            yield self.finding(
                ctx, node,
                f".{func.attr}() called outside the span context manager",
                hint="wrap the region in 'with tracer.span(kind, name): ...'")
            return
        if func.attr == "count":
            tail = _receiver_tail(func.value)
            if tail not in ("tracer", "_tracer"):
                return
        elif func.attr != "_count":
            return
        if not node.args:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if first.value not in COUNTER_NAMES:
                yield self.finding(
                    ctx, node,
                    f"counter name {first.value!r} is not declared in "
                    "COUNTER_NAMES")
