"""Hot-path discipline rule: keep the per-event dispatch code allocation-lean.

PR 2 bought a ~1.7x inner-loop speedup with hand-applied rules — slotted
classes, ``_tag`` dispatch tables instead of ``isinstance`` chains, no
generator expressions or property descriptors on per-event paths.  This
rule pins them:

* every class in the hot modules declares ``__slots__`` (dataclasses are
  exempt: they are built once per run, not once per event, and the tree
  still supports Python 3.9 where ``slots=True`` is unavailable),
* inside the known hot dispatch functions: no ``isinstance`` calls, no
  generator expressions, and no reads of ``self.<prop>`` where ``<prop>``
  is a ``@property`` defined in the same module (cross-object descriptor
  reads are the polymorphic interface and stay allowed).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable

from repro.analysis.core import FileContext, Finding, LintRule, decorator_name
from repro.analysis.registry import register_rule

#: Per-module sets of functions on the per-event dispatch path.  Nested
#: defs and lambdas inside these count as hot too.
HOT_FUNCTIONS: Dict[str, FrozenSet[str]] = {
    "repro/sim/engine.py": frozenset({
        "_run_fast", "_run_complete_fast", "_step", "_dispatch", "_finish",
        "_schedule", "_resume", "_handle_delay", "_handle_put",
        "_handle_get", "_handle_wait", "_handle_fork", "_handle_join",
        "schedule_callback", "trigger",
    }),
    "repro/sim/queues.py": frozenset({
        "try_put", "try_get", "_blocking_put", "_blocking_get", "_enqueue",
        "_dequeue", "_pop_item", "_wake_getters", "_wake_putters",
        "_notify", "_land",
    }),
    "repro/sim/arbiters.py": frozenset({"_kick", "_grant"}),
    "repro/runtime/base.py": frozenset({
        "wait_for_signals", "scenario_release_gate",
        "scenario_note_completion",
    }),
}

_DATACLASS_DECORATORS = ("dataclass", "dataclasses.dataclass")


@register_rule
class HotPathRule(LintRule):
    id = "hot-path"
    description = ("__slots__ on hot-module classes; no isinstance/genexp/"
                   "property reads in per-event dispatch")
    hint = ("declare __slots__; use _tag dispatch instead of isinstance; "
            "inline property bodies on hot paths")
    paths = tuple(HOT_FUNCTIONS)
    node_types = (ast.ClassDef, ast.GeneratorExp, ast.Call, ast.Attribute)

    def _in_hot_function(self, ctx: FileContext) -> bool:
        hot = HOT_FUNCTIONS.get(ctx.relpath)
        if not hot:
            return False
        for name in ctx.enclosing_function_names():
            if name in hot:
                return True
        return False

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, ast.ClassDef):
            yield from self._check_class(node, ctx)
            return
        if not self._in_hot_function(ctx):
            return
        if isinstance(node, ast.GeneratorExp):
            yield self.finding(
                ctx, node,
                f"generator expression in hot function "
                f"{ctx.current_function_name()!r} allocates per event",
                hint="use a plain loop over the internal containers")
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "isinstance":
                yield self.finding(
                    ctx, node,
                    f"isinstance() in hot function "
                    f"{ctx.current_function_name()!r}",
                    hint="dispatch on a class-level _tag (see Command._tag) "
                         "or compare __class__ identity")
        elif isinstance(node, ast.Attribute):
            if (isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in ctx.properties):
                yield self.finding(
                    ctx, node,
                    f"read of property self.{node.attr} in hot function "
                    f"{ctx.current_function_name()!r} pays a descriptor "
                    "call per event",
                    hint="inline the property body on the hot path")

    def _check_class(self, node: ast.ClassDef,
                     ctx: FileContext) -> Iterable[Finding]:
        for decorator in node.decorator_list:
            if decorator_name(decorator) in _DATACLASS_DECORATORS:
                return
        for statement in node.body:
            targets = ()
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = (statement.target,)
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return
        yield self.finding(
            ctx, node,
            f"class {node.name!r} in a hot module does not declare "
            "__slots__",
            hint="add __slots__ with the instance attributes (dataclasses "
                 "are exempt)")
