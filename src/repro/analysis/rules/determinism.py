"""Determinism rule: simulation and scenario code must be seed-pure.

Results are pinned by golden traces and byte-stable fingerprints, so code
in ``repro/sim/``, ``repro/scenario/`` and ``repro/harness/hashing.py``
may not consult ambient entropy (``random``, ``uuid``, ``secrets``,
``os.urandom``, wall-clock time) and may not iterate ``set`` objects,
whose order is salted per interpreter run.  Scenario randomness flows
exclusively through :class:`repro.scenario.stream.Pcg64Stream` /
``derive_stream``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import FileContext, Finding, LintRule
from repro.analysis.registry import register_rule

#: Modules whose every use is ambient entropy in deterministic code.
_BANNED_MODULES = frozenset({"random", "uuid", "secrets"})

#: Specific entropy/clock functions from otherwise-legitimate modules.
_BANNED_FUNCTIONS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "os.urandom",
    "os.getrandom",
})

#: Builtins that materialise their argument's (salted) iteration order.
_ORDER_SENSITIVE_BUILTINS = frozenset({"list", "tuple", "iter", "enumerate"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register_rule
class DeterminismRule(LintRule):
    id = "determinism"
    description = ("no ambient entropy or salted set iteration in "
                   "sim/scenario/hashing code")
    hint = ("route randomness through Pcg64Stream/derive_stream; wrap set "
            "iteration in sorted()")
    paths = (
        "repro/sim/*.py",
        "repro/scenario/*.py",
        "repro/harness/hashing.py",
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Call, ast.For,
                  ast.comprehension)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_MODULES:
                    yield self.finding(
                        ctx, node,
                        f"import of entropy module {alias.name!r} in "
                        "deterministic code")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _BANNED_MODULES:
                yield self.finding(
                    ctx, node,
                    f"import from entropy module {node.module!r} in "
                    "deterministic code")
        elif isinstance(node, ast.Call):
            yield from self._check_call(node, ctx)
        elif isinstance(node, ast.For):
            if _is_set_expr(node.iter):
                yield self.finding(
                    ctx, node.iter,
                    "iteration over a set has salted, run-dependent order")
        elif isinstance(node, ast.comprehension):
            if _is_set_expr(node.iter):
                yield self.finding(
                    ctx, node.iter,
                    "comprehension over a set has salted, run-dependent "
                    "order")

    def _check_call(self, node: ast.Call,
                    ctx: FileContext) -> Iterable[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            module = ctx.resolve_module(func.value.id).split(".")[0]
            dotted = f"{module}.{func.attr}"
            if module in _BANNED_MODULES:
                yield self.finding(
                    ctx, node,
                    f"call to {dotted}() draws ambient entropy")
            elif dotted in _BANNED_FUNCTIONS:
                yield self.finding(
                    ctx, node,
                    f"call to {dotted}() reads the wall clock / OS entropy")
        elif isinstance(func, ast.Name):
            resolved = ctx.resolve_module(func.id)
            if resolved.split(".")[0] in _BANNED_MODULES:
                yield self.finding(
                    ctx, node,
                    f"call to {resolved}() draws ambient entropy")
            elif resolved in _BANNED_FUNCTIONS:
                yield self.finding(
                    ctx, node,
                    f"call to {resolved}() reads the wall clock / OS entropy")
            elif (func.id in _ORDER_SENSITIVE_BUILTINS and node.args
                  and _is_set_expr(node.args[0])):
                yield self.finding(
                    ctx, node,
                    f"{func.id}() over a set has salted, run-dependent "
                    "order")
