"""Text and JSON reporters for lint findings.

The JSON document is schema-versioned so CI consumers can parse it
defensively; :func:`parse_report` round-trips it back into
:class:`~repro.analysis.core.Finding` objects.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, TextIO

from repro.analysis.core import Finding, LintError

__all__ = ["REPORT_SCHEMA", "render_text", "render_json", "parse_report"]

#: Bump when the JSON report layout changes incompatibly.
REPORT_SCHEMA = 1


def render_text(findings: Sequence[Finding], files_checked: int,
                stream: TextIO) -> None:
    """Human-readable report: one ``file:line:col`` line per finding."""
    for found in findings:
        stream.write(found.describe() + "\n")
        if found.hint:
            stream.write(f"    hint: {found.hint}\n")
    noun = "file" if files_checked == 1 else "files"
    if findings:
        stream.write(
            f"{len(findings)} finding(s) in {files_checked} {noun} checked\n")
    else:
        stream.write(f"clean: {files_checked} {noun} checked\n")


def render_json(findings: Sequence[Finding], files_checked: int,
                rules: Sequence[str]) -> str:
    """Machine-readable report (stable key order, trailing newline)."""
    document = {
        "schema": REPORT_SCHEMA,
        "tool": "repro-lint",
        "files_checked": files_checked,
        "rules": sorted(rules),
        "clean": not findings,
        "findings": [
            {
                "rule": found.rule,
                "file": found.file,
                "line": found.line,
                "col": found.col,
                "message": found.message,
                "hint": found.hint,
            }
            for found in findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def parse_report(text: str) -> Dict[str, Any]:
    """Parse a JSON report; ``findings`` come back as :class:`Finding`.

    Raises :class:`~repro.analysis.core.LintError` on schema mismatch so
    CI consumers fail loudly instead of mis-reading a future layout.
    """
    document = json.loads(text)
    if document.get("schema") != REPORT_SCHEMA:
        raise LintError(
            f"unsupported lint report schema {document.get('schema')!r} "
            f"(expected {REPORT_SCHEMA})")
    findings: List[Finding] = [
        Finding(
            rule=entry["rule"],
            file=entry["file"],
            line=entry["line"],
            col=entry["col"],
            message=entry["message"],
            hint=entry.get("hint", ""),
        )
        for entry in document.get("findings", [])
    ]
    document["findings"] = findings
    return document
