"""Rule registry for the invariant linter.

Mirrors the decorator idiom of :mod:`repro.registry`: rules are classes
decorated with :func:`register_rule`, the registry lazily imports the
built-in rule package on first lookup, and unknown names fail with a
did-you-mean suggestion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.analysis.core import LintError, LintRule
from repro.registry import suggest

__all__ = ["register_rule", "rule", "rule_ids", "all_rules"]

_RULES: Dict[str, LintRule] = {}
_populated = False


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    instance = cls()
    if not instance.id:
        raise LintError(f"lint rule {cls.__name__} declares no id")
    if instance.id in _RULES:
        raise LintError(f"duplicate lint rule id {instance.id!r}")
    _RULES[instance.id] = instance
    return cls


def _ensure_populated() -> None:
    global _populated
    if _populated:
        return
    _populated = True
    # Importing the package registers every built-in rule as a side effect.
    import repro.analysis.rules  # noqa: F401


def rule(rule_id: str) -> LintRule:
    """Look up one rule by id; raise with a suggestion if unknown."""
    _ensure_populated()
    try:
        return _RULES[rule_id]
    except KeyError:
        hint = suggest(rule_id, _RULES)
        raise LintError(f"unknown lint rule {rule_id!r}{hint}") from None


def rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    _ensure_populated()
    return sorted(_RULES)


def all_rules() -> Dict[str, LintRule]:
    """Mapping of rule id to rule instance, in sorted-id order."""
    _ensure_populated()
    return {rule_id: _RULES[rule_id] for rule_id in sorted(_RULES)}


def select_rules(rule_names: Optional[List[str]]) -> List[LintRule]:
    """Resolve a ``--rule`` selection (``None`` means every rule)."""
    if not rule_names:
        return list(all_rules().values())
    return [rule(name) for name in rule_names]
