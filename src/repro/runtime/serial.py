"""Serial baseline: execute the task payloads in program order on one core.

The paper's speedup figures are reported against serial executions of the
same kernels compiled with the same ``-O3`` optimisation level.  The serial
model therefore executes every task payload back to back on core 0 with a
tiny per-task loop overhead and no scheduling machinery at all.
"""

from __future__ import annotations

from typing import Optional

from repro.cpu.soc import SoC
from repro.registry import register_runtime
from repro.runtime.base import (Runtime, scenario_note_completion,
                                scenario_release_gate)
from repro.runtime.task import TaskProgram
from repro.sim.engine import ProcessGen

__all__ = ["SerialRuntime"]

#: Instructions of the surrounding loop per task body invocation (increment,
#: compare, branch, call) in the serial binary.
_LOOP_INSTRUCTIONS_PER_TASK = 6


@register_runtime("serial", tags=("case", "baseline", "software"),
                  rank=0,
                  description="Serial baseline: every task on one core")
class SerialRuntime(Runtime):
    """Plain serial execution of the program on a single core."""

    name = "serial"
    uses_picos = False

    def run(self, program: TaskProgram, num_workers: Optional[int] = None,
            scenario=None):
        # A serial binary always uses exactly one core, whatever the machine.
        return super().run(program, num_workers=1, scenario=scenario)

    def _execute(self, soc: SoC, program: TaskProgram, num_workers: int) -> None:
        main = soc.spawn_worker(0, self._main(soc, program), name="serial_main")
        soc.run([main])

    def _main(self, soc: SoC, program: TaskProgram) -> ProcessGen:
        core = soc.core(0)
        if program.serial_sections_cycles:
            yield from core.compute(program.serial_sections_cycles)
        for task in program.tasks:
            yield from scenario_release_gate(soc, task)
            yield from core.execute(_LOOP_INSTRUCTIONS_PER_TASK)
            task.run_kernel()
            yield from core.compute(task.payload_cycles)
            scenario_note_completion(soc, task)
