"""Application-facing task model: tasks, dependences and task programs.

A *task program* is what a benchmark application hands to a runtime: an
ordered sequence of tasks, each with

* a payload cost in core cycles (what the task body would take to execute
  serially on one Rocket core),
* a set of monitored pointer parameters (address + directionality) from
  which the runtime — in software or through Picos — infers dependences,
* optionally a Python callable (``kernel``) that performs the real numeric
  computation, used by correctness tests on small inputs,

plus the positions of ``taskwait`` barriers.  The same program object is
consumed by every runtime model and by the serial baseline, which is what
makes speedup comparisons apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import WorkloadError
from repro.picos.dependence import TaskGraph
from repro.picos.packets import MAX_DEPENDENCES, Direction, TaskDependence

__all__ = ["Task", "TaskProgram", "dependence", "in_dep", "out_dep", "inout_dep"]


def dependence(address: int, direction: Direction) -> TaskDependence:
    """Build one monitored pointer parameter."""
    return TaskDependence(address=address, direction=direction)


def in_dep(address: int) -> TaskDependence:
    """A read-only (``in``) dependence on ``address``."""
    return TaskDependence(address=address, direction=Direction.IN)


def out_dep(address: int) -> TaskDependence:
    """A write-only (``out``) dependence on ``address``."""
    return TaskDependence(address=address, direction=Direction.OUT)


def inout_dep(address: int) -> TaskDependence:
    """A read-write (``inout``) dependence on ``address``."""
    return TaskDependence(address=address, direction=Direction.INOUT)


@dataclass(frozen=True)
class Task:
    """One task instance of a task-parallel program."""

    index: int
    payload_cycles: int
    dependences: Tuple[TaskDependence, ...] = ()
    name: str = ""
    kernel: Optional[Callable[[], None]] = None
    #: Earliest cycle at which the generating thread may submit this task.
    #: 0 (the default) means "immediately", i.e. the deterministic harness;
    #: stochastic arrival models fill it in (see :mod:`repro.scenario`).
    release_cycle: int = 0
    #: Absolute completion deadline in cycles, or ``None`` when no deadline
    #: is modelled.  Only scenario metrics and scheduler policies read it.
    deadline_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise WorkloadError(f"task index must be non-negative, got {self.index}")
        if self.payload_cycles < 0:
            raise WorkloadError(
                f"payload_cycles must be non-negative, got {self.payload_cycles}"
            )
        if self.release_cycle < 0:
            raise WorkloadError(
                f"release_cycle must be non-negative, got {self.release_cycle}"
            )
        if len(self.dependences) > MAX_DEPENDENCES:
            raise WorkloadError(
                f"task {self.index} has {len(self.dependences)} dependences; "
                f"Picos supports at most {MAX_DEPENDENCES}"
            )
        if not isinstance(self.dependences, tuple):
            object.__setattr__(self, "dependences", tuple(self.dependences))

    @property
    def num_dependences(self) -> int:
        """Number of monitored pointer parameters."""
        return len(self.dependences)

    def run_kernel(self) -> None:
        """Execute the real numeric kernel, if the program carries one."""
        if self.kernel is not None:
            self.kernel()


@dataclass
class TaskProgram:
    """An ordered task-parallel program plus its barrier structure."""

    name: str
    tasks: List[Task] = field(default_factory=list)
    #: Task indices after which the generating thread executes a taskwait.
    #: A final taskwait at the end of the program is always implied.
    taskwait_after: Set[int] = field(default_factory=set)
    #: Cycles of serial (non-task) work the program performs outside tasks,
    #: charged to the main thread of every runtime and to the serial run.
    serial_sections_cycles: int = 0
    #: Free-form description of the input (block size, problem size, ...).
    parameters: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation and derived metrics
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check internal consistency; raises :class:`WorkloadError`."""
        if not self.name:
            raise WorkloadError("a task program needs a non-empty name")
        for position, task in enumerate(self.tasks):
            if task.index != position:
                raise WorkloadError(
                    f"task at position {position} has index {task.index}; "
                    "indices must match submission order"
                )
        for index in self.taskwait_after:
            if not 0 <= index < len(self.tasks):
                raise WorkloadError(
                    f"taskwait after task {index} refers to a missing task"
                )
        if self.serial_sections_cycles < 0:
            raise WorkloadError("serial_sections_cycles must be non-negative")

    @property
    def num_tasks(self) -> int:
        """Number of tasks in the program."""
        return len(self.tasks)

    @property
    def total_payload_cycles(self) -> int:
        """Sum of all task payloads (the serial task-execution time)."""
        return sum(task.payload_cycles for task in self.tasks)

    @property
    def serial_cycles(self) -> int:
        """Cycles of a perfect serial execution (payloads + serial sections)."""
        return self.total_payload_cycles + self.serial_sections_cycles

    @property
    def mean_task_cycles(self) -> float:
        """Mean task payload duration — the paper's *task granularity*."""
        if not self.tasks:
            return 0.0
        return self.total_payload_cycles / len(self.tasks)

    @property
    def max_dependences(self) -> int:
        """Largest dependence count of any task."""
        return max((task.num_dependences for task in self.tasks), default=0)

    def phases(self) -> List[List[Task]]:
        """Split the program into the regions separated by taskwaits."""
        phases: List[List[Task]] = [[]]
        for task in self.tasks:
            phases[-1].append(task)
            if task.index in self.taskwait_after:
                phases.append([])
        if not phases[-1]:
            phases.pop()
        return phases

    # ------------------------------------------------------------------ #
    # Analytical helpers used by the evaluation harness
    # ------------------------------------------------------------------ #
    def critical_path_cycles(self) -> int:
        """Length (in payload cycles) of the program's dependence-critical path.

        Computed with the same RAW/WAW/WAR inference the runtimes use, per
        taskwait phase (a taskwait joins every outstanding task).  Gives the
        ideal lower bound on parallel execution time with infinite cores and
        zero scheduling overhead.
        """
        total = self.serial_sections_cycles
        for phase in self.phases():
            graph = TaskGraph(capacity=max(len(phase), 1))
            finish: Dict[int, int] = {}
            predecessors: Dict[int, List[int]] = {}
            for task in phase:
                task_id, _ready = graph.submit(task.index, task.dependences)
                record = graph.task(task_id)
                predecessors[task.index] = [
                    graph.task(pred).sw_id
                    for pred in self._predecessor_ids(graph, task_id)
                ]
            by_index = {task.index: task for task in phase}
            for task in phase:
                start = 0
                for pred_index in predecessors[task.index]:
                    start = max(start, finish.get(pred_index, 0))
                finish[task.index] = start + task.payload_cycles
            total += max(finish.values(), default=0)
        return total

    @staticmethod
    def _predecessor_ids(graph: TaskGraph, task_id: int) -> List[int]:
        record = graph.task(task_id)
        return [
            other.task_id
            for other in (graph.task(tid) for tid in list(graph._tasks))
            if task_id in other.successors
        ]

    def ideal_speedup(self, num_cores: int) -> float:
        """Upper bound on speedup given the DAG and ``num_cores`` cores."""
        if not self.tasks:
            return 1.0
        critical = self.critical_path_cycles()
        if critical <= 0:
            return float(num_cores)
        work_bound = self.serial_cycles / max(self.serial_cycles / num_cores, 1)
        dag_bound = self.serial_cycles / critical
        return min(float(num_cores), dag_bound, work_bound)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskProgram({self.name!r}, tasks={self.num_tasks}, "
            f"mean_task={self.mean_task_cycles:.0f}cy)"
        )
