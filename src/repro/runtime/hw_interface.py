"""Instruction-level access to Picos shared by Nanos-RV and Phentos.

Both hardware-accelerated runtimes drive the same seven custom instructions;
what differs is the software bookkeeping around them.  This module contains
the common instruction sequences:

* :func:`submit_task_hw` — Submission Request followed by the Submit Three
  Packets stream of the non-zero descriptor prefix (Section IV-E.1..3),
* :func:`request_ready_task` — a single non-blocking Ready Task Request,
* :func:`fetch_ready_task` — the Fetch SW ID / Fetch Picos ID pair,
* :func:`retire_task_hw` — the blocking Retire Task instruction.

All of them retry on failure flags the way the paper describes software
should (retry, optionally doing alternative work between attempts), charging
the retry instructions to the issuing core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

from repro.common.errors import RuntimeModelError
from repro.cpu.core import Core
from repro.cpu.rocc import RoccCommand, TaskSchedulingFunct
from repro.picos.packets import TaskDescriptor, encode_nonzero_packets
from repro.runtime.task import Task
from repro.sim.engine import Delay

__all__ = [
    "FetchedTask",
    "submit_task_hw",
    "request_ready_task",
    "fetch_ready_task",
    "retire_task_hw",
]

#: Instructions of the software retry loop around a failed non-blocking
#: instruction (branch on the failure flag, reload operands, loop).
_RETRY_LOOP_INSTRUCTIONS = 4
#: Cycles to back off between repeated failures, so a stalled scheduler is
#: not hammered every cycle (software is free to choose; Phentos uses a
#: short pause).
_RETRY_BACKOFF_CYCLES = 12
#: Give up threshold: if the hardware never accepts after this many retries
#: something is structurally wrong with the model and we fail loudly rather
#: than spin forever.
_MAX_RETRIES = 1_000_000


@dataclass(frozen=True)
class FetchedTask:
    """A ready task as seen by a worker after the two fetch instructions."""

    sw_id: int
    picos_id: int


def _pack_words(high_word: int, low_word: int) -> int:
    """Pack two 32-bit packets into one 64-bit register operand."""
    return ((high_word & 0xFFFFFFFF) << 32) | (low_word & 0xFFFFFFFF)


def submit_task_hw(core: Core, task: Task, sw_id: int,
                   stall_handler=None) -> Generator:
    """Submit ``task`` to Picos through the custom instructions.

    The descriptor prefix is transmitted with Submit Three Packets, which the
    paper recommends because the non-zero packet count is always a multiple
    of three.  Returns the number of retries that were needed (useful for
    tests asserting on back-pressure behaviour).

    ``stall_handler`` is an optional generator factory run between retries of
    a rejected non-blocking instruction.  The paper's deadlock discussion
    (Section IV-C) is exactly about this: because the instructions fail fast
    instead of blocking, a thread that both produces and consumes tasks can
    switch to executing ready tasks whenever the submission path is backed
    up, which guarantees forward progress.
    """
    descriptor = TaskDescriptor(sw_id=sw_id, dependences=task.dependences)
    packets = encode_nonzero_packets(descriptor)
    retries = 0
    retries += yield from _issue_until_success(
        core,
        RoccCommand(TaskSchedulingFunct.SUBMISSION_REQUEST,
                    rs1_value=len(packets)),
        stall_handler,
    )
    for offset in range(0, len(packets), 3):
        p1, p2, p3 = packets[offset:offset + 3]
        command = RoccCommand(
            TaskSchedulingFunct.SUBMIT_THREE_PACKETS,
            rs1_value=_pack_words(p1, p2),
            rs2_value=p3,
        )
        retries += yield from _issue_until_success(core, command, stall_handler)
    return retries


def request_ready_task(core: Core) -> Generator:
    """Issue one Ready Task Request; returns True if it was accepted."""
    response = yield from core.rocc(
        RoccCommand(TaskSchedulingFunct.READY_TASK_REQUEST)
    )
    return response.success


def fetch_ready_task(core: Core) -> Generator:
    """Try to pop one ready task from this core's private ready queue.

    Issues Fetch SW ID and, when it succeeds, Fetch Picos ID.  Returns a
    :class:`FetchedTask` or ``None`` when the private queue is empty.
    """
    sw_response = yield from core.rocc(
        RoccCommand(TaskSchedulingFunct.FETCH_SW_ID)
    )
    if sw_response.failed:
        return None
    picos_response = yield from core.rocc(
        RoccCommand(TaskSchedulingFunct.FETCH_PICOS_ID)
    )
    if picos_response.failed:
        raise RuntimeModelError(
            "Fetch Picos ID failed right after a successful Fetch SW ID"
        )
    return FetchedTask(sw_id=sw_response.value, picos_id=picos_response.value)


def retire_task_hw(core: Core, picos_id: int) -> Generator:
    """Issue the blocking Retire Task instruction for ``picos_id``."""
    response = yield from core.rocc(
        RoccCommand(TaskSchedulingFunct.RETIRE_TASK, rs1_value=picos_id)
    )
    if response.failed:  # pragma: no cover - Retire Task cannot fail
        raise RuntimeModelError("Retire Task reported failure")
    return None


def _issue_until_success(core: Core, command: RoccCommand,
                         stall_handler=None) -> Generator:
    """Retry a non-blocking instruction until the hardware accepts it.

    Between retries the core either runs ``stall_handler()`` (role switching:
    typically "fetch and execute one ready task") or pauses briefly.
    """
    retries = 0
    while True:
        response = yield from core.rocc(command)
        if response.success:
            return retries
        retries += 1
        if retries > _MAX_RETRIES:
            raise RuntimeModelError(
                f"instruction {command.funct.name} failed {retries} times"
            )
        yield from core.execute(_RETRY_LOOP_INSTRUCTIONS)
        if stall_handler is not None:
            yield from stall_handler()
        else:
            yield Delay(_RETRY_BACKOFF_CYCLES)
