"""Task-scheduling runtime models: serial, Nanos-SW/RV/AXI and Phentos."""

from repro.registry import RUNTIMES as _runtime_registry
from repro.runtime.base import Runtime, RuntimeResult
from repro.runtime.hw_interface import (
    FetchedTask,
    fetch_ready_task,
    request_ready_task,
    retire_task_hw,
    submit_task_hw,
)
from repro.runtime.nanos_axi import NanosAXIRuntime
from repro.runtime.nanos_machinery import NanosMachinery
from repro.runtime.nanos_rv import NanosRVRuntime
from repro.runtime.nanos_sw import NanosSWRuntime
from repro.runtime.phentos import PhentosRuntime
from repro.runtime.serial import SerialRuntime
from repro.runtime.task import (
    Task,
    TaskProgram,
    dependence,
    in_dep,
    inout_dep,
    out_dep,
)
from repro.runtime.worker import HwWorkerContext

__all__ = [
    "Runtime",
    "RuntimeResult",
    "FetchedTask",
    "fetch_ready_task",
    "request_ready_task",
    "retire_task_hw",
    "submit_task_hw",
    "NanosAXIRuntime",
    "NanosMachinery",
    "NanosRVRuntime",
    "NanosSWRuntime",
    "PhentosRuntime",
    "SerialRuntime",
    "Task",
    "TaskProgram",
    "dependence",
    "in_dep",
    "inout_dep",
    "out_dep",
    "HwWorkerContext",
]

#: Registry of every runtime model keyed by its short name, used by the
#: evaluation harness and the examples.  Built from the plugin registry
#: (:mod:`repro.registry`): the imports above self-registered each model, so
#: this view and the registry cannot drift apart.
RUNTIMES = {
    spec.name: spec.cls
    for spec in sorted(_runtime_registry.registered(), key=lambda s: s.rank)
}
