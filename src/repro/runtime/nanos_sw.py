"""Nanos-SW: the software-only OmpSs runtime baseline.

Nanos-SW is stock Nanos with its default ``plain`` dependence plugin: every
part of task scheduling — dependence inference, task-graph management, ready
queue, retirement — happens in software on the cores, guarded by mutexes and
condition variables.  It is the baseline against which the paper reports its
2.13x (Nanos-RV) and 13.19x (Phentos) geometric-mean speedups.

The model runs the program with:

* a main thread (core 0) that performs submission bookkeeping, software
  dependence inference and graph insertion for every task, and then helps
  execute tasks during taskwaits,
* worker threads that pop ready tasks from the central scheduler queue,
  execute them, and perform the software retirement path (waking successor
  tasks under the graph lock).
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SimConfig
from repro.cpu.core import Core
from repro.cpu.soc import SoC
from repro.registry import register_runtime
from repro.runtime.base import (Runtime, scenario_note_completion,
                                scenario_release_gate,
                                wait_for_queue_or_event)
from repro.runtime.nanos_machinery import NanosMachinery
from repro.runtime.task import TaskProgram
from repro.sim.engine import Event, ProcessGen

__all__ = ["NanosSWRuntime"]


@register_runtime("nanos-sw", tags=("case", "compared", "software"),
                  rank=10,
                  description="Nanos++ with pure-software scheduling")
class NanosSWRuntime(Runtime):
    """Software-only Nanos runtime model (the paper's Nanos-SW)."""

    name = "nanos-sw"
    uses_picos = False

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        super().__init__(config)
        self.costs = self.config.costs.nanos

    def _execute(self, soc: SoC, program: TaskProgram, num_workers: int) -> None:
        machinery = NanosMachinery(soc, program, self.costs, software_graph=True)
        done = soc.engine.event(name="nanos_sw_done")
        main = soc.spawn_worker(
            0, self._main_thread(soc, program, machinery, done), name="nanos_sw_main"
        )
        workers = [main]
        for core_id in range(1, num_workers):
            workers.append(
                soc.spawn_worker(
                    core_id,
                    self._worker_thread(soc, program, machinery, done, core_id),
                    name=f"nanos_sw_worker{core_id}",
                )
            )
        soc.run(workers)

    # ------------------------------------------------------------------ #
    # Main thread
    # ------------------------------------------------------------------ #
    def _main_thread(self, soc: SoC, program: TaskProgram,
                     machinery: NanosMachinery, done: Event) -> ProcessGen:
        core = soc.core(0)
        if program.serial_sections_cycles:
            yield from core.compute(program.serial_sections_cycles)
        submitted = 0
        for task in program.tasks:
            yield from scenario_release_gate(soc, task)
            yield from machinery.charge_submission(core, task)
            yield from machinery.software_submit(core, task)
            submitted += 1
            if task.index in program.taskwait_after:
                yield from self._taskwait(soc, program, machinery, core, submitted)
        yield from self._taskwait(soc, program, machinery, core, submitted)
        done.trigger(None)

    def _taskwait(self, soc: SoC, program: TaskProgram,
                  machinery: NanosMachinery, core: Core,
                  target: int) -> ProcessGen:
        while True:
            value, cycles = machinery.retired.read(core.core_id)
            yield from core.charge(cycles)
            if value >= target:
                return
            ran = yield from self._run_one(soc, program, machinery, core)
            if not ran:
                yield from machinery.charge_idle_check(core)
                yield from self._wait_for_ready_or_counter(
                    soc, machinery,
                    predicate=lambda: machinery.retired.value >= target,
                )

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #
    def _worker_thread(self, soc: SoC, program: TaskProgram,
                       machinery: NanosMachinery, done: Event,
                       core_id: int) -> ProcessGen:
        core = soc.core(core_id)
        while True:
            if done.triggered:
                return
            ran = yield from self._run_one(soc, program, machinery, core)
            if not ran:
                yield from machinery.charge_idle_check(core)
                yield from wait_for_queue_or_event(
                    soc, machinery.scheduler_queue, done
                )

    # ------------------------------------------------------------------ #
    # Task execution path
    # ------------------------------------------------------------------ #
    def _run_one(self, soc: SoC, program: TaskProgram,
                 machinery: NanosMachinery, core: Core) -> ProcessGen:
        """Pop one ready task, execute it and retire it; True if one ran."""
        yield from machinery.charge_fetch(core)
        task_index = yield from machinery.pop_ready(core)
        if task_index is None:
            return False
        task = program.tasks[task_index]
        task.run_kernel()
        yield from core.compute(task.payload_cycles)
        scenario_note_completion(soc, task)
        yield from machinery.charge_retirement(core)
        yield from machinery.software_retire(core, task_index)
        yield from machinery.record_retirement_counter(core)
        return True

    def _wait_for_ready_or_counter(self, soc: SoC, machinery: NanosMachinery,
                                   predicate=None) -> ProcessGen:
        """Sleep until a ready task or a retirement shows up."""
        from repro.runtime.base import wait_for_signals

        yield from wait_for_signals(
            soc,
            queues=(machinery.scheduler_queue,),
            counters=(machinery.retired,),
            predicate=predicate,
        )
