"""Nanos-RV: Nanos with the ``picos`` dependence plugin (Section V-A).

Nanos-RV keeps the whole Nanos runtime core — plugin dispatch, descriptor
allocation, the central Scheduler singleton queue, mutexes and condition
variables — but offloads dependence inference to Picos through the custom
instructions.  The paper activates it with ``NX_ARGS="-deps=picos"``.

Two properties of the port matter for performance and are modelled here:

* submission, work-fetch and retirement each still pay the heavy Nanos
  bookkeeping (the dominant ~12k cycles/task of Figure 7),
* ready descriptors fetched from Picos are *not* run directly by the core
  that fetched them; they are pushed through the central Scheduler queue and
  popped again, adding shared-line traffic (the inefficiency the paper
  calls out when motivating Phentos).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.config import SimConfig
from repro.cpu.core import Core
from repro.cpu.soc import SoC
from repro.registry import register_runtime
from repro.runtime.base import (Runtime, scenario_note_completion,
                                scenario_release_gate,
                                wait_for_queue_or_event)
from repro.runtime.hw_interface import retire_task_hw, submit_task_hw
from repro.runtime.nanos_machinery import NanosMachinery
from repro.runtime.task import TaskProgram
from repro.runtime.worker import HwWorkerContext
from repro.sim.engine import Event, ProcessGen

__all__ = ["NanosRVRuntime"]


@register_runtime("nanos-rv", tags=("case", "compared", "hardware"),
                  rank=20,
                  description="Nanos++ over Picos via RoCC custom "
                              "instructions")
class NanosRVRuntime(Runtime):
    """Nanos ported to the custom task-scheduling instructions."""

    name = "nanos-rv"
    uses_picos = True

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        super().__init__(config)
        self.costs = self.config.costs.nanos

    def _execute(self, soc: SoC, program: TaskProgram, num_workers: int) -> None:
        machinery = NanosMachinery(soc, program, self.costs, software_graph=False)
        done = soc.engine.event(name="nanos_rv_done")
        contexts = {
            core_id: HwWorkerContext(soc, core_id, done)
            for core_id in range(num_workers)
        }
        #: Picos IDs of fetched-but-not-yet-retired tasks, keyed by SW ID.
        picos_ids: Dict[int, int] = {}
        main = soc.spawn_worker(
            0,
            self._main_thread(soc, program, machinery, contexts, picos_ids, done),
            name="nanos_rv_main",
        )
        workers = [main]
        for core_id in range(1, num_workers):
            workers.append(
                soc.spawn_worker(
                    core_id,
                    self._worker_thread(soc, program, machinery, contexts,
                                        picos_ids, done, core_id),
                    name=f"nanos_rv_worker{core_id}",
                )
            )
        soc.run(workers)

    # ------------------------------------------------------------------ #
    # Main thread
    # ------------------------------------------------------------------ #
    def _main_thread(self, soc: SoC, program: TaskProgram,
                     machinery: NanosMachinery, contexts, picos_ids,
                     done: Event) -> ProcessGen:
        core = soc.core(0)
        context = contexts[0]
        if program.serial_sections_cycles:
            yield from core.compute(program.serial_sections_cycles)
        submitted = 0
        def help_while_stalled() -> ProcessGen:
            # Role switching on submission back-pressure (Section IV-C).
            yield from self._run_one(soc, program, machinery, contexts,
                                     picos_ids, core, context)

        for task in program.tasks:
            yield from scenario_release_gate(soc, task)
            yield from machinery.charge_submission(core, task)
            yield from machinery.charge_plugin_marshalling(core, task)
            yield from submit_task_hw(core, task, sw_id=task.index,
                                      stall_handler=help_while_stalled)
            submitted += 1
            if task.index in program.taskwait_after:
                yield from self._taskwait(soc, program, machinery, contexts,
                                          picos_ids, core, context, submitted)
        yield from self._taskwait(soc, program, machinery, contexts, picos_ids,
                                  core, context, submitted)
        done.trigger(None)

    def _taskwait(self, soc: SoC, program: TaskProgram,
                  machinery: NanosMachinery, contexts, picos_ids, core: Core,
                  context: HwWorkerContext, target: int) -> ProcessGen:
        while True:
            value, cycles = machinery.retired.read(core.core_id)
            yield from core.charge(cycles)
            if value >= target:
                return
            ran = yield from self._run_one(soc, program, machinery, contexts,
                                           picos_ids, core, context)
            if not ran:
                yield from machinery.charge_idle_check(core)
                yield from self._wait_for_work_or_counter(
                    soc, machinery, context,
                    predicate=lambda: machinery.retired.value >= target,
                )

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #
    def _worker_thread(self, soc: SoC, program: TaskProgram,
                       machinery: NanosMachinery, contexts, picos_ids,
                       done: Event, core_id: int) -> ProcessGen:
        core = soc.core(core_id)
        context = contexts[core_id]
        while True:
            if done.triggered:
                return
            ran = yield from self._run_one(soc, program, machinery, contexts,
                                           picos_ids, core, context)
            if not ran:
                yield from machinery.charge_idle_check(core)
                yield from self._wait_for_work_or_counter(soc, machinery,
                                                          context, done)

    # ------------------------------------------------------------------ #
    # Fetch / execute / retire path
    # ------------------------------------------------------------------ #
    def _run_one(self, soc: SoC, program: TaskProgram,
                 machinery: NanosMachinery, contexts, picos_ids, core: Core,
                 context: HwWorkerContext) -> ProcessGen:
        """Execute at most one task found via Picos or the Scheduler queue."""
        # First drain anything already redirected to the Scheduler singleton.
        yield from machinery.charge_fetch(core)
        pending_index = yield from machinery.pop_ready(core)
        if pending_index is None:
            # Ask Picos for one descriptor; if one arrives, Nanos pushes it
            # through the Scheduler queue before running it.
            requested = yield from context.ensure_request()
            if not requested:
                return False
            fetched = yield from context.try_fetch()
            if fetched is None:
                return False
            picos_ids[fetched.sw_id] = fetched.picos_id
            yield from machinery._push_ready(core, fetched.sw_id)
            pending_index = yield from machinery.pop_ready(core)
            if pending_index is None:
                # Another worker stole the descriptor we just published.
                return False
        task = program.tasks[pending_index]
        task.run_kernel()
        yield from core.compute(task.payload_cycles)
        scenario_note_completion(soc, task)
        yield from machinery.charge_retirement(core)
        picos_id = picos_ids.pop(pending_index)
        yield from retire_task_hw(core, picos_id)
        yield from machinery.record_retirement_counter(core)
        return True

    def _wait_for_work_or_counter(self, soc: SoC, machinery: NanosMachinery,
                                  context: HwWorkerContext,
                                  done: Optional[Event] = None,
                                  predicate=None) -> ProcessGen:
        """Sleep until Picos routes work here, the Scheduler queue fills,
        a retirement bumps the counter, or the program ends."""
        from repro.runtime.base import wait_for_signals

        ready_queue = soc.manager.core_ready_queue(context.core_id)
        yield from wait_for_signals(
            soc,
            queues=(ready_queue, machinery.scheduler_queue),
            counters=(machinery.retired,),
            events=(done,) if done is not None else (),
            predicate=predicate,
        )
