"""Nanos-AXI: the Picos++/MMIO baseline from Tan et al. (2017).

The paper compares against the best previous Picos-based system, in which
the scheduler sits behind an AXI interconnect on a Zynq SoC and the runtime
reaches it through MMIO transactions driven by a DMA-like module.  The model
is identical to Nanos-RV except that every scheduler interaction goes
through :class:`~repro.picos.axi.AxiPicosInterface` — hundreds of cycles per
transaction — instead of the 2-cycle custom instructions.  (The figures the
paper quotes for this platform are already scaled from the Cortex-A9 to
Rocket-Chip cycles; our cost table is calibrated to the scaled values.)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.config import SimConfig
from repro.cpu.core import Core
from repro.cpu.soc import SoC
from repro.picos.axi import AxiPicosInterface
from repro.registry import register_runtime
from repro.picos.packets import TaskDescriptor
from repro.runtime.base import (Runtime, scenario_note_completion,
                                scenario_release_gate,
                                wait_for_queue_or_event)
from repro.runtime.nanos_machinery import NanosMachinery
from repro.runtime.task import Task, TaskProgram
from repro.sim.engine import Event, ProcessGen

__all__ = ["NanosAXIRuntime"]


@register_runtime("nanos-axi", tags=("hardware",), rank=30,
                  description="Nanos++ over Picos via the AXI bus "
                              "(Figure 7 only)")
class NanosAXIRuntime(Runtime):
    """Nanos on Picos++ behind an AXI interconnect (the literature baseline)."""

    name = "nanos-axi"
    uses_picos = True
    #: The baseline reaches Picos through MMIO/AXI; there is no Manager and
    #: there are no Delegates in that system.
    uses_rocc = False

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        super().__init__(config)
        self.costs = self.config.costs.nanos

    def _execute(self, soc: SoC, program: TaskProgram, num_workers: int) -> None:
        machinery = NanosMachinery(soc, program, self.costs, software_graph=False)
        axi = soc.axi_interface()
        done = soc.engine.event(name="nanos_axi_done")
        picos_ids: Dict[int, int] = {}
        main = soc.spawn_worker(
            0,
            self._main_thread(soc, program, machinery, axi, picos_ids, done),
            name="nanos_axi_main",
        )
        workers = [main]
        for core_id in range(1, num_workers):
            workers.append(
                soc.spawn_worker(
                    core_id,
                    self._worker_thread(soc, program, machinery, axi, picos_ids,
                                        done, core_id),
                    name=f"nanos_axi_worker{core_id}",
                )
            )
        soc.run(workers)

    # ------------------------------------------------------------------ #
    # Main thread
    # ------------------------------------------------------------------ #
    def _main_thread(self, soc: SoC, program: TaskProgram,
                     machinery: NanosMachinery, axi: AxiPicosInterface,
                     picos_ids, done: Event) -> ProcessGen:
        core = soc.core(0)
        if program.serial_sections_cycles:
            yield from core.compute(program.serial_sections_cycles)
        submitted = 0
        for task in program.tasks:
            yield from scenario_release_gate(soc, task)
            yield from machinery.charge_submission(core, task)
            yield from machinery.charge_plugin_marshalling(core, task)
            yield from self._submit_axi(axi, task)
            submitted += 1
            if task.index in program.taskwait_after:
                yield from self._taskwait(soc, program, machinery, axi,
                                          picos_ids, core, submitted)
        yield from self._taskwait(soc, program, machinery, axi, picos_ids,
                                  core, submitted)
        done.trigger(None)

    @staticmethod
    def _submit_axi(axi: AxiPicosInterface, task: Task) -> ProcessGen:
        descriptor = TaskDescriptor(sw_id=task.index,
                                    dependences=task.dependences)
        yield from axi.submit_task(descriptor)

    def _taskwait(self, soc: SoC, program: TaskProgram,
                  machinery: NanosMachinery, axi: AxiPicosInterface, picos_ids,
                  core: Core, target: int) -> ProcessGen:
        while True:
            value, cycles = machinery.retired.read(core.core_id)
            yield from core.charge(cycles)
            if value >= target:
                return
            ran = yield from self._run_one(soc, program, machinery, axi,
                                           picos_ids, core)
            if not ran:
                yield from machinery.charge_idle_check(core)
                yield from self._wait_for_work_or_counter(
                    soc, machinery,
                    predicate=lambda: machinery.retired.value >= target,
                )

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #
    def _worker_thread(self, soc: SoC, program: TaskProgram,
                       machinery: NanosMachinery, axi: AxiPicosInterface,
                       picos_ids, done: Event, core_id: int) -> ProcessGen:
        core = soc.core(core_id)
        while True:
            if done.triggered:
                return
            ran = yield from self._run_one(soc, program, machinery, axi,
                                           picos_ids, core)
            if not ran:
                yield from machinery.charge_idle_check(core)
                yield from self._wait_for_work_or_counter(soc, machinery, done)

    # ------------------------------------------------------------------ #
    # Fetch / execute / retire
    # ------------------------------------------------------------------ #
    def _run_one(self, soc: SoC, program: TaskProgram,
                 machinery: NanosMachinery, axi: AxiPicosInterface, picos_ids,
                 core: Core) -> ProcessGen:
        yield from machinery.charge_fetch(core)
        pending_index = yield from machinery.pop_ready(core)
        if pending_index is None:
            fetched = yield from axi.fetch_ready_task()
            if fetched is None:
                return False
            picos_ids[fetched.sw_id] = fetched.picos_id
            yield from machinery._push_ready(core, fetched.sw_id)
            pending_index = yield from machinery.pop_ready(core)
            if pending_index is None:
                return False
        task = program.tasks[pending_index]
        task.run_kernel()
        yield from core.compute(task.payload_cycles)
        scenario_note_completion(soc, task)
        yield from machinery.charge_retirement(core)
        picos_id = picos_ids.pop(pending_index)
        yield from axi.retire_task(picos_id)
        yield from machinery.record_retirement_counter(core)
        return True

    def _wait_for_work_or_counter(self, soc: SoC, machinery: NanosMachinery,
                                  done: Optional[Event] = None,
                                  predicate=None) -> ProcessGen:
        """Sleep until the device publishes ready packets, the Scheduler
        queue fills, the retirement counter moves, or the program ends."""
        from repro.runtime.base import wait_for_signals

        yield from wait_for_signals(
            soc,
            queues=(soc.picos.ready_queue, machinery.scheduler_queue),
            counters=(machinery.retired,),
            events=(done,) if done is not None else (),
            predicate=predicate,
        )
