"""Shared model of the Nanos runtime machinery (Section V-A).

Nanos is a mature, plugin-based OmpSs runtime.  Its flexibility costs
per-event overhead that the paper calls out explicitly:

* the plugin interface relies heavily on virtual functions (extra dependent
  loads per submission, fetch and retirement),
* shared data structures are guarded by mutexes and condition variables
  (atomic traffic plus futex system calls),
* ready tasks — whether found in software or fetched from Picos — are
  funnelled through a single central Scheduler singleton queue that every
  core contends on.

:class:`NanosMachinery` charges those costs against the simulated machine.
It is shared by the three Nanos-based runtime models (Nanos-SW, Nanos-RV and
Nanos-AXI); the software dependence-inference parts are only used by
Nanos-SW.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.common.config import CACHE_LINE_BYTES, NanosCosts
from repro.common.errors import RuntimeModelError
from repro.common.stats import Stats
from repro.cpu.core import Core
from repro.cpu.soc import SoC
from repro.memory.hierarchy import SharedCounter, SoftwareMutex
from repro.picos.dependence import TaskGraph
from repro.runtime.task import Task, TaskProgram
from repro.sim.engine import ProcessGen
from repro.sim.queues import DecoupledQueue

__all__ = ["NanosMachinery"]

#: Shared cache lines that back the Nanos descriptor pool and scheduler
#: queue; accesses rotate over them so that different cores keep stealing
#: the same lines from each other (the bouncing the paper describes).
_SHARED_POOL_LINES = 64


class NanosMachinery:
    """Cost and bookkeeping model of the Nanos runtime core."""

    def __init__(self, soc: SoC, program: TaskProgram, costs: NanosCosts,
                 software_graph: bool) -> None:
        self.soc = soc
        self.program = program
        self.costs = costs
        self.software_graph = software_graph
        self.stats = Stats("nanos_machinery")
        memory = soc.memory
        #: Descriptor pool + scheduler structures shared between all threads.
        self.shared_pool = memory.allocate(
            "nanos.shared_pool", _SHARED_POOL_LINES * CACHE_LINE_BYTES
        )
        self._pool_cursor = 0
        #: The central Scheduler singleton queue every ready task goes
        #: through (both in Nanos-SW and in Nanos-RV, per the paper).
        self.scheduler_queue: DecoupledQueue = DecoupledQueue(
            soc.engine, max(program.num_tasks, 1) + 1, name="nanos.scheduler_queue"
        )
        # Stochastic scenarios reorder ready tasks here: the Scheduler
        # singleton is the software analogue of the Picos ready queue.
        scenario = getattr(soc, "scenario", None)
        if scenario is not None:
            scenario.attach_queue(self.scheduler_queue)
        self.scheduler_mutex: SoftwareMutex = memory.mutex(
            "nanos.scheduler_mutex", syscall_cycles=costs.syscall_cycles
        )
        self.graph_mutex: SoftwareMutex = memory.mutex(
            "nanos.graph_mutex", syscall_cycles=costs.syscall_cycles
        )
        #: Retirement counter used by taskwait (guarded accesses).
        self.retired: SharedCounter = memory.shared_counter("nanos.retired")
        # Software dependence graph (only exercised by Nanos-SW).
        self.sw_graph: Optional[TaskGraph] = (
            TaskGraph(capacity=max(program.num_tasks, 1)) if software_graph
            else None
        )
        self._sw_ids: Dict[int, int] = {}
        self._known_addresses: Set[int] = set()
        self.idle_checks: List[int] = [0] * soc.num_cores

    # ------------------------------------------------------------------ #
    # Generic cost helpers
    # ------------------------------------------------------------------ #
    def _touch_shared_lines(self, core: Core, count: int) -> ProcessGen:
        """Access ``count`` lines of the shared pool, alternating writes."""
        for offset in range(count):
            index = (self._pool_cursor + offset) % _SHARED_POOL_LINES
            address = self.shared_pool.address_of(index * CACHE_LINE_BYTES)
            if offset % 2:
                yield from core.store(address)
            else:
                yield from core.load(address)
        self._pool_cursor = (self._pool_cursor + count) % _SHARED_POOL_LINES

    def _virtual_calls(self, core: Core, count: int) -> ProcessGen:
        yield from core.charge(count * self.costs.virtual_call_cycles)

    def _mutex_ops(self, core: Core, mutex: SoftwareMutex,
                   count: int) -> ProcessGen:
        for _ in range(count):
            yield from core.charge(mutex.acquire(core.core_id))
            yield from core.charge(mutex.release(core.core_id))

    # ------------------------------------------------------------------ #
    # Submission / fetch / retirement bookkeeping (all Nanos flavours)
    # ------------------------------------------------------------------ #
    def charge_submission(self, core: Core, task: Task) -> ProcessGen:
        """Per-task submission bookkeeping of the Nanos core runtime."""
        costs = self.costs
        self.stats.incr("submissions")
        yield from core.execute(costs.submit_instructions)
        yield from self._virtual_calls(core, costs.submit_virtual_calls)
        yield from self._touch_shared_lines(core, costs.submit_shared_lines)
        yield from self._mutex_ops(core, self.scheduler_mutex,
                                   costs.submit_mutex_ops)

    def charge_plugin_marshalling(self, core: Core, task: Task) -> ProcessGen:
        """Extra picos-plugin work proportional to the dependence count."""
        yield from core.execute(
            self.costs.plugin_per_dependence_instructions * task.num_dependences
        )

    def charge_fetch(self, core: Core) -> ProcessGen:
        """Per-fetch bookkeeping: scheduler singleton pop under its lock."""
        costs = self.costs
        self.stats.incr("fetches")
        yield from core.execute(costs.fetch_instructions)
        yield from self._virtual_calls(core, costs.fetch_virtual_calls)
        yield from self._touch_shared_lines(core, costs.fetch_shared_lines)
        yield from self._mutex_ops(core, self.scheduler_mutex,
                                   costs.fetch_mutex_ops)

    def charge_retirement(self, core: Core) -> ProcessGen:
        """Per-retirement bookkeeping common to every Nanos flavour."""
        costs = self.costs
        self.stats.incr("retirements")
        yield from core.execute(costs.retire_instructions)
        yield from self._virtual_calls(core, costs.retire_virtual_calls)
        yield from self._touch_shared_lines(core, costs.retire_shared_lines)
        yield from self._mutex_ops(core, self.graph_mutex,
                                   costs.retire_mutex_ops)

    def charge_idle_check(self, core: Core) -> ProcessGen:
        """One failed work-fetch iteration; occasionally a futex sleep."""
        costs = self.costs
        self.idle_checks[core.core_id] += 1
        yield from core.execute(costs.taskwait_poll_instructions)
        if self.idle_checks[core.core_id] % costs.idle_checks_per_syscall == 0:
            yield from core.syscall(costs.syscall_cycles)

    def record_retirement_counter(self, core: Core) -> ProcessGen:
        """Bump the shared retirement counter (used by taskwait)."""
        yield from core.charge(self.retired.add(core.core_id))

    # ------------------------------------------------------------------ #
    # Software dependence inference and graph management (Nanos-SW only)
    # ------------------------------------------------------------------ #
    def software_submit(self, core: Core, task: Task) -> ProcessGen:
        """Infer dependences in software and insert the task in the graph.

        Returns True when the task is immediately ready (and has been pushed
        to the central scheduler queue).
        """
        if self.sw_graph is None:
            raise RuntimeModelError("software_submit on a hardware-graph Nanos")
        costs = self.costs
        yield from core.execute(costs.graph_insert_instructions)
        yield from self._touch_shared_lines(core, costs.graph_insert_shared_lines)
        yield from self._mutex_ops(core, self.graph_mutex, 1)
        for dependence in task.dependences:
            if dependence.address in self._known_addresses:
                yield from core.execute(costs.dep_known_address_instructions)
                yield from self._touch_shared_lines(
                    core, costs.dep_known_address_shared_lines
                )
            else:
                self._known_addresses.add(dependence.address)
                yield from core.execute(costs.dep_new_address_instructions)
                yield from self._touch_shared_lines(
                    core, costs.dep_new_address_shared_lines
                )
        graph_id, ready = self.sw_graph.submit(task.index, task.dependences)
        self._sw_ids[task.index] = graph_id
        if ready:
            yield from self._push_ready(core, task.index)
        return ready

    def software_retire(self, core: Core, task_index: int) -> ProcessGen:
        """Retire a task in the software graph, waking its successors."""
        if self.sw_graph is None:
            raise RuntimeModelError("software_retire on a hardware-graph Nanos")
        graph_id = self._sw_ids.pop(task_index)
        record = self.sw_graph.task(graph_id)
        has_successors = bool(record.successors)
        newly_ready = self.sw_graph.retire(graph_id)
        if has_successors:
            costs = self.costs
            yield from core.execute(costs.retire_successor_update_instructions)
            yield from self._touch_shared_lines(
                core, costs.retire_successor_shared_lines
            )
        for graph_ready_id in newly_ready:
            yield from self._push_ready(
                core, self._index_of_graph_id(graph_ready_id)
            )

    def _index_of_graph_id(self, graph_id: int) -> int:
        if self.sw_graph is None:
            raise RuntimeModelError("no software graph")
        return self.sw_graph.task(graph_id).sw_id

    def _push_ready(self, core: Core, task_index: int) -> ProcessGen:
        """Push a ready task into the central scheduler queue."""
        yield from self._mutex_ops(core, self.scheduler_mutex, 1)
        if not self.scheduler_queue.try_put(task_index):
            raise RuntimeModelError("Nanos scheduler queue overflowed")

    def pop_ready(self, core: Core) -> ProcessGen:
        """Pop one ready task index from the scheduler queue, or ``None``."""
        yield from self._mutex_ops(core, self.scheduler_mutex, 1)
        return self.scheduler_queue.try_get()
