"""Worker-side bookkeeping shared by the hardware-accelerated runtimes.

A worker thread that consumes work from Picos has to pair every successful
fetch with a previously issued Ready Task Request (Section IV-E.4): the
request tells Picos Manager to move one ready descriptor into this core's
private ready queue, and the Fetch SW ID / Fetch Picos ID pair later drains
it.  :class:`HwWorkerContext` tracks the outstanding-request balance for one
core and wraps the three steps (request, fetch, wait-for-work) so that both
Nanos-RV and Phentos worker loops can share them.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cpu.core import Core
from repro.cpu.soc import SoC
from repro.runtime.base import wait_for_queue_or_event
from repro.runtime.hw_interface import (
    FetchedTask,
    fetch_ready_task,
    request_ready_task,
)
from repro.sim.engine import Delay, Event

__all__ = ["HwWorkerContext"]

#: Short pause after a rejected Ready Task Request before retrying, so the
#: routing queue is not hammered every cycle.
_REQUEST_RETRY_CYCLES = 16


class HwWorkerContext:
    """Per-core work-fetch state for runtimes using the custom instructions."""

    def __init__(self, soc: SoC, core_id: int, done: Event) -> None:
        self.soc = soc
        self.core = soc.core(core_id)
        self.core_id = core_id
        self.done = done
        self.outstanding_requests = 0
        self.tasks_fetched = 0
        self.fetch_failures = 0

    # ------------------------------------------------------------------ #
    # Request / fetch protocol
    # ------------------------------------------------------------------ #
    def ensure_request(self) -> Generator:
        """Issue a Ready Task Request when none is outstanding.

        Returns True if, after this call, at least one request is
        outstanding for the core (i.e. a later fetch may succeed).
        """
        if self.outstanding_requests > 0:
            return True
        accepted = yield from request_ready_task(self.core)
        if accepted:
            self.outstanding_requests += 1
            return True
        # Routing queue full: retry a bit later; the caller decides whether
        # to do alternative work in the meantime.
        yield Delay(_REQUEST_RETRY_CYCLES)
        return False

    def try_fetch(self) -> Generator:
        """Attempt one fetch; returns a :class:`FetchedTask` or ``None``."""
        fetched: Optional[FetchedTask] = yield from fetch_ready_task(self.core)
        if fetched is None:
            self.fetch_failures += 1
            return None
        self.outstanding_requests -= 1
        self.tasks_fetched += 1
        return fetched

    def wait_for_work(self) -> Generator:
        """Sleep until the private ready queue fills or the program ends."""
        queue = self.soc.manager.core_ready_queue(self.core_id)
        yield from wait_for_queue_or_event(self.soc, queue, self.done)

    def acquire_task(self, help_while_stalled=None) -> Generator:
        """Obtain one ready task, or ``None`` once the program has ended.

        The full request → fetch → wait loop.  ``help_while_stalled`` is an
        optional generator factory invoked while the request path is
        rejected (used by the main thread to switch roles instead of
        blocking — the paper's deadlock-avoidance pattern).
        """
        while True:
            if self.done.triggered:
                return None
            requested = yield from self.ensure_request()
            if not requested:
                if help_while_stalled is not None:
                    yield from help_while_stalled()
                continue
            fetched = yield from self.try_fetch()
            if fetched is not None:
                return fetched
            if self.done.triggered:
                return None
            yield from self.wait_for_work()
