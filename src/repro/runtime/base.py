"""Runtime base classes and the result record every runtime produces.

A *runtime model* takes a :class:`~repro.runtime.task.TaskProgram` and a
:class:`~repro.cpu.soc.SoC` and executes the program the way the real
runtime would: a main thread on core 0 submits tasks (and helps execute
them), worker threads on the remaining cores fetch and execute ready tasks,
and every scheduling action is charged to the simulated machine.  The result
is a :class:`RuntimeResult` with the elapsed cycles and enough bookkeeping
for the evaluation harness to compute speedups, utilisation and lifetime
scheduling overheads.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import SimConfig
from repro.common.errors import RuntimeModelError
from repro.common.stats import Stats
from repro.cpu.soc import SoC
from repro.runtime.task import TaskProgram
from repro.sim.engine import Delay, Event, ProcessGen, Wait
from repro.sim.queues import DecoupledQueue

__all__ = ["RuntimeResult", "Runtime", "wait_for_signals",
           "wait_for_queue_or_event", "scenario_release_gate",
           "scenario_note_completion"]


@dataclass
class RuntimeResult:
    """Outcome of running one program on one runtime."""

    runtime: str
    program: str
    num_cores: int
    elapsed_cycles: int
    tasks_executed: int
    serial_cycles: int
    mean_task_cycles: float
    busy_cycles: int
    overhead_cycles: int
    per_core_busy: List[int] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    parameters: Dict[str, object] = field(default_factory=dict)

    @property
    def speedup_vs_serial(self) -> float:
        """Speedup of this run with respect to the serial execution."""
        if self.elapsed_cycles <= 0:
            raise RuntimeModelError("elapsed_cycles must be positive")
        return self.serial_cycles / self.elapsed_cycles

    @property
    def utilization(self) -> float:
        """Fraction of core-cycles spent executing task payloads."""
        total = self.elapsed_cycles * self.num_cores
        return self.busy_cycles / total if total else 0.0

    @property
    def lifetime_overhead_per_task(self) -> float:
        """Mean task-scheduling overhead per task, in cycles.

        This is the paper's *lifetime Task Scheduling overhead* (Figure 7):
        the wall-clock cost the scheduling machinery adds per task once the
        payload cycles executed on the critical core are removed.  It is
        measured on single-worker runs of the Task-Free / Task-Chain
        micro-benchmarks, where every non-payload cycle is scheduling.
        """
        if self.tasks_executed <= 0:
            raise RuntimeModelError("no tasks executed")
        if self.num_cores == 1:
            # Single worker: everything beyond the payload is scheduling.
            overhead_total = self.elapsed_cycles - self.serial_cycles
        else:
            # For multi-worker runs fall back to the accounted overhead.
            overhead_total = self.overhead_cycles / self.num_cores
        return max(overhead_total, 0) / self.tasks_executed

    def normalized_performance(self, baseline: "RuntimeResult") -> float:
        """This run's performance relative to ``baseline`` (higher is better)."""
        return baseline.elapsed_cycles / self.elapsed_cycles


class Runtime(abc.ABC):
    """Common driver logic shared by every runtime model."""

    # Concrete subclasses that add instance state keep their __dict__
    # unless they declare __slots__ themselves; the base attributes stay
    # slotted either way.
    __slots__ = ("config", "stats")

    #: Short identifier used in reports ("serial", "nanos-sw", "phentos", ...).
    name: str = "abstract"

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        self.config = config if config is not None else SimConfig()
        self.stats = Stats(self.name)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, program: TaskProgram,
            num_workers: Optional[int] = None,
            scenario=None) -> RuntimeResult:
        """Execute ``program`` on a freshly built SoC and report the result.

        ``scenario`` — an optional :class:`~repro.scenario.ScenarioRun` —
        installs stochastic-scenario hooks (release gating, scheduler
        selectors, latency bookkeeping) on the SoC before execution and
        merges its metrics into the result's ``stats``.  ``None`` (the
        default) reproduces the deterministic harness bit-for-bit.
        """
        program.validate()
        workers = self._resolve_workers(num_workers)
        soc = self.build_soc(workers)
        if scenario is not None:
            scenario.install(soc)
        self._execute(soc, program, workers)
        elapsed = soc.now
        if elapsed <= 0:
            # Guard against empty programs finishing at cycle zero.
            elapsed = 1
        stats = soc.stats_report()
        if scenario is not None:
            stats.update(scenario.metrics())
        return RuntimeResult(
            runtime=self.name,
            program=program.name,
            num_cores=workers,
            elapsed_cycles=elapsed,
            tasks_executed=program.num_tasks,
            serial_cycles=max(program.serial_cycles, 1),
            mean_task_cycles=program.mean_task_cycles,
            busy_cycles=soc.total_busy_cycles(),
            overhead_cycles=soc.total_overhead_cycles(),
            per_core_busy=[core.busy_cycles for core in soc.cores],
            stats=stats,
            parameters=dict(program.parameters),
        )

    def build_soc(self, num_workers: int) -> SoC:
        """Build the SoC this runtime runs on (Picos-enabled by default)."""
        config = self.config.with_cores(num_workers)
        return SoC(config, with_picos=self.uses_picos,
                   with_rocc=self.uses_rocc)

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    #: Whether the SoC must instantiate the Picos device at all.
    uses_picos: bool = True
    #: Whether the SoC must instantiate the tightly-integrated path (Picos
    #: Manager + per-core Delegates).  The AXI baseline turns this off.
    uses_rocc: bool = True

    @abc.abstractmethod
    def _execute(self, soc: SoC, program: TaskProgram, num_workers: int) -> None:
        """Spawn the runtime's processes on ``soc`` and run to completion."""

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _resolve_workers(self, num_workers: Optional[int]) -> int:
        workers = (self.config.machine.num_cores if num_workers is None
                   else num_workers)
        if workers <= 0:
            raise RuntimeModelError("num_workers must be positive")
        return workers


def scenario_release_gate(soc: SoC, task) -> ProcessGen:
    """Delay the submitting thread until ``task``'s release cycle.

    The deterministic harness leaves every ``release_cycle`` at 0, so
    this is a cheap no-op generator there; under a stochastic arrival
    model the main thread stalls exactly like a producer that has not
    yet created the task.
    """
    if task.release_cycle > 0:
        wait = task.release_cycle - soc.engine.now
        if wait > 0:
            yield Delay(wait)


def scenario_note_completion(soc: SoC, task) -> None:
    """Report ``task``'s completion to the installed scenario, if any."""
    scenario = getattr(soc, "scenario", None)
    if scenario is not None:
        scenario.note_completion(task.index, soc.engine.now)


def wait_for_signals(soc: SoC, queues=(), counters=(), events=(),
                     predicate=None) -> ProcessGen:
    """Sleep until one of several wake-up sources shows activity.

    Worker loops use this to model "spin until something happens" without
    generating one simulation event per polling iteration — the worker is
    idle either way, so wall-clock time is unaffected while the event count
    stays proportional to useful work.

    Wake-up sources:

    * ``queues`` — any enqueue on these :class:`DecoupledQueue`s,
    * ``counters`` — any update of these shared counters,
    * ``events`` — any of these one-shot events firing,
    * ``predicate`` — if it already evaluates to True (checked before
      sleeping, with no intervening yield), the helper returns immediately.
      This closes the lost-wake-up window between a failed fetch and the
      subscription of the observers.
    """
    # Hot path: every worker idle period passes through here, so the
    # activity scans are plain loops over internal state (no generator
    # expressions, no property descriptors).
    if predicate is not None and predicate():
        return
    for queue in queues:
        if queue._items:
            return
    for event in events:
        if event._triggered:
            return
    wake = soc.engine.event(name="worker_wake")

    def on_signal(_value=None) -> None:
        if not wake.triggered:
            wake.trigger(None)

    for queue in queues:
        queue.subscribe_enqueue(on_signal)
    for counter in counters:
        counter.subscribe(on_signal)
    for event in events:
        event.add_callback(on_signal)
    try:
        yield Wait(wake)
    finally:
        for queue in queues:
            queue.unsubscribe_enqueue(on_signal)
        for counter in counters:
            counter.unsubscribe(on_signal)


def wait_for_queue_or_event(soc: SoC, queue: DecoupledQueue,
                            event: Event) -> ProcessGen:
    """Sleep until ``queue`` has an item or ``event`` fires."""
    yield from wait_for_signals(soc, queues=(queue,), events=(event,))
