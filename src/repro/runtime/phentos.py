"""Phentos: the fly-weight, header-only task-scheduling runtime (Section V-B).

Phentos was written from scratch for the tightly-integrated architecture and
pursues six design goals:

1. no non-IO syscalls (no mutexes, no condition variables),
2. minimal cache-line invalidations per submission,
3. minimal cache-line moves per work fetch,
4. inlinable API methods (header-only library),
5. minimal writes to shared atomic variables (no cache bouncing),
6. no false sharing (cache-aware data packing).

The model reproduces the corresponding mechanisms:

* the **Task Metadata Array**, whose elements are exactly one cache line
  (up to 7 dependences) or two cache lines (up to 15), chosen per program;
  an element is only ever touched by the thread holding the matching SW ID;
* a single **shared atomic retirement counter**, updated lazily from
  per-core private counters — a core only flushes after a work-fetch
  failure, and the taskwait loop polls the counter at a coarse interval;
* direct use of the seven custom instructions for everything else.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import CACHE_LINE_BYTES, PhentosCosts, SimConfig
from repro.cpu.soc import SoC
from repro.registry import register_runtime
from repro.memory.hierarchy import SharedCounter
from repro.runtime.base import (Runtime, scenario_note_completion,
                                scenario_release_gate,
                                wait_for_queue_or_event)
from repro.runtime.hw_interface import retire_task_hw, submit_task_hw
from repro.runtime.task import Task, TaskProgram
from repro.runtime.worker import HwWorkerContext
from repro.sim.engine import Event, ProcessGen

__all__ = ["PhentosRuntime"]


@register_runtime("phentos", tags=("case", "compared", "hardware"),
                  rank=40,
                  description="Phentos: hardware-centric runtime over "
                              "Picos")
class PhentosRuntime(Runtime):
    """Hardware-accelerated fly-weight runtime model."""

    name = "phentos"
    uses_picos = True

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        super().__init__(config)
        self.costs: PhentosCosts = self.config.costs.phentos

    # ------------------------------------------------------------------ #
    # Program execution
    # ------------------------------------------------------------------ #
    def _execute(self, soc: SoC, program: TaskProgram, num_workers: int) -> None:
        state = _PhentosState(self, soc, program)
        main = soc.spawn_worker(0, self._main_thread(state), name="phentos_main")
        workers = [main]
        for core_id in range(1, num_workers):
            workers.append(
                soc.spawn_worker(core_id, self._worker_thread(state, core_id),
                                 name=f"phentos_worker{core_id}")
            )
        soc.run(workers)

    # ------------------------------------------------------------------ #
    # Main thread: submits tasks, helps execute, owns the taskwaits
    # ------------------------------------------------------------------ #
    def _main_thread(self, state: "_PhentosState") -> ProcessGen:
        soc, program = state.soc, state.program
        core = soc.core(0)
        context = state.contexts[0]
        if program.serial_sections_cycles:
            yield from core.compute(program.serial_sections_cycles)
        submitted = 0
        for task in program.tasks:
            yield from scenario_release_gate(soc, task)
            yield from self._submit(state, core, context, task)
            submitted += 1
            if task.index in program.taskwait_after:
                yield from self._taskwait(state, core, context, submitted)
        yield from self._taskwait(state, core, context, submitted)
        state.done.trigger(None)

    def _submit(self, state: "_PhentosState", core, context: HwWorkerContext,
                task: Task) -> ProcessGen:
        # Inlined bookkeeping: fill the Task Metadata Array element that the
        # SW ID will later index.  The element lives on one or two private
        # cache lines, so this is a local store (design goals 2 and 6).
        yield from core.execute(
            self.costs.submit_instructions
            + self.costs.submit_per_dependence_instructions
            * task.num_dependences
        )
        element_address = state.metadata_address(task.index)
        for line in range(state.metadata_lines):
            yield from core.store(element_address + line * CACHE_LINE_BYTES)

        def help_while_stalled() -> ProcessGen:
            # Role switching (Section IV-C): if submission back-pressures,
            # run one ready task instead of spinning.
            yield from self._help_once(state, core, context)

        yield from submit_task_hw(core, task, sw_id=task.index,
                                  stall_handler=help_while_stalled)

    def _taskwait(self, state: "_PhentosState", core, context: HwWorkerContext,
                  target: int) -> ProcessGen:
        """Execute ready tasks until ``target`` tasks have retired."""
        while True:
            yield from self._flush_private_counter(state, core.core_id, core)
            value, cycles = state.retired.read(core.core_id)
            yield from core.charge(cycles)
            if value + state.private_counters[core.core_id] >= target and \
                    state.private_counters[core.core_id]:
                yield from self._flush_private_counter(state, core.core_id, core,
                                                       force=True)
                value, cycles = state.retired.read(core.core_id)
                yield from core.charge(cycles)
            if value >= target:
                return
            helped = yield from self._help_once(state, core, context)
            if not helped:
                # Nothing to run: poll the counter at the configured coarse
                # interval (design goal 5) by sleeping until it changes.
                yield from core.execute(2)
                yield from self._wait_counter_or_work(state, context, target)

    # ------------------------------------------------------------------ #
    # Worker threads
    # ------------------------------------------------------------------ #
    def _worker_thread(self, state: "_PhentosState", core_id: int) -> ProcessGen:
        soc = state.soc
        core = soc.core(core_id)
        context = state.contexts[core_id]
        while True:
            if state.done.triggered:
                yield from self._flush_private_counter(state, core_id, core,
                                                       force=True)
                return
            fetched = yield from context.acquire_task()
            if fetched is None:
                yield from self._flush_private_counter(state, core_id, core,
                                                       force=True)
                return
            yield from self._run_task(state, core, fetched.sw_id,
                                      fetched.picos_id)
            # Flushing the private counter is throttled while work keeps
            # arriving; a work-fetch failure (empty private queue) forces the
            # flush so taskwait can observe the retirements (Section V-B).
            queue_empty = soc.manager.core_ready_queue(core_id).empty
            yield from self._flush_private_counter(state, core_id, core,
                                                   force=queue_empty)

    # ------------------------------------------------------------------ #
    # Task execution, retirement, counter management
    # ------------------------------------------------------------------ #
    def _help_once(self, state: "_PhentosState", core,
                   context: HwWorkerContext) -> ProcessGen:
        """Fetch and run at most one ready task; returns True if one ran."""
        requested = yield from context.ensure_request()
        if not requested:
            return False
        fetched = yield from context.try_fetch()
        if fetched is None:
            return False
        yield from self._run_task(state, core, fetched.sw_id, fetched.picos_id)
        return True

    def _run_task(self, state: "_PhentosState", core, sw_id: int,
                  picos_id: int) -> ProcessGen:
        task = state.program.tasks[sw_id]
        # Read the task metadata element (one or two cache-line transfers —
        # design goal 3), run the payload, retire through the instruction.
        yield from core.execute(self.costs.fetch_instructions)
        element_address = state.metadata_address(sw_id)
        for line in range(state.metadata_lines):
            yield from core.load(element_address + line * CACHE_LINE_BYTES)
        task.run_kernel()
        yield from core.compute(task.payload_cycles)
        scenario_note_completion(state.soc, task)
        yield from core.execute(self.costs.retire_instructions)
        yield from retire_task_hw(core, picos_id)
        state.private_counters[core.core_id] += 1
        state.executed_by_core[core.core_id] += 1

    def _flush_private_counter(self, state: "_PhentosState", core_id: int,
                               core, force: bool = False) -> ProcessGen:
        pending = state.private_counters[core_id]
        if not pending:
            return
        if not force and pending < self.costs.fetch_failures_per_counter_update:
            # Keep accumulating unless the caller saw a work-fetch failure.
            return
        cycles = state.retired.add(core_id, pending)
        state.private_counters[core_id] = 0
        yield from core.charge(cycles)

    def _wait_counter_or_work(self, state: "_PhentosState",
                              context: HwWorkerContext,
                              target: int) -> ProcessGen:
        """Sleep until the retirement counter moves or work shows up."""
        from repro.runtime.base import wait_for_signals

        soc = state.soc
        queue = soc.manager.core_ready_queue(context.core_id)
        yield from wait_for_signals(
            soc,
            queues=(queue,),
            counters=(state.retired,),
            predicate=lambda: state.retired.value >= target,
        )


class _PhentosState:
    """Shared state of one Phentos program run."""

    def __init__(self, runtime: PhentosRuntime, soc: SoC,
                 program: TaskProgram) -> None:
        self.runtime = runtime
        self.soc = soc
        self.program = program
        self.done: Event = soc.engine.event(name="phentos_done")
        costs = runtime.costs
        #: One or two cache lines per Task Metadata Array element, selected
        #: from the program's maximum dependence count (a compile-time macro
        #: in the real Phentos).
        self.metadata_lines = (
            costs.metadata_lines_small
            if program.max_dependences <= costs.small_element_max_deps
            else costs.metadata_lines_large
        )
        element_bytes = self.metadata_lines * CACHE_LINE_BYTES
        self.metadata_region = soc.memory.allocate_array(
            "phentos.task_metadata", element_bytes, max(program.num_tasks, 1)
        )
        self.retired: SharedCounter = soc.memory.shared_counter(
            "phentos.retired_counter"
        )
        self.private_counters: List[int] = [0] * soc.num_cores
        self.executed_by_core: List[int] = [0] * soc.num_cores
        self.contexts: Dict[int, HwWorkerContext] = {
            core_id: HwWorkerContext(soc, core_id, self.done)
            for core_id in range(soc.num_cores)
        }

    def metadata_address(self, sw_id: int) -> int:
        """Address of the Task Metadata Array element for ``sw_id``."""
        element_bytes = self.metadata_lines * CACHE_LINE_BYTES
        return self.metadata_region.element(sw_id, element_bytes)
