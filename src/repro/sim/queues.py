"""Bounded decoupled queues modelling Chisel ready/valid FIFOs.

Rocket Chip, Picos Manager and Picos itself communicate through hardware
queues with back-pressure.  :class:`DecoupledQueue` models such a FIFO:

* bounded capacity,
* non-blocking ``try_put`` / ``try_get`` used by hardware state machines
  (these mirror the ``valid && ready`` single-cycle handshake),
* blocking access for engine processes via the :class:`~repro.sim.engine.Put`
  and :class:`~repro.sim.engine.Get` commands.

:class:`ProtocolCrossingQueue` adds the fallthrough/non-fallthrough
distinction called out in Section IV-F.2 of the paper: Picos queues are
non-fallthrough (an item written this cycle is only visible next cycle),
whereas standard Chisel queues are fallthrough.  The protocol-crossing
modules of Picos Manager exist precisely to bridge that difference.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generic, List, Optional, Tuple, TypeVar

from repro.common.errors import QueueError
from repro.sim.engine import Engine, Process

__all__ = ["DecoupledQueue", "ProtocolCrossingQueue"]

T = TypeVar("T")


class DecoupledQueue(Generic[T]):
    """A bounded FIFO with ready/valid semantics and blocking process access."""

    __slots__ = ("engine", "capacity", "name", "_items", "_put_waiters",
                 "_get_waiters", "total_enqueued", "total_dequeued",
                 "high_watermark", "_enqueue_observers",
                 "_dequeue_observers", "selector")

    def __init__(self, engine: Engine, capacity: int, name: str = "queue") -> None:
        if capacity <= 0:
            raise QueueError(f"queue capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self._put_waiters: Deque[Tuple[Process, T]] = deque()
        self._get_waiters: Deque[Process] = deque()
        self.total_enqueued = 0
        self.total_dequeued = 0
        self.high_watermark = 0
        self._enqueue_observers: List[Any] = []
        self._dequeue_observers: List[Any] = []
        #: Optional scheduling policy hook: ``selector(items) -> index``
        #: names which queued entry the next dequeue serves.  ``None``
        #: (the default, and the paper's FIFO behaviour) keeps the
        #: zero-overhead ``popleft`` fast path.  Installed by the
        #: stochastic scenario layer (:mod:`repro.scenario`).
        self.selector = None

    def subscribe_enqueue(self, callback) -> None:
        """Register ``callback()`` to run after every enqueue (HW wake-up)."""
        self._enqueue_observers.append(callback)

    def subscribe_dequeue(self, callback) -> None:
        """Register ``callback()`` to run after every dequeue (HW wake-up)."""
        self._dequeue_observers.append(callback)

    def unsubscribe_enqueue(self, callback) -> None:
        """Remove a previously registered enqueue observer (no-op if absent)."""
        try:
            self._enqueue_observers.remove(callback)
        except ValueError:
            pass

    def unsubscribe_dequeue(self, callback) -> None:
        """Remove a previously registered dequeue observer (no-op if absent)."""
        try:
            self._dequeue_observers.remove(callback)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Hardware-style (non-blocking) interface
    # ------------------------------------------------------------------ #
    @property
    def ready(self) -> bool:
        """True when the queue can accept an item this cycle."""
        return len(self._items) < self.capacity

    @property
    def valid(self) -> bool:
        """True when the queue has an item to offer this cycle."""
        return bool(self._items)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        """True when the queue holds no items."""
        return not self._items

    @property
    def full(self) -> bool:
        """True when the queue is at capacity."""
        return len(self._items) >= self.capacity

    def try_put(self, item: T) -> bool:
        """Enqueue ``item`` if space is available; return success."""
        if len(self._items) >= self.capacity:
            return False
        self._enqueue(item)
        return True

    def try_get(self) -> Optional[T]:
        """Dequeue and return the head item, or None if the queue is empty."""
        if not self._items:
            return None
        return self._dequeue()

    def peek(self) -> T:
        """Return (without removing) the head item."""
        if self.empty:
            raise QueueError(f"peek on empty queue {self.name!r}")
        return self._items[0]

    def snapshot(self) -> List[T]:
        """A copy of the queue contents, head first (for tests/debugging)."""
        return list(self._items)

    # ------------------------------------------------------------------ #
    # Engine integration (blocking interface)
    # ------------------------------------------------------------------ #
    def _blocking_put(self, process: Process, item: T) -> None:
        if not self._put_waiters and len(self._items) < self.capacity:
            self._enqueue(item)
            self.engine._resume(process, None)
        else:
            self._put_waiters.append((process, item))

    def _blocking_get(self, process: Process) -> None:
        if self._items:
            item = self._dequeue()
            self.engine._resume(process, item)
        else:
            self._get_waiters.append(process)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _enqueue(self, item: T) -> None:
        # Hot path: waiter wake-ups and observer fan-out are skipped
        # entirely (no method call) when nobody is subscribed or blocked.
        items = self._items
        items.append(item)
        self.total_enqueued += 1
        if len(items) > self.high_watermark:
            self.high_watermark = len(items)
        if self._get_waiters or self._put_waiters:
            self._wake_getters()
        if self._enqueue_observers:
            self._notify(self._enqueue_observers)

    def _pop_item(self) -> T:
        """Remove and return the entry the active policy selects.

        Every dequeue path (non-blocking, blocking, waiter wake-up) funnels
        through here so a selector cannot be bypassed.  Out-of-range
        selector answers are clamped rather than raised: a policy bug must
        not deadlock the simulated hardware.
        """
        items = self._items
        selector = self.selector
        self.total_dequeued += 1
        if selector is not None and len(items) > 1:
            index = selector(items)
            index = max(0, min(int(index), len(items) - 1))
            if index:
                item = items[index]
                del items[index]
                return item
        return items.popleft()

    def _dequeue(self) -> T:
        item = self._pop_item()
        if self._put_waiters or self._get_waiters:
            self._wake_putters()
        if self._dequeue_observers:
            self._notify(self._dequeue_observers)
        return item

    def _notify(self, observers: List[Any]) -> None:
        for callback in observers:
            callback()

    def _wake_getters(self) -> None:
        while self._items and self._get_waiters:
            process = self._get_waiters.popleft()
            item = self._pop_item()
            self.engine._resume(process, item)
        # Dequeues above may have made room for blocked putters.
        self._wake_putters()

    def _wake_putters(self) -> None:
        while self._put_waiters and len(self._items) < self.capacity:
            process, item = self._put_waiters.popleft()
            self._items.append(item)
            self.total_enqueued += 1
            if len(self._items) > self.high_watermark:
                self.high_watermark = len(self._items)
            self.engine._resume(process, None)
        # Newly enqueued items may satisfy blocked getters.
        while self._items and self._get_waiters:
            process = self._get_waiters.popleft()
            item = self._pop_item()
            self.engine._resume(process, item)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecoupledQueue({self.name!r}, {len(self._items)}/{self.capacity})"
        )


class ProtocolCrossingQueue(DecoupledQueue[T]):
    """A queue whose enqueues only become visible after a fixed delay.

    This models the protocol-crossing modules of Picos Manager: Picos queues
    are *non-fallthrough*, i.e. a packet written in cycle *t* can only be
    read in cycle *t + delay*.  The crossing buffers items for ``delay``
    cycles before exposing them to consumers.
    """

    __slots__ = ("delay", "_in_flight")

    def __init__(self, engine: Engine, capacity: int, delay: int = 1,
                 name: str = "crossing") -> None:
        super().__init__(engine, capacity, name)
        if delay < 0:
            raise QueueError("crossing delay must be non-negative")
        self.delay = delay
        self._in_flight = 0

    @property
    def ready(self) -> bool:  # type: ignore[override]
        return len(self._items) + self._in_flight < self.capacity

    @property
    def full(self) -> bool:  # type: ignore[override]
        return len(self._items) + self._in_flight >= self.capacity

    def try_put(self, item: T) -> bool:
        # Hot path: the ``full`` property body is inlined (in-flight items
        # count against capacity) to skip the descriptor call per put.
        if len(self._items) + self._in_flight >= self.capacity:
            return False
        if self.delay == 0:
            self._enqueue(item)
            return True
        self._in_flight += 1
        self.engine.schedule_callback(self.delay, lambda: self._land(item))
        return True

    def _land(self, item: T) -> None:
        self._in_flight -= 1
        self._enqueue(item)

    def _blocking_put(self, process: Process, item: T) -> None:
        if self.try_put(item):
            self.engine._resume(process, None)
        else:
            self._put_waiters.append((process, item))

    def _wake_putters(self) -> None:
        while (self._put_waiters
               and len(self._items) + self._in_flight < self.capacity):
            process, item = self._put_waiters.popleft()
            if self.delay == 0:
                self._items.append(item)
                self.total_enqueued += 1
            else:
                self._in_flight += 1
                self.engine.schedule_callback(
                    self.delay, lambda it=item: self._land(it)
                )
            self.engine._resume(process, None)
        while self._items and self._get_waiters:
            waiter = self._get_waiters.popleft()
            landed = self._pop_item()
            self.engine._resume(waiter, landed)
