"""Discrete-event simulation engine with a core-cycle clock.

The engine is the substrate every other subsystem runs on.  It is an
event-driven simulator in the style of SimPy, written from scratch so the
library has no external simulation dependency:

* **Time** is an integer number of *core clock cycles*.
* **Processes** are Python generators.  A process performs simulated work by
  ``yield``-ing :class:`Command` objects (:class:`Delay`, :class:`Put`,
  :class:`Get`, :class:`Wait`, :class:`Fork`, :class:`Join`) and composes
  sub-behaviours with plain ``yield from``.
* **Events** are one-shot synchronisation points carrying an optional value.

The engine detects deadlock: if the event heap drains while processes are
still blocked, :class:`~repro.common.errors.DeadlockError` is raised with a
description of every waiter.  This is the mechanism the test-suite uses to
demonstrate the two deadlock scenarios of Section IV-C of the paper.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from repro.common.errors import DeadlockError, SimulationError

__all__ = [
    "Command",
    "Delay",
    "Put",
    "Get",
    "Wait",
    "Fork",
    "Join",
    "Event",
    "Process",
    "Engine",
    "ProcessGen",
]

#: Type alias for the generators that implement simulated processes.
ProcessGen = Generator["Command", Any, Any]


class Command:
    """Base class of every value a process may yield to the engine."""

    __slots__ = ()


@dataclass(frozen=True)
class Delay(Command):
    """Suspend the yielding process for ``cycles`` core clock cycles."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise SimulationError(f"Delay must be non-negative, got {self.cycles}")


@dataclass(frozen=True)
class Put(Command):
    """Enqueue ``item`` into ``queue``, blocking while the queue is full."""

    queue: Any
    item: Any


@dataclass(frozen=True)
class Get(Command):
    """Dequeue one item from ``queue``, blocking while it is empty.

    The dequeued item becomes the value of the ``yield`` expression.
    """

    queue: Any


@dataclass(frozen=True)
class Wait(Command):
    """Block until ``event`` is triggered; yields the event's value."""

    event: "Event"


@dataclass(frozen=True)
class Fork(Command):
    """Start ``generator`` as a new concurrent process.

    The value of the ``yield`` expression is the new :class:`Process`.
    """

    generator: ProcessGen
    name: str = ""
    daemon: bool = False


@dataclass(frozen=True)
class Join(Command):
    """Block until ``process`` finishes; yields the process return value."""

    process: "Process"


class Event:
    """A one-shot event: processes wait on it, someone triggers it once."""

    __slots__ = ("engine", "name", "_triggered", "_value", "_waiters",
                 "_callbacks")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._waiters: List[Process] = []
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        """True once :meth:`trigger` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value passed to :meth:`trigger` (None before triggering)."""
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every waiter at the current cycle."""
        if self._triggered:
            raise SimulationError(f"Event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine._resume(process, value)
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(value)`` when the event fires (now, if it already has)."""
        if self._triggered:
            callback(self._value)
        else:
            self._callbacks.append(callback)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"Event({self.name!r}, {state})"


class Process:
    """A running simulated process wrapping a generator."""

    __slots__ = ("engine", "generator", "name", "pid", "finished", "result",
                 "_completion", "waiting_on", "daemon")

    def __init__(self, engine: "Engine", generator: ProcessGen, name: str,
                 pid: int, daemon: bool = False) -> None:
        self.engine = engine
        self.generator = generator
        self.name = name
        self.pid = pid
        self.finished = False
        self.result: Any = None
        self._completion = Event(engine, name=f"{name}.completion")
        #: Human-readable description of what the process is blocked on.
        self.waiting_on: str = "start"
        #: Daemon processes model always-on hardware; they never count as
        #: "blocked work" for deadlock detection or run termination.
        self.daemon = daemon

    @property
    def completion(self) -> Event:
        """Event triggered (with the return value) when the process ends."""
        return self._completion

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else f"waiting on {self.waiting_on}"
        return f"Process(#{self.pid} {self.name!r}, {state})"


class Engine:
    """The discrete-event simulator driving every model in the library."""

    def __init__(self, max_cycles: int = 5_000_000_000, trace: bool = False) -> None:
        if max_cycles <= 0:
            raise SimulationError("max_cycles must be positive")
        self.max_cycles = max_cycles
        self.trace = trace
        self.now: int = 0
        self._heap: List[Any] = []
        self._sequence = itertools.count()
        self._pid_counter = itertools.count()
        self._live_processes: Dict[int, Process] = {}
        self._trace_log: List[str] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self, name)

    def spawn(self, generator: ProcessGen, name: str = "process",
              daemon: bool = False) -> Process:
        """Register ``generator`` as a new process starting at ``now``.

        Daemon processes model always-on hardware loops (arbiters, device
        pipelines): they may block forever without being reported as a
        deadlock once every non-daemon process has finished.
        """
        process = Process(self, generator, name, next(self._pid_counter), daemon)
        self._live_processes[process.pid] = process
        self._schedule(0, process, None)
        return process

    def schedule_callback(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` cycles (for hardware timers)."""
        if delay < 0:
            raise SimulationError("callback delay must be non-negative")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._sequence), None, callback)
        )

    def run(self, until: Optional[int] = None) -> int:
        """Run until the event heap drains or ``until`` cycles have elapsed.

        Returns the final simulation time.  Raises
        :class:`~repro.common.errors.DeadlockError` if processes remain
        blocked when no further event can occur, and
        :class:`~repro.common.errors.SimulationError` if the run exceeds the
        configured ``max_cycles`` horizon.
        """
        horizon = self.max_cycles if until is None else min(until, self.max_cycles)
        while self._heap:
            time, _seq, process, payload = heapq.heappop(self._heap)
            if time > horizon:
                # Push back so a later run() with a larger horizon continues.
                heapq.heappush(self._heap, (time, _seq, process, payload))
                if until is None:
                    raise SimulationError(
                        f"simulation exceeded max_cycles={self.max_cycles}"
                    )
                self.now = horizon
                return self.now
            self.now = time
            if process is None:
                # Plain callback scheduled via schedule_callback().
                payload()
                continue
            self._step(process, payload)
        if until is None and self._blocked_processes():
            self._raise_deadlock()
        return self.now

    def run_until_idle(self) -> int:
        """Run to completion, requiring every non-daemon process to finish."""
        self.run()
        blocked = self._blocked_processes()
        if blocked:
            self._raise_deadlock()
        return self.now

    def run_until_complete(self, processes: Iterable[Process]) -> int:
        """Run until every process in ``processes`` has finished.

        This is the primary entry point used by the SoC model: it terminates
        as soon as the watched processes (the per-core runtime workers) are
        done, regardless of daemon hardware processes that remain parked on
        empty queues.  Raises :class:`DeadlockError` if the event heap drains
        while a watched process is still blocked.
        """
        watched = list(processes)
        while not all(p.finished for p in watched):
            if not self._heap:
                blocked = [p for p in watched if not p.finished]
                details = ", ".join(f"{p.name}[{p.waiting_on}]" for p in blocked)
                raise DeadlockError(
                    f"simulation deadlocked at cycle {self.now}: "
                    f"watched process(es) blocked: {details}"
                )
            time, _seq, process, payload = heapq.heappop(self._heap)
            if time > self.max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={self.max_cycles}"
                )
            self.now = time
            if process is None:
                payload()
            else:
                self._step(process, payload)
        return self.now

    @property
    def live_processes(self) -> List[Process]:
        """Processes that have been spawned and have not yet finished."""
        return list(self._live_processes.values())

    @property
    def trace_log(self) -> List[str]:
        """Collected trace lines (only populated when ``trace=True``)."""
        return list(self._trace_log)

    # ------------------------------------------------------------------ #
    # Internal machinery
    # ------------------------------------------------------------------ #
    def _schedule(self, delay: int, process: Process, value: Any) -> None:
        heapq.heappush(
            self._heap, (self.now + delay, next(self._sequence), process, value)
        )

    def _resume(self, process: Process, value: Any) -> None:
        """Wake ``process`` at the current cycle with ``value``."""
        self._schedule(0, process, value)

    def _step(self, process: Process, send_value: Any) -> None:
        if process.finished:
            return
        try:
            command = process.generator.send(send_value)
        except StopIteration as stop:
            self._finish(process, stop.value)
            return
        self._dispatch(process, command)

    def _finish(self, process: Process, result: Any) -> None:
        process.finished = True
        process.result = result
        process.waiting_on = "finished"
        self._live_processes.pop(process.pid, None)
        if self.trace:
            self._trace_log.append(f"[{self.now}] {process.name} finished")
        process.completion.trigger(result)

    def _dispatch(self, process: Process, command: Command) -> None:
        if isinstance(command, Delay):
            process.waiting_on = f"delay({command.cycles})"
            self._schedule(command.cycles, process, None)
        elif isinstance(command, Put):
            process.waiting_on = f"put({command.queue!r})"
            command.queue._blocking_put(process, command.item)
        elif isinstance(command, Get):
            process.waiting_on = f"get({command.queue!r})"
            command.queue._blocking_get(process)
        elif isinstance(command, Wait):
            process.waiting_on = f"wait({command.event.name})"
            if command.event.triggered:
                self._resume(process, command.event.value)
            else:
                command.event._add_waiter(process)
        elif isinstance(command, Fork):
            child = self.spawn(
                command.generator, command.name or "forked", daemon=command.daemon
            )
            self._resume(process, child)
        elif isinstance(command, Join):
            target = command.process
            process.waiting_on = f"join({target.name})"
            if target.finished:
                self._resume(process, target.result)
            else:
                target.completion._add_waiter(process)
        else:
            raise SimulationError(
                f"process {process.name!r} yielded a non-Command value: {command!r}"
            )
        if self.trace:
            self._trace_log.append(
                f"[{self.now}] {process.name} -> {type(command).__name__}"
            )

    def _blocked_processes(self) -> List[Process]:
        return [
            p for p in self._live_processes.values()
            if not p.finished and not p.daemon
        ]

    def _raise_deadlock(self) -> None:
        blocked = self._blocked_processes()
        details = ", ".join(f"{p.name}[{p.waiting_on}]" for p in blocked)
        raise DeadlockError(
            f"simulation deadlocked at cycle {self.now}: "
            f"{len(blocked)} process(es) blocked: {details}"
        )
