"""Arbiters used by Picos Manager, modelled after Rocket Chip stock modules.

Three arbitration disciplines appear in the paper's hardware:

* :class:`RoundRobinArbiter` — merges retirement packets from every core
  into the single Picos retirement interface, one grant per cycle, rotating
  priority (a standard Chisel ``RRArbiter``).
* :class:`InOrderArbiter` — the Work-Fetch Arbiter: requests are granted in
  the exact chronological order they were made, so Picos Manager distributes
  ready tasks in the order cores asked for them (Section IV-E.4).
* :class:`GuidedArbiter` — the Submission Handler's arbiter: once a core is
  granted the submission interface it keeps it until its whole packet
  sequence (a task descriptor) has been transmitted, guaranteeing submission
  atomicity (Section IV-F.2).

The arbiters are *reactive*: they do no work (and schedule no events) while
their inputs are empty, which keeps the discrete-event simulation fast even
over billions of idle cycles.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.common.errors import ProtocolError
from repro.sim.engine import Delay, Engine, Get, ProcessGen
from repro.sim.queues import DecoupledQueue

__all__ = ["RoundRobinArbiter", "InOrderArbiter", "GuidedArbiter"]


class RoundRobinArbiter:
    """Moves items from N input queues to one output queue, round robin.

    One item moves per ``cycles_per_grant`` cycles while any input holds
    data and the output has room; the arbiter is otherwise idle.
    """

    __slots__ = ("engine", "inputs", "output", "cycles_per_grant", "name",
                 "grants", "_next_index", "_busy")

    def __init__(
        self,
        engine: Engine,
        inputs: Sequence[DecoupledQueue],
        output: DecoupledQueue,
        cycles_per_grant: int = 1,
        name: str = "rr_arbiter",
    ) -> None:
        if not inputs:
            raise ProtocolError("RoundRobinArbiter needs at least one input")
        if cycles_per_grant <= 0:
            raise ProtocolError("cycles_per_grant must be positive")
        self.engine = engine
        self.inputs = list(inputs)
        self.output = output
        self.cycles_per_grant = cycles_per_grant
        self.name = name
        self.grants = 0
        self._next_index = 0
        self._busy = False
        for queue in self.inputs:
            queue.subscribe_enqueue(self._kick)
        output.subscribe_dequeue(self._kick)

    def _kick(self) -> None:
        # Hot path: runs after every enqueue on any input, so the emptiness
        # scan is a plain loop over the internal deques (no generator, no
        # property descriptors).
        if self._busy or self.output.full:
            return
        for queue in self.inputs:
            if queue._items:
                break
        else:
            return
        self._busy = True
        self.engine.schedule_callback(self.cycles_per_grant, self._grant)

    def _grant(self) -> None:
        self._busy = False
        if self.output.full:
            return
        n = len(self.inputs)
        for offset in range(n):
            index = (self._next_index + offset) % n
            queue = self.inputs[index]
            if queue._items:
                item = queue.try_get()
                self.output.try_put(item)
                self.grants += 1
                self._next_index = (index + 1) % n
                break
        self._kick()


class InOrderArbiter:
    """Grants requests strictly in the order they arrived.

    Requesters push a request token (e.g. their core id) into
    ``request_queue``; a daemon process pops tokens in FIFO order and, for
    each, runs ``serve(token)`` — a generator producing the simulated work of
    satisfying that request (e.g. moving one ready task from the global ready
    queue into the requesting core's private queue).  A later request is
    never served before an earlier one has completed, which is exactly the
    ordering guarantee of the paper's Work-Fetch Arbiter.
    """

    __slots__ = ("engine", "request_queue", "serve", "cycles_per_grant",
                 "name", "grants", "_process")

    def __init__(
        self,
        engine: Engine,
        request_queue: DecoupledQueue,
        serve: Callable[[Any], ProcessGen],
        cycles_per_grant: int = 1,
        name: str = "inorder_arbiter",
    ) -> None:
        if cycles_per_grant <= 0:
            raise ProtocolError("cycles_per_grant must be positive")
        self.engine = engine
        self.request_queue = request_queue
        self.serve = serve
        self.cycles_per_grant = cycles_per_grant
        self.name = name
        self.grants = 0
        self._process = engine.spawn(self._run(), name=name, daemon=True)

    def _run(self) -> ProcessGen:
        while True:
            request = yield Get(self.request_queue)
            yield Delay(self.cycles_per_grant)
            yield from self.serve(request)
            self.grants += 1


class GuidedArbiter:
    """Exclusive, sequence-long grant of a shared resource.

    A requester acquires the arbiter for an announced number of beats
    (packets); the grant is only released after that many beats have been
    transferred.  Other requesters queue behind it in FIFO order.  This
    mirrors the Guided Arbiter inside the Submission Handler, which keeps
    task-descriptor packet sequences from different cores from interleaving.
    """

    __slots__ = ("engine", "num_requesters", "name", "current_owner",
                 "remaining_beats", "_pending", "sequences_completed")

    def __init__(self, engine: Engine, num_requesters: int,
                 name: str = "guided_arbiter") -> None:
        if num_requesters <= 0:
            raise ProtocolError("GuidedArbiter needs at least one requester")
        self.engine = engine
        self.num_requesters = num_requesters
        self.name = name
        self.current_owner: Optional[int] = None
        self.remaining_beats = 0
        self._pending: List[tuple] = []
        self.sequences_completed = 0

    def request(self, requester: int, beats: int):
        """Return an event triggered when ``requester`` owns the resource."""
        if not 0 <= requester < self.num_requesters:
            raise ProtocolError(
                f"requester {requester} out of range 0..{self.num_requesters - 1}"
            )
        if beats <= 0:
            raise ProtocolError("a grant must cover at least one beat")
        grant = self.engine.event(name=f"{self.name}.grant[{requester}]")
        self._pending.append((requester, beats, grant))
        self._maybe_grant()
        return grant

    def transfer_beat(self, requester: int) -> None:
        """Account one transferred beat for the current owner."""
        if self.current_owner != requester:
            raise ProtocolError(
                f"core {requester} transferred a beat without owning "
                f"{self.name} (owner={self.current_owner})"
            )
        self.remaining_beats -= 1
        if self.remaining_beats == 0:
            self.current_owner = None
            self.sequences_completed += 1
            self._maybe_grant()

    @property
    def busy(self) -> bool:
        """True while some requester holds the grant."""
        return self.current_owner is not None

    @property
    def pending_requests(self) -> int:
        """Number of requesters waiting for the grant."""
        return len(self._pending)

    def _maybe_grant(self) -> None:
        if self.current_owner is not None or not self._pending:
            return
        requester, beats, grant = self._pending.pop(0)
        self.current_owner = requester
        self.remaining_beats = beats
        grant.trigger(requester)
