"""Discrete-event simulation substrate (engine, queues, arbiters)."""

from repro.sim.arbiters import GuidedArbiter, InOrderArbiter, RoundRobinArbiter
from repro.sim.engine import (
    Command,
    Delay,
    Engine,
    Event,
    Fork,
    Get,
    Join,
    Process,
    ProcessGen,
    Put,
    Wait,
)
from repro.sim.queues import DecoupledQueue, ProtocolCrossingQueue

__all__ = [
    "Command",
    "Delay",
    "Engine",
    "Event",
    "Fork",
    "Get",
    "Join",
    "Process",
    "ProcessGen",
    "Put",
    "Wait",
    "DecoupledQueue",
    "ProtocolCrossingQueue",
    "GuidedArbiter",
    "InOrderArbiter",
    "RoundRobinArbiter",
]
