"""Picos Delegate: the per-core RoCC accelerator (custom instructions)."""

from repro.delegate.delegate import PicosDelegate

__all__ = ["PicosDelegate"]
