"""Picos Delegate: the per-core RoCC accelerator implementing Table I.

One Picos Delegate instance is attached to every Rocket core.  It decodes
the seven custom task-scheduling instructions and talks to Picos Manager on
behalf of its core.  All instructions except Retire Task are **non-blocking**:
if the Manager cannot accept the request (a buffer is full, the ready queue
is empty, …) the instruction immediately returns the failure flag and
software decides whether to retry, do other work, sleep or yield — this is
the deadlock-avoidance argument of Section IV-C.

The per-instruction semantics follow Section IV-E:

* **Submission Request** — announces how many non-zero packets the core will
  transmit for the next task descriptor.
* **Submit Packet** — forwards the lower 32 bits of ``rs1``.
* **Submit Three Packets** — forwards ``rs1[63:32]``, ``rs1[31:0]`` and
  ``rs2[31:0]`` (descriptor prefixes are always a multiple of three packets).
* **Ready Task Request** — asks the Manager to eventually move one ready
  task into this core's private ready queue.
* **Fetch SW ID** — returns the SW ID at the head of the private ready queue
  without popping it, and remembers that it did.
* **Fetch Picos ID** — returns the Picos ID of the same entry, pops the
  queue and clears the flag; fails if Fetch SW ID did not succeed first.
* **Retire Task** — blocking push of the Picos ID into the per-core
  retirement queue feeding the round-robin arbiter.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.common.config import RoccCosts
from repro.common.errors import ProtocolError
from repro.common.stats import Stats
from repro.cpu.rocc import RoccCommand, RoccResponse, TaskSchedulingFunct
from repro.manager.manager import PicosManager
from repro.sim.engine import Delay, Engine, Put

__all__ = ["PicosDelegate"]

_WORD = (1 << 32) - 1


class PicosDelegate:
    """RoCC accelerator stub exposing Picos to one core."""

    def __init__(self, core_id: int, engine: Engine, manager: PicosManager,
                 costs: RoccCosts, name: Optional[str] = None) -> None:
        if not 0 <= core_id < manager.num_cores:
            raise ProtocolError(
                f"core {core_id} out of range for a manager with "
                f"{manager.num_cores} cores"
            )
        self.core_id = core_id
        self.engine = engine
        self.manager = manager
        self.costs = costs
        self.name = name or f"delegate{core_id}"
        self.stats = Stats(self.name)
        #: Set by a successful Fetch SW ID, cleared by Fetch Picos ID.
        self._sw_id_fetched = False

    # ------------------------------------------------------------------ #
    # Instruction dispatch
    # ------------------------------------------------------------------ #
    def execute(self, command: RoccCommand) -> Generator[Any, Any, RoccResponse]:
        """Execute one custom instruction; returns its :class:`RoccResponse`."""
        funct = command.funct
        self.stats.incr(f"instr_{funct.name.lower()}")
        yield Delay(self.costs.manager_handshake)
        if funct is TaskSchedulingFunct.SUBMISSION_REQUEST:
            response = self._submission_request(command)
        elif funct is TaskSchedulingFunct.SUBMIT_PACKET:
            response = self._submit_packet(command)
        elif funct is TaskSchedulingFunct.SUBMIT_THREE_PACKETS:
            response = self._submit_three_packets(command)
        elif funct is TaskSchedulingFunct.READY_TASK_REQUEST:
            response = self._ready_task_request()
        elif funct is TaskSchedulingFunct.FETCH_SW_ID:
            response = self._fetch_sw_id()
        elif funct is TaskSchedulingFunct.FETCH_PICOS_ID:
            response = self._fetch_picos_id()
        elif funct is TaskSchedulingFunct.RETIRE_TASK:
            response = yield from self._retire_task(command)
        else:  # pragma: no cover - enum is exhaustive
            raise ProtocolError(f"unknown funct {funct!r}")
        if response.failed:
            self.stats.incr(f"fail_{funct.name.lower()}")
        return response

    # ------------------------------------------------------------------ #
    # Individual instructions
    # ------------------------------------------------------------------ #
    def _submission_request(self, command: RoccCommand) -> RoccResponse:
        nonzero_packets = command.rs1_value
        accepted = self.manager.announce_submission(self.core_id, nonzero_packets)
        return RoccResponse(value=0) if accepted else RoccResponse.failure()

    def _submit_packet(self, command: RoccCommand) -> RoccResponse:
        word = command.rs1_value & _WORD
        accepted = self.manager.submit_packet(self.core_id, word)
        return RoccResponse(value=0) if accepted else RoccResponse.failure()

    def _submit_three_packets(self, command: RoccCommand) -> RoccResponse:
        p1 = (command.rs1_value >> 32) & _WORD
        p2 = command.rs1_value & _WORD
        p3 = command.rs2_value & _WORD
        accepted = self.manager.submit_packets(self.core_id, (p1, p2, p3))
        return RoccResponse(value=0) if accepted else RoccResponse.failure()

    def _ready_task_request(self) -> RoccResponse:
        accepted = self.manager.request_ready_task(self.core_id)
        return RoccResponse(value=0) if accepted else RoccResponse.failure()

    def _fetch_sw_id(self) -> RoccResponse:
        queue = self.manager.core_ready_queue(self.core_id)
        if queue.empty:
            return RoccResponse.failure()
        entry = queue.peek()
        self._sw_id_fetched = True
        return RoccResponse(value=entry.sw_id)

    def _fetch_picos_id(self) -> RoccResponse:
        queue = self.manager.core_ready_queue(self.core_id)
        if queue.empty or not self._sw_id_fetched:
            return RoccResponse.failure()
        entry = queue.try_get()
        self._sw_id_fetched = False
        self.manager.notify_task_started(entry.picos_id)
        return RoccResponse(value=entry.picos_id)

    def _retire_task(self, command: RoccCommand):
        queue = self.manager.retirement_queue(self.core_id)
        yield Delay(self.costs.retire_roundtrip)
        # Blocking semantics: wait until the per-core retirement queue (and
        # thus the round-robin arbiter) accepts the packet.  Picos drains
        # retirements quickly, so this almost never stalls (Section IV-E.7).
        yield Put(queue, command.rs1_value)
        return RoccResponse(value=0)

    # ------------------------------------------------------------------ #
    # Introspection helpers used by tests
    # ------------------------------------------------------------------ #
    @property
    def sw_id_flag(self) -> bool:
        """State of the internal Fetch-SW-ID-succeeded flag."""
        return self._sw_id_fetched
