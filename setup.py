"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that ``pip install -e . --no-build-isolation --no-use-pep517`` and
``python setup.py develop`` keep working on offline machines that lack the
``wheel`` package (PEP 517 editable installs require it).
"""

from setuptools import setup

setup()
