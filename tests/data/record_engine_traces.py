#!/usr/bin/env python
"""Regenerate ``engine_traces.json``, the golden traces of the engine tests.

Each scenario in :data:`SCENARIOS` spawns a small process mix, runs the
engine to completion (or to a deadlock) and records the full event trace,
the final simulation time, the collected outcome summary and — for the
deadlock scenarios — the exact error message.  ``tests/test_engine_fastpath.py``
replays the same scenarios on the current engine and asserts identical
observable behaviour.

The committed ``engine_traces.json`` was recorded from the legacy
one-pop-per-event loop (``Engine(slow=True)``, removed after its final
release) at the commit that retired it, so the golden file *is* the legacy
loop's behaviour: the differential tests survive the loop's removal.

Usage (only needed when a scenario is added)::

    PYTHONPATH=src python tests/data/record_engine_traces.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.common.errors import DeadlockError
from repro.sim.engine import Delay, Engine, Fork, Get, Join, Put, Wait
from repro.sim.queues import DecoupledQueue

TRACES_PATH = Path(__file__).resolve().parent / "engine_traces.json"


def scenario_same_cycle_ordering(engine):
    order = []

    def proc(name, delays):
        for d in delays:
            yield Delay(d)
            order.append((engine.now, name))
        return name

    engine.spawn(proc("a", [0, 0, 1, 0]), name="a")
    engine.spawn(proc("b", [0, 1, 0, 0]), name="b")
    engine.spawn(proc("c", [1, 0, 0, 1]), name="c")
    return order


def scenario_zero_cycle_delay_chain(engine):
    order = []

    def spinner(name, spins):
        for i in range(spins):
            yield Delay(0)
            order.append((engine.now, name, i))

    engine.spawn(spinner("x", 3), name="x")
    engine.spawn(spinner("y", 5), name="y")
    return order


def scenario_fork_join_same_timestamps(engine):
    results = []

    def child(n):
        yield Delay(n)
        return n * 10

    def parent(name):
        first = yield Fork(child(2), f"{name}.c2")
        second = yield Fork(child(2), f"{name}.c2b")
        third = yield Fork(child(0), f"{name}.c0")
        a = yield Join(first)
        b = yield Join(second)
        c = yield Join(third)
        results.append((engine.now, name, a + b + c))
        return a + b + c

    engine.spawn(parent("p"), name="p")
    engine.spawn(parent("q"), name="q")
    return results


def scenario_queue_contention(engine):
    seen = []
    queue = DecoupledQueue(engine, 2, name="contended")

    def producer(name, items):
        for i in range(items):
            yield Put(queue, (name, i))
        return name

    def consumer(name, items):
        for _ in range(items):
            item = yield Get(queue)
            seen.append((engine.now, name, item))
            yield Delay(1)

    engine.spawn(producer("p1", 4), name="p1")
    engine.spawn(producer("p2", 4), name="p2")
    engine.spawn(consumer("c1", 5), name="c1")
    engine.spawn(consumer("c2", 3), name="c2")
    return seen


def scenario_event_trigger_wake_order(engine):
    woken = []
    event = engine.event("gate")

    def waiter(name):
        value = yield Wait(event)
        woken.append((engine.now, name, value))

    for i in range(5):
        engine.spawn(waiter(f"w{i}"), name=f"w{i}")

    def trigger():
        yield Delay(3)
        event.trigger("go")

    engine.spawn(trigger(), name="t")
    return woken


def scenario_deadlock_report_order(engine):
    def stuck_after(cycles):
        yield Delay(cycles)
        yield Wait(engine.event())

    engine.spawn(stuck_after(8), name="w8")
    engine.spawn(stuck_after(2), name="w2")
    engine.spawn(stuck_after(8), name="w8b")
    return None


#: scenario name -> (builder, expects_deadlock)
SCENARIOS = {
    "same_cycle_ordering": (scenario_same_cycle_ordering, False),
    "zero_cycle_delay_chain": (scenario_zero_cycle_delay_chain, False),
    "fork_join_same_timestamps": (scenario_fork_join_same_timestamps, False),
    "queue_contention": (scenario_queue_contention, False),
    "event_trigger_wake_order": (scenario_event_trigger_wake_order, False),
    "deadlock_report_order": (scenario_deadlock_report_order, True),
}


def _jsonable(value):
    """Tuples become lists so recorded and replayed outcomes compare equal."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def record_scenario(name, engine_kwargs=None):
    """Run one scenario and return its observable behaviour as JSON data."""
    builder, expects_deadlock = SCENARIOS[name]
    engine = Engine(trace=True, **(engine_kwargs or {}))
    outcome = builder(engine)
    error = None
    if expects_deadlock:
        try:
            engine.run()
        except DeadlockError as exc:
            error = str(exc)
    else:
        engine.run()
    return {
        "trace": engine.trace_log,
        "now": engine.now,
        "outcome": _jsonable(outcome),
        "error": error,
    }


def main() -> int:
    recorded = {name: record_scenario(name) for name in SCENARIOS}
    TRACES_PATH.write_text(
        json.dumps({"schema": 1, "scenarios": recorded},
                   indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"recorded {len(recorded)} scenarios into {TRACES_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
