"""Tests for the Picos Delegate: the seven custom instructions of Table I."""

from __future__ import annotations

import pytest

from repro.common.config import SimConfig
from repro.common.errors import ProtocolError
from repro.cpu.rocc import FAILURE_FLAG, RoccCommand, TaskSchedulingFunct
from repro.cpu.soc import SoC
from repro.picos.packets import encode_nonzero_packets, TaskDescriptor, \
    TaskDependence, Direction
from repro.sim.engine import Delay


def make_soc(num_cores=2):
    return SoC(SimConfig().with_cores(num_cores))


def run_instruction(soc, core_id, command):
    """Issue one RoCC command from a core and return its response."""
    responses = []

    def program():
        response = yield from soc.core(core_id).rocc(command)
        responses.append(response)

    process = soc.engine.spawn(program(), name="instr")
    soc.engine.run_until_complete([process])
    return responses[0]


def run_program(soc, core_id, generator):
    process = soc.engine.spawn(generator, name="program")
    soc.engine.run_until_complete([process])
    return process.result


def settle(soc, cycles=5_000):
    def idler():
        yield Delay(cycles)

    process = soc.engine.spawn(idler(), name="settle")
    soc.engine.run_until_complete([process])


def submit_whole_task(soc, core_id, sw_id, deps=()):
    """Drive Submission Request + Submit Three Packets for one descriptor."""
    descriptor = TaskDescriptor(sw_id=sw_id, dependences=tuple(deps))
    packets = encode_nonzero_packets(descriptor)

    def program():
        core = soc.core(core_id)
        response = yield from core.rocc(RoccCommand(
            TaskSchedulingFunct.SUBMISSION_REQUEST, rs1_value=len(packets)))
        assert response.success
        for offset in range(0, len(packets), 3):
            p1, p2, p3 = packets[offset:offset + 3]
            response = yield from core.rocc(RoccCommand(
                TaskSchedulingFunct.SUBMIT_THREE_PACKETS,
                rs1_value=(p1 << 32) | p2, rs2_value=p3))
            assert response.success

    run_program(soc, core_id, program())
    settle(soc)


class TestSubmissionInstructions:
    def test_submission_request_then_packets_reach_picos(self):
        soc = make_soc()
        submit_whole_task(soc, 0, sw_id=7,
                          deps=[TaskDependence(0x100, Direction.OUT)])
        assert soc.picos.graph.total_submitted == 1
        assert soc.picos.sw_id_of(0) == 7

    def test_submit_packet_single_word_variant(self):
        soc = make_soc()

        def program():
            core = soc.core(0)
            response = yield from core.rocc(RoccCommand(
                TaskSchedulingFunct.SUBMISSION_REQUEST, rs1_value=3))
            assert response.success
            # sw_id = 9, zero dependences, one packet at a time.
            for word in (0, 9, 0):
                response = yield from core.rocc(RoccCommand(
                    TaskSchedulingFunct.SUBMIT_PACKET, rs1_value=word))
                assert response.success

        run_program(soc, 0, program())
        settle(soc)
        assert soc.picos.graph.total_submitted == 1
        assert soc.picos.sw_id_of(0) == 9

    def test_submission_request_failure_flag_when_announcements_pile_up(self):
        """Announcing without ever sending packets eventually fails fast.

        The Submission Handler can hold a small number of outstanding
        announcements per core (its announcement queue plus the one the pump
        is currently serving); beyond that the non-blocking instruction must
        return the failure flag instead of stalling the core.
        """
        soc = make_soc()
        command = RoccCommand(TaskSchedulingFunct.SUBMISSION_REQUEST,
                              rs1_value=3)
        responses = [run_instruction(soc, 0, command) for _ in range(6)]
        assert responses[0].success
        failures = [r for r in responses if r.failed]
        assert failures, "Submission Request never reported back-pressure"
        assert all(r.value == FAILURE_FLAG for r in failures)
        # Once a request fails, later ones keep failing until packets arrive.
        assert run_instruction(soc, 0, command).failed


class TestWorkFetchInstructions:
    def test_fetch_sw_id_fails_on_empty_queue(self):
        soc = make_soc()
        response = run_instruction(
            soc, 0, RoccCommand(TaskSchedulingFunct.FETCH_SW_ID))
        assert response.failed

    def test_fetch_picos_id_requires_prior_fetch_sw_id(self):
        soc = make_soc()
        submit_whole_task(soc, 0, sw_id=3)
        assert run_instruction(
            soc, 1, RoccCommand(TaskSchedulingFunct.READY_TASK_REQUEST)).success
        settle(soc)
        # Skipping Fetch SW ID: Fetch Picos ID must fail and not pop.
        response = run_instruction(
            soc, 1, RoccCommand(TaskSchedulingFunct.FETCH_PICOS_ID))
        assert response.failed
        assert not soc.manager.core_ready_queue(1).empty

    def test_full_fetch_sequence_returns_ids_and_pops_queue(self):
        soc = make_soc()
        submit_whole_task(soc, 0, sw_id=55)
        assert run_instruction(
            soc, 1, RoccCommand(TaskSchedulingFunct.READY_TASK_REQUEST)).success
        settle(soc)
        sw = run_instruction(soc, 1,
                             RoccCommand(TaskSchedulingFunct.FETCH_SW_ID))
        assert sw.success and sw.value == 55
        assert soc.delegates[1].sw_id_flag
        picos = run_instruction(soc, 1,
                                RoccCommand(TaskSchedulingFunct.FETCH_PICOS_ID))
        assert picos.success
        assert soc.manager.core_ready_queue(1).empty
        assert not soc.delegates[1].sw_id_flag
        # A second Fetch SW ID on the now-empty queue fails again.
        assert run_instruction(
            soc, 1, RoccCommand(TaskSchedulingFunct.FETCH_SW_ID)).failed

    def test_fetch_sw_id_does_not_pop(self):
        soc = make_soc()
        submit_whole_task(soc, 0, sw_id=4)
        run_instruction(soc, 0,
                        RoccCommand(TaskSchedulingFunct.READY_TASK_REQUEST))
        settle(soc)
        first = run_instruction(soc, 0,
                                RoccCommand(TaskSchedulingFunct.FETCH_SW_ID))
        second = run_instruction(soc, 0,
                                 RoccCommand(TaskSchedulingFunct.FETCH_SW_ID))
        assert first.value == second.value == 4
        assert len(soc.manager.core_ready_queue(0)) == 1


class TestRetireInstruction:
    def test_retire_task_removes_task_and_wakes_dependent(self):
        soc = make_soc()
        shared = TaskDependence(0x800, Direction.INOUT)
        submit_whole_task(soc, 0, sw_id=0, deps=[shared])
        submit_whole_task(soc, 0, sw_id=1, deps=[shared])
        run_instruction(soc, 0,
                        RoccCommand(TaskSchedulingFunct.READY_TASK_REQUEST))
        settle(soc)
        run_instruction(soc, 0, RoccCommand(TaskSchedulingFunct.FETCH_SW_ID))
        picos = run_instruction(
            soc, 0, RoccCommand(TaskSchedulingFunct.FETCH_PICOS_ID))
        response = run_instruction(
            soc, 0, RoccCommand(TaskSchedulingFunct.RETIRE_TASK,
                                rs1_value=picos.value))
        assert response.success
        settle(soc)
        assert soc.picos.graph.total_retired == 1
        # The dependent task (sw_id 1) is now fetchable.
        run_instruction(soc, 1,
                        RoccCommand(TaskSchedulingFunct.READY_TASK_REQUEST))
        settle(soc)
        sw = run_instruction(soc, 1,
                             RoccCommand(TaskSchedulingFunct.FETCH_SW_ID))
        assert sw.success and sw.value == 1


class TestDelegateConstruction:
    def test_core_id_bounds_checked(self):
        soc = make_soc(num_cores=2)
        from repro.delegate.delegate import PicosDelegate
        with pytest.raises(ProtocolError):
            PicosDelegate(5, soc.engine, soc.manager, SimConfig().costs.rocc)

    def test_instruction_stats_recorded(self):
        soc = make_soc()
        run_instruction(soc, 0,
                        RoccCommand(TaskSchedulingFunct.FETCH_SW_ID))
        delegate = soc.delegates[0]
        assert delegate.stats.counter("instr_fetch_sw_id") == 1
        assert delegate.stats.counter("fail_fetch_sw_id") == 1
        core = soc.core(0)
        assert core.stats.counter("rocc_instructions") == 1
