"""Tests for structured run telemetry: spans, sinks, manifests, summaries."""

from __future__ import annotations

import json

import pytest

from repro.api import Study
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import benchmark_cases
from repro.harness import ExperimentEngine
from repro.harness.cache import ResultCache
from repro.harness.cli import main as cli_main
from repro.harness.progress import NullProgress, Progress
from repro.harness.runner import run_cases
from repro.harness.telemetry import (
    TRACE_SCHEMA,
    JsonlSink,
    NullSink,
    ProgressSink,
    TelemetrySink,
    Tracer,
    build_manifest,
    null_tracer,
    progress_tracer,
    read_trace,
    summarize_trace,
)


class RecordingSink(TelemetrySink):
    """Keeps every record in memory for assertions."""

    def __init__(self) -> None:
        self.records = []
        self.closed = False

    def emit(self, record) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True


@pytest.fixture(scope="module")
def tiny_config() -> SimConfig:
    return SimConfig(max_cycles=200_000_000).with_cores(4)


@pytest.fixture(scope="module")
def tiny_cases():
    return benchmark_cases(quick=True, scale=0.2)[:2]


# --------------------------------------------------------------------- #
# Tracer core: nesting, ordering, determinism
# --------------------------------------------------------------------- #
class TestTracerSpans:
    def test_span_nesting_and_ordering(self):
        sink = RecordingSink()
        tracer = Tracer([sink])
        with tracer.span("run", "run") as run_span:
            with tracer.span("phase-a", "phase"):
                tracer.unit("u1", 0.5, sim_cycles=100)
            with tracer.span("phase-b", "phase"):
                pass
        types = [(r["type"], r["name"]) for r in sink.records]
        assert types == [
            ("span_start", "run"),
            ("span_start", "phase-a"),
            ("span_start", "u1"),
            ("span_end", "u1"),
            ("span_end", "phase-a"),
            ("span_start", "phase-b"),
            ("span_end", "phase-b"),
            ("span_end", "run"),
        ]
        assert run_span.span_id == 1
        by_name = {r["name"]: r for r in sink.records
                   if r["type"] == "span_start"}
        assert by_name["run"]["parent"] is None
        assert by_name["phase-a"]["parent"] == by_name["run"]["span"]
        assert by_name["u1"]["parent"] == by_name["phase-a"]["span"]
        assert all(r["schema"] == TRACE_SCHEMA for r in sink.records)

    def test_span_ids_are_deterministic(self):
        def structure():
            sink = RecordingSink()
            tracer = Tracer([sink])
            with tracer.span("run", "run"):
                with tracer.span("sweep", "sweep", total=2):
                    tracer.unit("a", 0.1)
                    tracer.unit("b", 0.2, cached=True)
            return [(r["type"], r["span"], r.get("parent"), r["name"])
                    for r in sink.records]

        assert structure() == structure()

    def test_end_span_unwinds_nested_children(self):
        sink = RecordingSink()
        tracer = Tracer([sink])
        outer = tracer.start_span("outer", "phase")
        tracer.start_span("inner", "sweep")
        tracer.end_span(outer)
        assert tracer.current_span is None
        names = [r["name"] for r in sink.records if r["type"] == "span_end"]
        assert names == ["inner", "outer"]

    def test_end_span_on_closed_span_raises(self):
        tracer = Tracer([RecordingSink()])
        handle = tracer.start_span("x", "phase")
        tracer.end_span(handle)
        with pytest.raises(EvaluationError):
            tracer.end_span(handle)

    def test_unit_backdates_start_timestamp(self):
        sink = RecordingSink()
        tracer = Tracer([sink])
        tracer.unit("u", 2.5, sim_cycles=10)
        start, end = sink.records
        assert end["ts"] - start["ts"] == pytest.approx(2.5)
        assert end["seconds"] == pytest.approx(2.5)

    def test_close_unwinds_and_snapshots_counters(self):
        sink = RecordingSink()
        tracer = Tracer([sink])
        tracer.start_span("run", "run")
        tracer.count("cache.hits", 3)
        tracer.close()
        assert sink.closed
        assert sink.records[-1]["type"] == "counters"
        assert sink.records[-1]["values"] == {"cache.hits": 3}
        assert sink.records[-2] == {
            **sink.records[-2], "type": "span_end", "name": "run"}

    def test_set_attributes_land_on_end_record(self):
        sink = RecordingSink()
        tracer = Tracer([sink])
        with tracer.span("sweep", "sweep") as span:
            span.set(simulated=3, cached=1)
        end = sink.records[-1]
        assert end["attrs"] == {"simulated": 3, "cached": 1}


class TestInactiveTracer:
    def test_null_tracer_emits_nothing_but_counts(self):
        tracer = null_tracer()
        assert not tracer.active
        with tracer.span("run", "run"):
            tracer.unit("u", 1.0)
            tracer.event("e")
            tracer.count("cache.hits")
        tracer.emit_counters()
        assert tracer.counters == {"cache.hits": 1}

    def test_inactive_tracer_builds_no_records(self, monkeypatch):
        tracer = Tracer([NullSink()])
        monkeypatch.setattr(
            tracer, "_emit",
            lambda record: pytest.fail("inactive tracer emitted a record"))
        with tracer.span("run", "run"):
            tracer.unit("u", 1.0)
            tracer.event("e")
        tracer.emit_counters()

    def test_progress_tracer_of_null_progress_is_inactive(self):
        assert not progress_tracer(None).active
        assert not progress_tracer(NullProgress()).active
        assert progress_tracer(Progress()).active


# --------------------------------------------------------------------- #
# Sinks
# --------------------------------------------------------------------- #
class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer([JsonlSink(path)])
        with tracer.span("run", "run", **{"manifest.jobs": 2}):
            tracer.unit("case-a", 0.25, sim_cycles=500,
                        sim_cycles_per_sec=2000.0)
        tracer.count("cache.misses", 2)
        tracer.close()
        records = read_trace(path)
        assert [r["type"] for r in records] == [
            "span_start", "span_start", "span_end", "span_end", "counters"]
        unit_end = records[2]
        assert unit_end["kind"] == "unit"
        assert unit_end["attrs"]["sim_cycles"] == 500
        assert records[-1]["values"] == {"cache.misses": 2}
        # Every line is standalone JSON (a crashed run leaves a prefix).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_append_not_truncate(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            tracer = Tracer([JsonlSink(path)])
            with tracer.span("run", "run"):
                pass
            tracer.close()
        assert len(read_trace(path)) == 4

    def test_read_trace_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event"}\nnot json\n')
        with pytest.raises(EvaluationError, match="line 2"):
            read_trace(path)
        path.write_text('["no", "type"]\n')
        with pytest.raises(EvaluationError, match="not a telemetry record"):
            read_trace(path)
        with pytest.raises(EvaluationError, match="cannot read"):
            read_trace(tmp_path / "missing.jsonl")


class TestProgressSink:
    def test_translates_spans_to_progress_calls(self):
        calls = []

        class Spy(Progress):
            def start(self, label, total):
                calls.append(("start", label, total))

            def advance(self, description, cached=False, failed=False):
                calls.append(("advance", description, cached, failed))

            def finish(self):
                calls.append(("finish",))

        tracer = Tracer([ProgressSink(Spy())])
        with tracer.span("benchmark sweep", "sweep", total=3):
            tracer.unit("a", 0.1)
            tracer.unit("b", 0.0, cached=True)
            tracer.unit("c", 0.0, failed=True, error_type="X", error="boom")
        assert calls == [
            ("start", "benchmark sweep", 3),
            ("advance", "a", False, False),
            ("advance", "b", True, False),
            ("advance", "c", False, True),
            ("finish",),
        ]

    def test_ignores_non_sweep_spans(self):
        calls = []

        class Spy(Progress):
            def start(self, label, total):
                calls.append("start")

            def finish(self):
                calls.append("finish")

        tracer = Tracer([ProgressSink(Spy())])
        with tracer.span("run", "run"):
            with tracer.span("figure9", "phase"):
                pass
        assert calls == []


# --------------------------------------------------------------------- #
# Progress satellites: pace, finish counts, total=0 suppression
# --------------------------------------------------------------------- #
class TestProgressReporting:
    def _lines(self, stream):
        return stream.getvalue().splitlines()

    def test_advance_reports_rate_and_eta(self):
        import io
        stream = io.StringIO()
        progress = Progress(stream)
        progress.start("sweep", 4)
        progress._started -= 1.0  # pretend a second elapsed
        progress.advance("a")
        line = self._lines(stream)[-1]
        assert "unit/s" in line and "ETA" in line

    def test_last_advance_omits_eta(self):
        import io
        stream = io.StringIO()
        progress = Progress(stream)
        progress.start("sweep", 1)
        progress._started -= 1.0
        progress.advance("a")
        line = self._lines(stream)[-1]
        assert "unit/s" in line and "ETA" not in line

    def test_finish_reports_breakdown(self):
        import io
        stream = io.StringIO()
        progress = Progress(stream)
        progress.start("sweep", 3)
        progress.advance("a")
        progress.advance("b", cached=True)
        progress.advance("c", failed=True)
        progress.finish()
        line = self._lines(stream)[-1]
        assert "1 simulated" in line
        assert "1 cached" in line
        assert "1 failed" in line

    def test_empty_phase_prints_nothing(self):
        import io
        stream = io.StringIO()
        progress = Progress(stream)
        progress.start("before", 1)
        progress.advance("a")
        progress.finish()
        lines_before = len(self._lines(stream))
        progress.start("empty", 0)
        progress.finish()
        assert len(self._lines(stream)) == lines_before


# --------------------------------------------------------------------- #
# Manifest
# --------------------------------------------------------------------- #
class TestRunManifest:
    def test_build_manifest_contents(self):
        import repro

        manifest = build_manifest(SimConfig(), jobs=4, label="test-run")
        attrs = manifest.as_attributes()
        assert attrs["manifest.version"] == repro.__version__
        assert attrs["manifest.jobs"] == 4
        assert attrs["manifest.label"] == "test-run"
        assert "hostname" in attrs["manifest.host"]
        assert "python" in attrs["manifest.host"]
        assert "jacobi" in attrs["manifest.workloads"]
        assert "phentos" in attrs["manifest.runtimes"]
        assert len(attrs["manifest.config"]) == 64  # sha-256 hex

    def test_fingerprint_tracks_config(self):
        base = build_manifest(SimConfig(), jobs=1)
        same = build_manifest(SimConfig(), jobs=8)
        other = build_manifest(SimConfig().with_cores(2), jobs=1)
        assert base.config_fingerprint == same.config_fingerprint
        assert base.config_fingerprint != other.config_fingerprint


# --------------------------------------------------------------------- #
# Engine integration
# --------------------------------------------------------------------- #
class TestEngineTracing:
    def test_traced_run_produces_full_hierarchy(self, tmp_path, tiny_config,
                                                tiny_cases):
        trace = tmp_path / "trace.jsonl"
        with ExperimentEngine(config=tiny_config, trace_path=trace,
                              cache_dir=tmp_path / "cache") as engine:
            engine.run("figure9", quick=True, cases=tiny_cases)
        records = read_trace(trace)
        kinds = {(r["kind"], r["name"]) for r in records
                 if r["type"] == "span_start"}
        assert ("run", "run") in kinds
        assert ("phase", "figure9") in kinds
        assert ("sweep", "benchmark sweep") in kinds
        unit_names = {r["name"] for r in records
                      if r["type"] == "span_start" and r["kind"] == "unit"}
        assert unit_names == {case.key for case in tiny_cases}
        run_start = next(r for r in records
                         if r["type"] == "span_start" and r["kind"] == "run")
        assert run_start["attrs"]["manifest.jobs"] == 1
        counters = [r for r in records if r["type"] == "counters"]
        assert counters
        assert counters[-1]["values"]["cache.misses"] == len(tiny_cases)
        assert counters[-1]["values"]["cache.stores"] == len(tiny_cases)
        units = [r for r in records
                 if r["type"] == "span_end" and r["kind"] == "unit"]
        for unit in units:
            assert unit["attrs"]["sim_cycles"] > 0
            assert unit["attrs"]["sim_cycles_per_sec"] > 0

    def test_cached_rerun_traces_hits(self, tmp_path, tiny_config,
                                      tiny_cases):
        cache_dir = tmp_path / "cache"
        with ExperimentEngine(config=tiny_config,
                              cache_dir=cache_dir) as engine:
            engine.run("figure9", quick=True, cases=tiny_cases)
        trace = tmp_path / "warm.jsonl"
        with ExperimentEngine(config=tiny_config, trace_path=trace,
                              cache_dir=cache_dir) as engine:
            engine.run("figure9", quick=True, cases=tiny_cases)
        summary = summarize_trace(trace)
        assert summary.cached_units == len(tiny_cases)
        assert summary.unit_seconds == []
        assert summary.cache_hit_ratio == 1.0

    def test_untraced_engine_is_inactive_and_result_identical(
            self, tmp_path, tiny_config, tiny_cases):
        with ExperimentEngine(config=tiny_config) as engine:
            assert not engine.tracer.active
            plain = engine.run("figure9", quick=True, cases=tiny_cases)
        trace = tmp_path / "trace.jsonl"
        with ExperimentEngine(config=tiny_config,
                              trace_path=trace) as engine:
            traced = engine.run("figure9", quick=True, cases=tiny_cases)
        from repro.harness.artifacts import encode
        assert encode(plain) == encode(traced)

    def test_injected_tracer_is_not_closed_by_engine(self, tiny_config,
                                                     tiny_cases):
        sink = RecordingSink()
        tracer = Tracer([sink])
        with ExperimentEngine(config=tiny_config, tracer=tracer) as engine:
            engine.run("figure9", quick=True, cases=tiny_cases)
        assert not sink.closed
        # The engine still ended its run span and snapshotted counters.
        assert any(r["type"] == "span_end" and r["kind"] == "run"
                   for r in sink.records)
        assert sink.records[-1]["type"] == "counters"

    def test_case_rates_populated(self, tiny_config, tiny_cases):
        with ExperimentEngine(config=tiny_config) as engine:
            engine.run("figure9", quick=True, cases=tiny_cases)
            assert set(engine.case_rates) == {case.key
                                             for case in tiny_cases}
            assert all(rate > 0 for rate in engine.case_rates.values())

    def test_trajectory_entry_carries_unit_rates(self, tmp_path,
                                                 tiny_config, tiny_cases):
        from repro.harness.bench import PerfTrajectory
        bench = tmp_path / "BENCH_engine.json"
        with ExperimentEngine(config=tiny_config, bench_path=bench) as engine:
            engine.run("figure9", quick=True, cases=tiny_cases)
        entry = PerfTrajectory(bench).last("sweep")
        assert set(entry["unit_rates"]) == set(entry["cases"])
        assert all(rate > 0 for rate in entry["unit_rates"].values())


class TestCountersUnderFailure:
    def test_keep_going_with_retry_counts(self, tmp_path, tiny_config,
                                          tiny_cases, poison_case):
        trace = tmp_path / "trace.jsonl"
        cases = [tiny_cases[0], poison_case]
        with ExperimentEngine(config=tiny_config, trace_path=trace,
                              keep_going=True, retries=2) as engine:
            runs = engine.run("figure9", quick=True, cases=cases)
        assert len(runs) == 1
        records = read_trace(trace)
        counters = [r for r in records if r["type"] == "counters"][-1]
        assert counters["values"]["sweep.unit_failures"] == 1
        assert counters["values"]["sweep.retries"] == 2
        retries = [r for r in records
                   if r["type"] == "event" and r["name"] == "unit.retry"]
        assert len(retries) == 2
        summary = summarize_trace(trace)
        assert len(summary.failed_units) == 1
        failed = summary.failed_units[0]
        assert failed["attrs"]["error_type"] == "RuntimeError"
        assert failed["attrs"]["attempts"] == 3
        run_end = next(r for r in records
                       if r["type"] == "span_end" and r["kind"] == "run")
        assert run_end["attrs"]["unit_failures"] == 1


@pytest.fixture
def poison_case():
    """A benchmark case whose builder always raises; yields the case."""
    from repro import registry
    from repro.registry import register_workload

    name = "poison-telemetry-test"

    @register_workload(name, description="always fails (test)")
    def _poison(**params):
        raise RuntimeError("injected unit failure")

    yield benchmark_cases(workloads=[name])[0]
    registry.WORKLOADS.remove(name)


# --------------------------------------------------------------------- #
# Cache lifetime stats
# --------------------------------------------------------------------- #
class TestCacheLifetimeStats:
    def test_persist_accumulates_deltas(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get("0" * 64)  # miss
        cache.put("0" * 64, {"x": 1})
        cache.get("0" * 64)  # hit
        assert cache.persist_stats() == cache.stats_path
        # A second persist with no new lookups writes nothing.
        assert cache.persist_stats() is None
        cache.get("0" * 64)
        cache.persist_stats()
        second = ResultCache(tmp_path)
        lifetime = second.lifetime_stats()
        assert (lifetime.hits, lifetime.misses, lifetime.stores) == (2, 1, 1)

    def test_lifetime_survives_corrupt_document(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.stats_path.parent.mkdir(parents=True, exist_ok=True)
        cache.stats_path.write_text("not json")
        lifetime = cache.lifetime_stats()
        assert (lifetime.hits, lifetime.misses) == (0, 0)
        cache.get("0" * 64)
        assert cache.persist_stats() is not None
        assert ResultCache(tmp_path).lifetime_stats().misses == 1

    def test_stats_file_is_not_a_cache_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        cache.get("ab" * 32)
        cache.persist_stats()
        assert len(cache) == 1
        assert cache.clear() == 1
        # Clearing entries leaves the lifetime counters alone.
        assert ResultCache(tmp_path).lifetime_stats().hits == 1

    def test_engine_close_persists_cache_stats(self, tmp_path, tiny_config,
                                               tiny_cases):
        cache_dir = tmp_path / "cache"
        with ExperimentEngine(config=tiny_config,
                              cache_dir=cache_dir) as engine:
            engine.run("figure9", quick=True, cases=tiny_cases)
        lifetime = ResultCache(cache_dir).lifetime_stats()
        assert lifetime.misses == len(tiny_cases)
        assert lifetime.stores == len(tiny_cases)


# --------------------------------------------------------------------- #
# Summary and CLI
# --------------------------------------------------------------------- #
class TestTraceSummary:
    def test_percentiles(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        tracer = Tracer([JsonlSink(trace)])
        with tracer.span("run", "run"):
            with tracer.span("sweep", "sweep", total=10):
                for index in range(10):
                    tracer.unit(f"u{index}", float(index + 1))
        tracer.close()
        summary = summarize_trace(trace)
        assert summary.total_units == 10
        assert summary.latency(0.50) == pytest.approx(5.0)
        assert summary.latency(0.95) == pytest.approx(10.0)
        assert summary.run_seconds is not None

    def test_render_reports_sections(self, tmp_path, tiny_config,
                                     tiny_cases):
        trace = tmp_path / "trace.jsonl"
        with ExperimentEngine(config=tiny_config, trace_path=trace,
                              cache_dir=tmp_path / "cache") as engine:
            engine.run("figure9", quick=True, cases=tiny_cases)
        text = summarize_trace(trace).render()
        assert "run: repro" in text
        assert "config fingerprint:" in text
        assert "figure9" in text
        assert "unit latency: p50" in text
        assert "cache:" in text
        assert "pool:" in text

    def test_cli_trace_summary(self, tmp_path, capsys, tiny_config,
                               tiny_cases):
        trace = tmp_path / "trace.jsonl"
        with ExperimentEngine(config=tiny_config, trace_path=trace) as engine:
            engine.run("figure9", quick=True, cases=tiny_cases)
        assert cli_main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "units: 2 total, 2 simulated" in out

    def test_cli_trace_summary_missing_file(self, tmp_path, capsys):
        assert cli_main(["trace", "summary",
                         str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestCliTracing:
    def test_run_with_trace_flag(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = cli_main(["run", "figure7", "--num-tasks", "16",
                         "--no-cache", "--quiet", "--trace", str(trace)])
        assert code == 0
        records = read_trace(trace)
        assert any(r["type"] == "span_start" and r["kind"] == "run"
                   for r in records)
        assert any(r["type"] == "span_end" and r["kind"] == "phase"
                   and r["name"] == "figure7" for r in records)

    def test_trace_env_var(self, tmp_path, capsys, monkeypatch):
        trace = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        code = cli_main(["run", "figure7", "--num-tasks", "16",
                         "--no-cache", "--quiet"])
        assert code == 0
        assert read_trace(trace)

    def test_cache_stats_flag(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        cache.put("cd" * 32, {"x": 1})
        cache.get("cd" * 32)
        cache.get("0" * 64)
        cache.persist_stats()
        assert cli_main(["cache", "--stats",
                         "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert "lifetime: 1 hit(s), 1 miss(es), 1 store(s)" in out

    def test_bench_trace(self, tmp_path, capsys):
        trace = tmp_path / "bench.jsonl"
        code = cli_main(["bench", "--events", "2000", "--repeats", "1",
                         "--no-case", "--no-pool", "--output", "-",
                         "--trace", str(trace)])
        assert code == 0
        records = read_trace(trace)
        assert any(r["type"] == "event" and r["name"] == "bench.entry"
                   for r in records)


# --------------------------------------------------------------------- #
# Study API
# --------------------------------------------------------------------- #
class TestStudyTrace:
    def test_study_trace_records_and_reports_path(self, tmp_path,
                                                  tiny_cases):
        trace = tmp_path / "study.jsonl"
        result = (Study(SimConfig(max_cycles=200_000_000).with_cores(4))
                  .cases(*tiny_cases)
                  .quick()
                  .trace(trace)
                  .run())
        assert result.trace_path == str(trace)
        summary = summarize_trace(trace)
        assert summary.total_units == len(tiny_cases)
        assert summary.manifest.get("manifest.label") == result.label

    def test_untraced_study_has_no_trace_path(self, tiny_cases):
        result = (Study(SimConfig(max_cycles=200_000_000).with_cores(4))
                  .cases(*tiny_cases)
                  .quick()
                  .run())
        assert result.trace_path is None

    def test_study_result_roundtrips_trace_path(self, tmp_path, tiny_cases):
        from repro.harness.artifacts import decode, encode
        trace = tmp_path / "study.jsonl"
        result = (Study(SimConfig(max_cycles=200_000_000).with_cores(4))
                  .cases(*tiny_cases)
                  .quick()
                  .trace(trace)
                  .run())
        decoded = decode(json.loads(json.dumps(encode(result))))
        assert decoded.trace_path == str(trace)

    def test_direct_runner_progress_interface_unchanged(self, tiny_config,
                                                        tiny_cases):
        calls = []

        class Spy(Progress):
            def start(self, label, total):
                calls.append(("start", total))

            def advance(self, description, cached=False, failed=False):
                calls.append(("advance", description))

            def finish(self):
                calls.append(("finish",))

        run_cases(tiny_config, tiny_cases, 4, progress=Spy())
        assert calls[0] == ("start", len(tiny_cases))
        assert calls[-1] == ("finish",)
        assert len(calls) == len(tiny_cases) + 2
