"""Tests for the configuration objects and the statistics helpers."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.common.config import (
    AxiCosts,
    CostModel,
    MachineConfig,
    MemoryCosts,
    NanosCosts,
    PhentosCosts,
    PicosCosts,
    RoccCosts,
    SimConfig,
    default_cost_model,
    default_machine,
)
from repro.common.errors import ConfigurationError
from repro.common.stats import Histogram, Stats, geometric_mean, merge_stats


class TestMachineConfig:
    def test_defaults_match_the_paper_prototype(self):
        machine = default_machine()
        assert machine.num_cores == 8
        assert machine.core_clock_mhz == pytest.approx(80.0)
        assert machine.memory_clock_mhz == pytest.approx(667.0)
        assert machine.l1_size_bytes == 32 * 1024
        assert machine.l1_ways == 8
        assert machine.has_shared_l2 is False
        assert machine.fpga == "ZCU102-ES2"

    def test_l1_geometry(self):
        machine = default_machine()
        assert machine.l1_sets == 64
        assert machine.l1_sets * machine.l1_ways * machine.cache_line_bytes \
            == machine.l1_size_bytes

    def test_memory_clock_ratio(self):
        machine = default_machine()
        assert machine.memory_clock_ratio == pytest.approx(667.0 / 80.0)

    def test_cycles_to_seconds(self):
        machine = default_machine()
        assert machine.cycles_to_seconds(80_000_000) == pytest.approx(1.0)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(l1_size_bytes=1000)  # not divisible

    def test_non_positive_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_cores=0)
        with pytest.raises(ConfigurationError):
            MachineConfig(core_clock_mhz=-1)


class TestSimConfig:
    def test_with_cores_returns_new_config(self):
        config = SimConfig()
        four = config.with_cores(4)
        assert four.machine.num_cores == 4
        assert config.machine.num_cores == 8
        assert four.costs is config.costs

    def test_max_cycles_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SimConfig(max_cycles=0)

    def test_default_cost_model_is_complete(self):
        costs = default_cost_model()
        assert isinstance(costs, CostModel)
        assert isinstance(costs.memory, MemoryCosts)
        assert isinstance(costs.rocc, RoccCosts)
        assert isinstance(costs.picos, PicosCosts)
        assert isinstance(costs.axi, AxiCosts)
        assert isinstance(costs.nanos, NanosCosts)
        assert isinstance(costs.phentos, PhentosCosts)


class TestCostTables:
    def test_cost_tables_reject_negative_values(self):
        with pytest.raises(ConfigurationError):
            MemoryCosts(l1_hit=-1)
        with pytest.raises(ConfigurationError):
            PicosCosts(ready_emit_cycles=-2)
        with pytest.raises(ConfigurationError):
            NanosCosts(submit_instructions=-5)
        with pytest.raises(ConfigurationError):
            PhentosCosts(fetch_instructions=-5)
        with pytest.raises(ConfigurationError):
            AxiCosts(submit_transaction=-1)

    def test_cost_tables_are_frozen(self):
        costs = MemoryCosts()
        with pytest.raises(dataclasses.FrozenInstanceError):
            costs.l1_hit = 99  # type: ignore[misc]

    def test_phentos_metadata_element_thresholds(self):
        costs = PhentosCosts()
        assert costs.metadata_lines_small == 1
        assert costs.metadata_lines_large == 2
        assert costs.small_element_max_deps == 7

    def test_nanos_costs_dominate_phentos_costs(self):
        nanos = NanosCosts()
        phentos = PhentosCosts()
        assert nanos.submit_instructions > 10 * phentos.submit_instructions
        assert nanos.fetch_instructions > 10 * phentos.fetch_instructions


class TestStats:
    def test_counters_accumulate(self):
        stats = Stats("unit")
        stats.incr("events")
        stats.incr("events", 2)
        stats.add("cycles", 100)
        assert stats.counter("events") == 3
        assert stats.counter("cycles") == 100
        assert stats.counter("missing") == 0

    def test_items_are_scoped(self):
        stats = Stats("core0")
        stats.incr("loads")
        assert dict(stats.items()) == {"core0.loads": 1.0}

    def test_reset_clears_everything(self):
        stats = Stats()
        stats.incr("x")
        stats.observe("h", 1.0)
        stats.reset()
        assert stats.counter("x") == 0
        assert stats.histogram("h").count == 0

    def test_merge_stats_sums_counters(self):
        a = Stats("a")
        b = Stats("b")
        a.incr("n", 2)
        b.incr("n", 3)
        merged = merge_stats([a, b])
        assert merged == {"a.n": 2.0, "b.n": 3.0}


class TestHistogram:
    def test_streaming_moments(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.stddev == pytest.approx(math.sqrt(1.25))

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(2.0)

    def test_empty_histogram_properties(self):
        histogram = Histogram()
        assert histogram.mean == 0.0
        assert histogram.variance == 0.0


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.13]) == pytest.approx(2.13)

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
