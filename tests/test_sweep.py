"""Tests for grid sweeps and the scaling-curves experiment.

Covers the SweepGrid product/override machinery, the grid runner's
parallel==serial determinism, cache behaviour (hits independent of the
host-process fan-out, the 8-core scaling column sharing Figure 9 entries),
scaling-curve semantics against the MTT bound, the EvaluationError
wrapping of empty/degenerate speedup series, and the ``repro sweep`` CLI.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval import benchmark_cases, headline_summary
from repro.eval.experiments import (
    BenchmarkCase,
    BenchmarkRun,
    checked_geometric_mean,
    figure8_granularity,
)
from repro.eval.scaling import (
    DEFAULT_CORE_COUNTS,
    ScalingCurve,
    ScalingPoint,
    build_scaling_curves,
    normalize_core_counts,
    normalize_runtimes,
    scaling_curves,
    scaling_geomeans,
)
from repro.harness import (
    CaseUnit,
    ExperimentEngine,
    GridPoint,
    ResultCache,
    SweepGrid,
    apply_overrides,
    case_cache_key,
    decode,
    encode,
    grid_cache_key,
    run_case_grid,
    run_cases,
)
from repro.harness.cli import main as cli_main
from repro.runtime.base import RuntimeResult


@pytest.fixture(scope="module")
def tiny_config() -> SimConfig:
    return SimConfig(max_cycles=200_000_000)


@pytest.fixture(scope="module")
def tiny_cases():
    return benchmark_cases(quick=True, scale=0.1)[:2]


def _make_result(runtime, cores, elapsed, serial=1000):
    return RuntimeResult(
        runtime=runtime, program="p", num_cores=cores,
        elapsed_cycles=elapsed, tasks_executed=10, serial_cycles=serial,
        mean_task_cycles=serial / 10, busy_cycles=serial, overhead_cycles=0,
    )


def _make_run(case_key, cores, speedups, serial=1000):
    """A synthetic BenchmarkRun with chosen speedups per runtime."""
    benchmark, label = case_key.split("/")
    case = BenchmarkCase(benchmark, label, "stream", ())
    run = BenchmarkRun(case=case, mean_task_cycles=serial / 10)
    run.results["serial"] = _make_result("serial", 1, serial, serial)
    for runtime, speedup in speedups.items():
        run.results[runtime] = _make_result(
            runtime, cores, int(round(serial / speedup)), serial)
    return run


class TestSweepGrid:
    def test_points_are_the_cartesian_product(self):
        grid = SweepGrid(("figure9", "table2"),
                         [{"num_cores": 2}, {"num_cores": 4}])
        labels = [point.label for point in grid.points()]
        assert labels == [
            "figure9[num_cores=2]", "figure9[num_cores=4]",
            "table2[num_cores=2]", "table2[num_cores=4]",
        ]
        assert len(grid) == 4

    def test_cores_classmethod(self):
        grid = SweepGrid.cores(("figure9",), (1, 8))
        assert [dict(p.overrides) for p in grid.points()] == \
            [{"num_cores": 1}, {"num_cores": 8}]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(EvaluationError):
            SweepGrid(("figure99",))
        with pytest.raises(EvaluationError):
            SweepGrid(())

    def test_apply_overrides_machine_and_simconfig_fields(self):
        config = SimConfig()
        tweaked = apply_overrides(config, {"num_cores": 16,
                                           "max_cycles": 123})
        assert tweaked.machine.num_cores == 16
        assert tweaked.max_cycles == 123
        # Untouched fields carry over.
        assert tweaked.machine.l1_size_bytes == config.machine.l1_size_bytes
        with pytest.raises(EvaluationError):
            apply_overrides(config, {"turbo": True})

    def test_point_apply_and_default_label(self):
        point = GridPoint("figure9")
        assert point.label == "figure9"
        assert point.apply(SimConfig()) == SimConfig()


class TestGridHashing:
    def test_grid_key_changes_with_overrides_and_parameters(self):
        config = SimConfig()
        one = grid_cache_key("figure9", config, [{"num_cores": 1}])
        two = grid_cache_key("figure9", config, [{"num_cores": 2}])
        assert one != two
        assert one == grid_cache_key("figure9", config, [{"num_cores": 1}])
        assert (grid_cache_key("figure9", config, [], {"quick": True})
                != grid_cache_key("figure9", config, [], {"quick": False}))

    def test_jobs_never_enter_cache_keys(self, tiny_config, tiny_cases):
        # The host fan-out (jobs / REPRO_JOBS) is not part of any key, so
        # there is literally no key input that could change with it; the
        # behavioural check is in TestCacheVsWorkers below.
        key = case_cache_key(tiny_cases[0], tiny_config, 4)
        assert key == case_cache_key(tiny_cases[0], tiny_config, 4)


class TestCacheVsWorkers:
    def test_cache_hits_independent_of_host_jobs(self, tmp_path,
                                                 tiny_config, tiny_cases):
        cache = ResultCache(tmp_path)
        first = run_cases(tiny_config, tiny_cases, num_workers=2,
                          jobs=1, cache=cache)
        assert cache.stats.misses == len(tiny_cases)
        second = run_cases(tiny_config, tiny_cases, num_workers=2,
                           jobs=3, cache=cache)
        assert cache.stats.hits == len(tiny_cases)
        assert cache.stats.misses == len(tiny_cases)  # no new misses
        assert first == second

    def test_engine_rerun_with_different_jobs_is_all_hits(
            self, tmp_path, tiny_config, tiny_cases):
        ExperimentEngine(config=tiny_config, jobs=1,
                         cache_dir=tmp_path).run(
            "figure9", cases=tiny_cases, num_workers=2)
        rerun = ExperimentEngine(config=tiny_config, jobs=4,
                                 cache_dir=tmp_path)
        rerun.run("figure9", cases=tiny_cases, num_workers=2)
        assert rerun.cache_stats.hits == len(tiny_cases)
        assert rerun.cache_stats.misses == 0


class TestGridRunner:
    def test_grid_parallel_equals_serial(self, tiny_config, tiny_cases):
        units = [CaseUnit(tiny_config.with_cores(cores), case, cores)
                 for cores in (1, 2)
                 for case in tiny_cases]
        serial = run_case_grid(units, jobs=1)
        parallel = run_case_grid(units, jobs=3)
        assert serial == parallel
        assert (json.dumps(encode(serial), sort_keys=True)
                == json.dumps(encode(parallel), sort_keys=True))

    def test_grid_preserves_unit_order(self, tiny_config, tiny_cases):
        units = [CaseUnit(tiny_config.with_cores(cores), case, cores)
                 for cores in (2, 1)
                 for case in reversed(tiny_cases)]
        runs = run_case_grid(units, jobs=3)
        assert [run.case.key for run in runs] == \
            [unit.case.key for unit in units]

    def test_grid_timings_carry_worker_counts(self, tiny_config, tiny_cases):
        units = [CaseUnit(tiny_config.with_cores(cores), tiny_cases[0],
                          cores) for cores in (1, 2)]
        timings = {}
        run_case_grid(units, timings=timings)
        assert sorted(timings) == sorted(unit.key for unit in units)
        assert all(key.endswith("w") for key in timings)

    def test_grid_shares_cache_with_plain_sweeps(self, tmp_path,
                                                 tiny_config, tiny_cases):
        cache = ResultCache(tmp_path)
        run_cases(tiny_config.with_cores(2), tiny_cases, num_workers=2,
                  cache=cache)
        units = [CaseUnit(tiny_config.with_cores(cores), case, cores)
                 for cores in (1, 2) for case in tiny_cases]
        run_case_grid(units, cache=cache)
        # The 2-core half of the grid was served from the plain sweep.
        assert cache.stats.hits == len(tiny_cases)
        assert cache.stats.misses == 2 * len(tiny_cases)


class TestScalingNormalisation:
    def test_core_counts_default_sorted_deduped(self):
        assert normalize_core_counts(None) == sorted(DEFAULT_CORE_COUNTS)
        assert normalize_core_counts([8, 2, 8, 1]) == [1, 2, 8]
        with pytest.raises(EvaluationError):
            normalize_core_counts([])
        with pytest.raises(EvaluationError):
            normalize_core_counts([0, 4])

    def test_runtimes_validated_and_ordered(self):
        assert normalize_runtimes(None) == ["nanos-sw", "nanos-rv",
                                            "phentos"]
        assert normalize_runtimes(["phentos", "nanos-sw"]) == \
            ["nanos-sw", "phentos"]
        with pytest.raises(EvaluationError):
            normalize_runtimes(["serial"])
        with pytest.raises(EvaluationError):
            normalize_runtimes([])


class TestScalingCurveSemantics:
    OVERHEADS = {"phentos": 10.0, "nanos-rv": 25.0, "nanos-sw": 50.0}

    def _runs_by_cores(self, speedup_fn):
        counts = (1, 2, 4, 8)
        return {
            cores: [_make_run("stream-barr/x", cores,
                              {rt: speedup_fn(rt, cores)
                               for rt in self.OVERHEADS})]
            for cores in counts
        }

    def test_bound_follows_equation_one(self):
        runs = self._runs_by_cores(lambda rt, cores: min(cores, 3.0))
        curves = build_scaling_curves(runs, self.OVERHEADS)
        for curve in curves:
            for point in curve.points:
                expected = min(point.cores,
                               curve.mean_task_cycles
                               / curve.lifetime_overhead_cycles)
                assert point.mtt_bound == pytest.approx(expected)

    def test_monotone_curve_saturates_at_bound(self):
        # Speedup grows with cores until the MTT bound caps it: the
        # measured saturation must land where growth stops, and no point
        # may exceed its bound.
        overheads = {"phentos": 25.0}  # bound = t/Lo = 100/25 = 4
        runs = self._runs_by_cores(
            lambda rt, cores: min(cores, 100.0 / 25.0))
        curves = build_scaling_curves(runs, overheads, ["phentos"])
        assert len(curves) == 1
        curve = curves[0]
        speedups = [p.speedup_vs_serial for p in curve.points]
        assert speedups == sorted(speedups)  # monotone up to the bound
        for point in curve.points:
            assert point.speedup_vs_serial <= point.mtt_bound + 1e-9
        assert curve.measured_saturation_cores() == 4
        assert curve.bound_saturation_cores == pytest.approx(4.0)

    def test_unsaturated_curve_reports_last_grid_point(self):
        runs = self._runs_by_cores(lambda rt, cores: float(cores))
        curves = build_scaling_curves(runs, self.OVERHEADS, ["phentos"])
        assert curves[0].measured_saturation_cores() == 8

    def test_speedup_at_and_missing_point(self):
        runs = self._runs_by_cores(lambda rt, cores: float(cores))
        curve = build_scaling_curves(runs, self.OVERHEADS, ["phentos"])[0]
        assert curve.speedup_at(4) == pytest.approx(4.0)
        with pytest.raises(EvaluationError):
            curve.speedup_at(64)

    def test_mismatched_case_lists_rejected(self):
        runs = self._runs_by_cores(lambda rt, cores: 1.0)
        runs[8] = [_make_run("stream-barr/other", 8,
                             {rt: 1.0 for rt in self.OVERHEADS})]
        with pytest.raises(EvaluationError):
            build_scaling_curves(runs, self.OVERHEADS)

    def test_missing_overhead_rejected(self):
        runs = self._runs_by_cores(lambda rt, cores: 1.0)
        with pytest.raises(EvaluationError):
            build_scaling_curves(runs, {"phentos": 10.0})

    def test_geomeans_per_runtime_and_cores(self):
        runs = self._runs_by_cores(lambda rt, cores: float(cores))
        curves = build_scaling_curves(runs, self.OVERHEADS,
                                      ["phentos", "nanos-rv"])
        means = scaling_geomeans(curves)
        assert means["phentos"][4] == pytest.approx(4.0)
        assert sorted(means) == ["nanos-rv", "phentos"]


class TestScalingExperiment:
    def test_real_curves_scale_and_match_figure9_at_shared_cores(
            self, tmp_path, tiny_config, tiny_cases):
        engine = ExperimentEngine(config=tiny_config, jobs=2,
                                  cache_dir=tmp_path)
        curves = engine.run("scaling_curves", cases=tiny_cases,
                            core_counts=(1, 2, 8),
                            runtimes=("phentos",))
        assert len(curves) == len(tiny_cases)
        for curve in curves:
            assert [p.cores for p in curve.points] == [1, 2, 8]
        # The 8-core rows must be exactly the Figure 9 results — served
        # from the same cache entries, not recomputed.
        fig9 = ExperimentEngine(config=tiny_config.with_cores(8),
                                cache_dir=tmp_path)
        runs = fig9.run("figure9", cases=tiny_cases)
        assert fig9.cache_stats.misses == 0
        assert fig9.cache_stats.hits == len(tiny_cases)
        by_key = {run.case.key: run for run in runs}
        for curve in curves:
            assert curve.speedup_at(8) == \
                by_key[curve.case_key].speedup_vs_serial("phentos")

    def test_scaling_artifact_round_trip(self, tmp_path, tiny_config,
                                         tiny_cases):
        from repro.harness import ArtifactStore
        engine = ExperimentEngine(config=tiny_config,
                                  artifact_dir=tmp_path / "artifacts")
        curves = engine.run("scaling_curves", cases=tiny_cases[:1],
                            core_counts=(1, 2), runtimes=("phentos",))
        store = ArtifactStore(tmp_path / "artifacts")
        loaded = store.load("scaling_curves")
        assert loaded == curves
        assert isinstance(loaded[0], ScalingCurve)
        assert isinstance(loaded[0].points[0], ScalingPoint)
        assert decode(encode(curves)) == curves

    def test_direct_runner_matches_engine(self, tiny_config, tiny_cases):
        # The registry runner (no harness) must assemble identical curves.
        direct = scaling_curves(tiny_config, core_counts=(1, 2),
                                cases=tiny_cases[:1], runtimes=("phentos",))
        engine = ExperimentEngine(config=tiny_config)
        via_engine = engine.run("scaling_curves", cases=tiny_cases[:1],
                                core_counts=(1, 2), runtimes=("phentos",))
        assert direct == via_engine

    def test_run_grid_over_non_sweep_experiment(self, tmp_path, tiny_config):
        engine = ExperimentEngine(config=tiny_config, cache_dir=tmp_path)
        grid = SweepGrid.cores(("table2",), (2, 4))
        results = engine.run_grid(grid)
        assert [item.point.label for item in results] == \
            ["table2[num_cores=2]", "table2[num_cores=4]"]
        # Re-running the grid is served from the whole-result cache.
        engine.run_grid(grid)
        assert engine.cache_stats.hits >= 2


class TestEvaluationErrorWrapping:
    def test_headline_names_series_on_degenerate_speedups(self):
        run = _make_run("stream-barr/x", 4,
                        {"nanos-sw": 1.0, "nanos-rv": 1.0, "phentos": 1.0})
        # A corrupted record with negative elapsed cycles yields a
        # non-positive speedup series: the bare ValueError must surface as
        # an EvaluationError naming the experiment and the input series.
        run.results["nanos-rv"].elapsed_cycles = -100
        with pytest.raises(EvaluationError, match="headline.*nanos-rv"):
            headline_summary([run])

    def test_checked_geomean_empty_series(self):
        with pytest.raises(EvaluationError,
                           match="scaling_curves.*empty series"):
            checked_geometric_mean([], "scaling_curves", "empty series")

    def test_figure8_names_case_on_bad_run(self):
        run = _make_run("stream-barr/x", 4,
                        {"nanos-sw": 1.0, "nanos-rv": 1.0, "phentos": 1.0})
        run.results["nanos-sw"].elapsed_cycles = 0  # ZeroDivision territory
        with pytest.raises(EvaluationError,
                           match="figure8.*stream-barr/x"):
            figure8_granularity([run])

    def test_figure8_names_case_on_missing_runtime(self):
        run = _make_run("stream-deps/y", 4, {"phentos": 1.0})
        with pytest.raises(EvaluationError,
                           match="figure8.*stream-deps/y"):
            figure8_granularity([run])

    def test_scaling_wraps_bad_speedup(self):
        runs = {
            1: [_make_run("stream-barr/x", 1, {"phentos": 1.0})],
        }
        runs[1][0].results["phentos"].elapsed_cycles = 0
        with pytest.raises(EvaluationError,
                           match="scaling_curves.*stream-barr/x"):
            build_scaling_curves(runs, {"phentos": 10.0}, ["phentos"])


class TestSweepCli:
    def test_sweep_smoke_and_rerun_is_pure_cache_hit(self, tmp_path,
                                                     capsys):
        argv = ["sweep", "--experiment", "scaling_curves",
                "--cores", "1,2", "--runtimes", "phentos",
                "--quick", "--scale", "0.05", "--quiet",
                "--cache-dir", str(tmp_path)]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert "scaling_curves" in first
        assert "1c" in first and "2c" in first
        assert "geomean" in first
        # Second invocation: identical report, 100% served from cache.
        assert cli_main(argv[:-2] + ["--cache-dir", str(tmp_path)]) == 0
        assert capsys.readouterr().out == first

    def test_sweep_json_round_trips(self, tmp_path, capsys):
        argv = ["sweep", "--cores", "1,2", "--runtimes", "phentos",
                "--quick", "--scale", "0.05", "--quiet",
                "--format", "json", "--cache-dir", str(tmp_path)]
        assert cli_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        curves = decode(payload["scaling_curves"])
        assert all(isinstance(curve, ScalingCurve) for curve in curves)
        assert {point.cores for curve in curves
                for point in curve.points} == {1, 2}

    def test_sweep_generic_experiment(self, capsys):
        assert cli_main(["sweep", "--experiment", "table2",
                         "--cores", "2,4", "--no-cache", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "table2[num_cores=2]" in out
        assert "table2[num_cores=4]" in out

    def test_sweep_unknown_experiment_exits_nonzero(self, capsys):
        assert cli_main(["sweep", "--experiment", "figure99",
                         "--quiet"]) == 2

    def test_sweep_rejects_bad_core_list(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--cores", "two,four"])

    def test_sweep_rejects_unknown_runtime(self, capsys):
        assert cli_main(["sweep", "--cores", "1",
                         "--runtimes", "fortran", "--no-cache",
                         "--quick", "--scale", "0.05", "--quiet"]) == 1
