"""Tests for the core model and the SoC wiring."""

from __future__ import annotations

import pytest

from repro.common.config import SimConfig
from repro.common.errors import ConfigurationError, ProtocolError
from repro.cpu.core import Core
from repro.cpu.rocc import RoccCommand, TaskSchedulingFunct
from repro.cpu.soc import SoC


def run_program(soc, generator, core_id=0):
    process = soc.spawn_worker(core_id, generator, name="test_program")
    soc.run([process])
    return process


class TestCore:
    def test_execute_charges_cpi_adjusted_cycles(self):
        soc = SoC(SimConfig())
        core = soc.core(0)

        def program():
            yield from core.execute(100)

        run_program(soc, program())
        assert soc.now == 120  # CPI of 1.2
        assert core.overhead_cycles == 120
        assert core.stats.counter("instructions") == 100

    def test_compute_counts_as_busy_cycles(self):
        soc = SoC(SimConfig())
        core = soc.core(0)

        def program():
            yield from core.compute(500)

        run_program(soc, program())
        assert core.busy_cycles == 500
        assert core.overhead_cycles == 0
        assert core.utilization(soc.now) == pytest.approx(1.0)

    def test_concurrent_payloads_are_stretched_by_contention(self):
        config = SimConfig()
        soc = SoC(config)
        alpha = config.costs.memory.payload_contention_per_core

        def program(core_id):
            yield from soc.core(core_id).compute(10_000)

        workers = [soc.spawn_worker(i, program(i)) for i in range(8)]
        soc.run(workers)
        # With 8 concurrent payloads the slowest one pays the full factor.
        assert soc.now >= int(10_000 * (1 + alpha * 7)) - 1
        assert soc.now < int(10_000 * (1 + alpha * 8))

    def test_serial_payload_not_stretched(self):
        soc = SoC(SimConfig())

        def program():
            yield from soc.core(0).compute(10_000)

        run_program(soc, program())
        assert soc.now == 10_000

    def test_memory_helpers_charge_cycles(self):
        soc = SoC(SimConfig())
        core = soc.core(0)
        region = soc.memory.allocate("buf", 256)

        def program():
            yield from core.load(region.base)
            yield from core.store(region.base)
            yield from core.atomic(region.base)
            yield from core.syscall(1000)
            yield from core.charge(50)

        run_program(soc, program())
        assert core.stats.counter("loads") == 1
        assert core.stats.counter("stores") == 1
        assert core.stats.counter("atomics") == 1
        assert core.stats.counter("syscalls") == 1
        assert soc.now > 1000

    def test_negative_amounts_rejected(self):
        soc = SoC(SimConfig())
        core = soc.core(0)
        with pytest.raises(ProtocolError):
            list(core.execute(-1))
        with pytest.raises(ProtocolError):
            list(core.compute(-5))
        with pytest.raises(ProtocolError):
            list(core.charge(-5))

    def test_rocc_without_accelerator_raises(self):
        soc = SoC(SimConfig(), with_picos=False)
        core = soc.core(0)
        with pytest.raises(ProtocolError):
            list(core.rocc(RoccCommand(TaskSchedulingFunct.FETCH_SW_ID)))

    def test_double_accelerator_attach_rejected(self):
        soc = SoC(SimConfig())
        with pytest.raises(ProtocolError):
            soc.core(0).attach_accelerator(object())

    def test_core_id_bounds(self):
        config = SimConfig().with_cores(2)
        soc = SoC(config)
        with pytest.raises(ConfigurationError):
            Core(5, soc.engine, soc.memory, config)


class TestSoC:
    def test_default_build_has_picos_manager_and_delegates(self):
        soc = SoC(SimConfig())
        assert soc.num_cores == 8
        assert soc.picos is not None
        assert soc.manager is not None
        assert len(soc.delegates) == 8
        assert all(core.accelerator is not None for core in soc.cores)

    def test_build_without_picos(self):
        soc = SoC(SimConfig(), with_picos=False)
        assert soc.picos is None
        assert soc.manager is None
        assert soc.delegates == []
        with pytest.raises(ConfigurationError):
            soc.axi_interface()

    def test_build_with_picos_but_without_rocc(self):
        soc = SoC(SimConfig(), with_picos=True, with_rocc=False)
        assert soc.picos is not None
        assert soc.manager is None
        axi = soc.axi_interface()
        assert axi is soc.axi_interface()  # cached

    def test_core_lookup_bounds(self):
        soc = SoC(SimConfig().with_cores(2))
        with pytest.raises(ConfigurationError):
            soc.core(2)

    def test_run_requires_workers(self):
        soc = SoC(SimConfig())
        with pytest.raises(ConfigurationError):
            soc.run()

    def test_stats_report_merges_all_scopes(self):
        soc = SoC(SimConfig())
        core = soc.core(0)

        def program():
            yield from core.execute(10)
            yield from core.load(soc.memory.allocate("x", 64).base)

        run_program(soc, program())
        report = soc.stats_report()
        assert report.get("core0.instructions") == 10
        assert any(key.startswith("memory.") for key in report)

    def test_busy_and_overhead_totals(self):
        soc = SoC(SimConfig())

        def program(core_id):
            yield from soc.core(core_id).compute(100)
            yield from soc.core(core_id).execute(10)

        workers = [soc.spawn_worker(i, program(i)) for i in range(2)]
        soc.run(workers)
        assert soc.total_busy_cycles() >= 200
        assert soc.total_overhead_cycles() == 24

    def test_wall_clock_conversion(self):
        soc = SoC(SimConfig())

        def program():
            yield from soc.core(0).compute(80_000)

        run_program(soc, program())
        assert soc.wall_clock_seconds() == pytest.approx(0.001)
