"""Tests for the plugin registries and the registry-backed eval layer.

Covers the ISSUE-4 registry semantics: duplicate-name rejection, tag
filtering, lazy self-registration on import, the deprecated
``CASE_BUILDERS``/``CASE_RUNTIMES`` shims, did-you-mean lookups, and —
most load-bearing — byte-stability of the Figure 9 cache keys and case
artifacts across the registry redesign (fixture recorded pre-redesign by
``tools/record_figure9_fingerprints.py``).
"""

from __future__ import annotations

import json
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro import registry
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import (
    CASE_BUILDERS,
    CASE_RUNTIMES,
    BenchmarkCase,
    benchmark_cases,
    canonical_runtime_selection,
    run_benchmark_case,
)
from repro.harness.artifacts import encode
from repro.harness.hashing import case_cache_key
from repro.registry import (
    RegistryError,
    register_runtime,
    register_workload,
    suggest,
)
from repro.runtime.phentos import PhentosRuntime

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = json.loads(
    (Path(__file__).parent / "data" / "figure9_fingerprints.json")
    .read_text(encoding="utf-8")
)


@pytest.fixture
def scratch_workload():
    """Register a throwaway workload; always unregistered afterwards."""
    from repro.apps.granularity import task_chain_program

    name = "scratch-workload"
    register_workload(
        name, tags=("scratch", "micro"),
        defaults={"num_tasks": 5, "num_dependences": 1, "payload_cycles": 50},
        description="throwaway test workload",
    )(task_chain_program)
    try:
        yield name
    finally:
        registry.WORKLOADS.remove(name)


@pytest.fixture
def scratch_runtime():
    """Register Phentos under a second name; unregistered afterwards."""
    name = "scratch-phentos"
    register_runtime(name, tags=("scratch", "hardware"), rank=90,
                     description="throwaway test runtime")(PhentosRuntime)
    try:
        yield name
    finally:
        registry.RUNTIMES.remove(name)


class TestRegistrySemantics:
    def test_builtins_registered_in_order(self):
        assert registry.workload_names(tags=("paper",)) == [
            "blackscholes", "jacobi", "sparselu", "stream"]
        assert registry.runtime_names() == [
            "serial", "nanos-sw", "nanos-rv", "nanos-axi", "phentos"]
        assert registry.case_runtime_names() == [
            "serial", "nanos-sw", "nanos-rv", "phentos"]
        assert registry.compared_runtime_names() == [
            "nanos-sw", "nanos-rv", "phentos"]

    def test_duplicate_workload_name_rejected(self, scratch_workload):
        with pytest.raises(RegistryError, match="duplicate workload"):
            register_workload(scratch_workload)(lambda **kw: None)

    def test_duplicate_runtime_name_rejected(self, scratch_runtime):
        with pytest.raises(RegistryError, match="duplicate runtime"):
            register_runtime(scratch_runtime)(object)

    def test_empty_name_rejected(self):
        with pytest.raises(RegistryError, match="non-empty"):
            register_workload("")(lambda **kw: None)

    def test_tag_filtering_requires_every_tag(self, scratch_workload):
        names = registry.workload_names(tags=("scratch",))
        assert names == [scratch_workload]
        assert registry.workload_names(tags=("scratch", "micro")) == \
            [scratch_workload]
        assert registry.workload_names(tags=("scratch", "paper")) == []

    def test_unknown_workload_has_did_you_mean(self):
        with pytest.raises(RegistryError) as excinfo:
            registry.workload("jacobbi")
        assert "did you mean 'jacobi'" in str(excinfo.value)
        assert "sparselu" in str(excinfo.value)  # lists registered names

    def test_unknown_runtime_has_did_you_mean(self):
        with pytest.raises(RegistryError) as excinfo:
            registry.runtime("fentos")
        assert "did you mean 'phentos'" in str(excinfo.value)

    def test_suggest_without_close_match_lists_names(self):
        text = suggest("zzz", ["alpha", "beta"])
        assert "did you mean" not in text
        assert "alpha, beta" in text

    def test_lazy_self_registration_on_import(self):
        # A fresh interpreter that only imports repro.registry must see
        # the built-in workloads and runtimes on first lookup.
        script = (
            "import repro.registry as r; "
            "assert 'jacobi' in r.workload_names(), r.workload_names(); "
            "assert 'phentos' in r.runtime_names(), r.runtime_names(); "
            "print('lazy-ok')"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert proc.returncode == 0, proc.stderr
        assert "lazy-ok" in proc.stdout

    def test_workload_spec_build_merges_defaults(self, scratch_workload):
        spec = registry.workload(scratch_workload)
        program = spec.build()
        assert program.num_tasks == 5
        assert spec.build(num_tasks=3).num_tasks == 3

    def test_workload_without_paper_cases_contributes_default(
            self, scratch_workload):
        cases = benchmark_cases(workloads=[scratch_workload])
        assert len(cases) == 1
        assert cases[0].builder == scratch_workload
        assert cases[0].label == "default"
        assert cases[0].build().num_tasks == 5


class TestDeprecatedShims:
    def test_case_builders_parity_and_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            builders = dict(CASE_BUILDERS.items())
        assert any(issubclass(item.category, DeprecationWarning)
                   for item in caught)
        for name in ("blackscholes", "jacobi", "sparselu", "stream"):
            assert builders[name] is registry.workload(name).builder

    def test_case_runtimes_parity_and_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            runtimes = dict(CASE_RUNTIMES.items())
        assert any(issubclass(item.category, DeprecationWarning)
                   for item in caught)
        assert list(runtimes) == registry.case_runtime_names()
        for name, cls in runtimes.items():
            assert cls is registry.runtime(name).cls

    def test_shims_are_read_only(self):
        with pytest.raises(TypeError):
            CASE_RUNTIMES["serial"] = object  # Mapping has no __setitem__

    def test_internal_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            benchmark_cases(quick=True)
            benchmark_cases(quick=True)[0].build()


class TestByteStability:
    """The acceptance criterion: keys/artifacts identical to pre-redesign."""

    def test_full_sweep_cache_keys_unchanged(self):
        config = SimConfig()
        cases = benchmark_cases()
        assert len(cases) == 37
        keys = {case.key: case_cache_key(case, config) for case in cases}
        assert keys == FIXTURE["full_case_keys"]

    def test_quick_sweep_cache_keys_unchanged(self):
        config = SimConfig()
        keys = {case.key: case_cache_key(case, config)
                for case in benchmark_cases(quick=True)}
        assert keys == FIXTURE["quick_case_keys"]

    def test_case_list_encoding_unchanged(self):
        encoded = json.dumps(encode(benchmark_cases()), sort_keys=True,
                             separators=(",", ":"))
        assert encoded == FIXTURE["full_cases_encoded"]

    def test_case_artifacts_byte_identical(self):
        config = SimConfig()
        for case in benchmark_cases(quick=True, scale=0.05)[:2]:
            key = case_cache_key(case, config, 4)
            run = run_benchmark_case(case, config, num_workers=4)
            encoded = json.dumps(encode(run), sort_keys=True,
                                 separators=(",", ":"))
            assert encoded == FIXTURE["artifact_runs"][key]

    def test_default_scenario_keys_match_scenario_free_keys(self):
        # A default ScenarioSpec must hash exactly like no scenario at
        # all: the stochastic layer contributes nothing to deterministic
        # cache keys (pinned as scenario_default_keys in the fixture).
        from repro.scenario import ScenarioSpec

        config = SimConfig()
        keys = {case.key: case_cache_key(case, config,
                                         scenario=ScenarioSpec())
                for case in benchmark_cases()}
        assert keys == FIXTURE["scenario_default_keys"]
        assert FIXTURE["scenario_default_keys"] == FIXTURE["full_case_keys"]

    def test_non_default_scenario_changes_every_key(self):
        from repro.scenario import ScenarioSpec

        config = SimConfig()
        spec = ScenarioSpec.make(arrival="poisson", seed=1)
        for case in benchmark_cases(quick=True):
            assert case_cache_key(case, config, scenario=spec) != \
                FIXTURE["quick_case_keys"][case.key]


class TestRuntimeSelection:
    def test_default_and_subsets_canonicalise_to_none(self):
        assert canonical_runtime_selection(None) is None
        assert canonical_runtime_selection(["phentos"]) is None
        assert canonical_runtime_selection(
            ["phentos", "nanos-sw", "serial"]) is None

    def test_outside_selection_gets_serial_and_rank_order(self):
        assert canonical_runtime_selection(["nanos-axi"]) == \
            ("serial", "nanos-axi")
        assert canonical_runtime_selection(["nanos-axi", "phentos"]) == \
            ("serial", "nanos-axi", "phentos")

    def test_serial_only_selection_rejected(self):
        with pytest.raises(EvaluationError):
            canonical_runtime_selection(["serial"])
        with pytest.raises(EvaluationError):
            canonical_runtime_selection([])

    def test_unknown_runtime_selection_did_you_mean(self):
        with pytest.raises(EvaluationError, match="did you mean"):
            canonical_runtime_selection(["fentos"])

    def test_subset_selection_shares_default_cache_key(self):
        config = SimConfig()
        case = benchmark_cases(quick=True)[0]
        default = case_cache_key(case, config, 4)
        assert case_cache_key(case, config, 4,
                              runtimes=["phentos"]) == default
        assert case_cache_key(case, config, 4,
                              runtimes=["nanos-axi"]) != default

    def test_case_tagged_plugin_runtime_changes_default_key(self):
        # A plugin extending the *case* set must not be served cache
        # entries written without it: the default selection stops
        # canonicalising to None and gets its own key.
        config = SimConfig()
        case = benchmark_cases(quick=True)[0]
        default_key = case_cache_key(case, config, 4)
        name = "scratch-case-rt"
        register_runtime(name, tags=("case",), rank=95)(PhentosRuntime)
        try:
            selection = canonical_runtime_selection(None)
            assert selection == ("serial", "nanos-sw", "nanos-rv",
                                 "phentos", name)
            assert case_cache_key(case, config, 4) != default_key
            assert case_cache_key(
                case, config, 4, runtimes=["phentos", name]) != default_key
        finally:
            registry.RUNTIMES.remove(name)
        assert canonical_runtime_selection(None) is None
        assert case_cache_key(case, config, 4) == default_key

    def test_run_case_on_plugin_runtime(self, scratch_runtime):
        config = SimConfig(max_cycles=200_000_000).with_cores(2)
        case = benchmark_cases(quick=True, scale=0.05)[0]
        run = run_benchmark_case(case, config, 2,
                                 runtimes=[scratch_runtime])
        assert set(run.results) == {"serial", scratch_runtime}
        reference = run_benchmark_case(case, config, 2)
        assert run.results[scratch_runtime].elapsed_cycles == \
            reference.results["phentos"].elapsed_cycles

    def test_unknown_case_builder_error_suggests(self):
        case = BenchmarkCase("x", "y", "jacobbi", (("grid_blocks", 2),))
        with pytest.raises(EvaluationError, match="did you mean 'jacobi'"):
            case.build()


class TestBenchmarkCaseSelection:
    def test_workload_filter(self):
        cases = benchmark_cases(quick=True, workloads=["jacobi", "stream"])
        assert {case.builder for case in cases} == {"jacobi", "stream"}
        # selection order follows the given names, deduplicated
        assert cases[0].builder == "jacobi"

    def test_tag_filter(self):
        cases = benchmark_cases(quick=True, tags=["memory-bound"])
        assert {case.builder for case in cases} == {"jacobi", "stream"}

    def test_unknown_workload_name_raises_with_suggestion(self):
        with pytest.raises(EvaluationError, match="did you mean 'stream'"):
            benchmark_cases(workloads=["streem"])

    def test_no_match_raises(self):
        with pytest.raises(EvaluationError, match="no registered workload"):
            benchmark_cases(tags=["no-such-tag"])
