"""Unit tests for the instruction-level helpers and the Nanos machinery."""

from __future__ import annotations

import pytest

from repro.common.config import SimConfig
from repro.cpu.soc import SoC
from repro.runtime.hw_interface import (
    FetchedTask,
    fetch_ready_task,
    request_ready_task,
    retire_task_hw,
    submit_task_hw,
)
from repro.runtime.nanos_machinery import NanosMachinery
from repro.runtime.task import Task, out_dep
from repro.runtime.worker import HwWorkerContext
from tests.helpers import make_independent_program


def run_on_core(soc, core_id, generator):
    process = soc.spawn_worker(core_id, generator, name="driver")
    soc.run([process])
    return process.result


class TestHwInterface:
    def test_submit_then_fetch_then_retire_roundtrip(self):
        soc = SoC(SimConfig().with_cores(2))
        task = Task(index=0, payload_cycles=0,
                    dependences=(out_dep(0x1234_0000),))

        def driver():
            core = soc.core(0)
            retries = yield from submit_task_hw(core, task, sw_id=0)
            assert retries == 0
            accepted = yield from request_ready_task(core)
            assert accepted
            fetched = None
            while fetched is None:
                fetched = yield from fetch_ready_task(core)
            assert isinstance(fetched, FetchedTask)
            assert fetched.sw_id == 0
            yield from retire_task_hw(core, fetched.picos_id)
            return fetched

        fetched = run_on_core(soc, 0, driver())
        assert fetched.sw_id == 0

        def settle():
            from repro.sim.engine import Delay
            yield Delay(2_000)

        run_on_core(soc, 1, settle())
        assert soc.picos.graph.total_retired == 1

    def test_fetch_on_empty_queue_returns_none(self):
        soc = SoC(SimConfig().with_cores(1))

        def driver():
            return (yield from fetch_ready_task(soc.core(0)))

        assert run_on_core(soc, 0, driver()) is None

    def test_worker_context_tracks_outstanding_requests(self):
        soc = SoC(SimConfig().with_cores(1))
        done = soc.engine.event("done")
        context = HwWorkerContext(soc, 0, done)

        def driver():
            ok = yield from context.ensure_request()
            assert ok
            assert context.outstanding_requests == 1
            # A second call does not issue another request.
            ok = yield from context.ensure_request()
            assert ok
            assert context.outstanding_requests == 1
            missing = yield from context.try_fetch()
            assert missing is None
            assert context.fetch_failures == 1

        run_on_core(soc, 0, driver())

    def test_acquire_task_returns_none_after_done(self):
        soc = SoC(SimConfig().with_cores(1))
        done = soc.engine.event("done")
        done.trigger(None)
        context = HwWorkerContext(soc, 0, done)

        def driver():
            return (yield from context.acquire_task())

        assert run_on_core(soc, 0, driver()) is None


class TestNanosMachinery:
    def _build(self, software_graph):
        config = SimConfig().with_cores(2)
        soc = SoC(config, with_picos=False)
        program = make_independent_program(num_tasks=4, payload=10)
        machinery = NanosMachinery(soc, program, config.costs.nanos,
                                   software_graph=software_graph)
        return soc, program, machinery

    def test_submission_charges_substantial_cycles(self):
        soc, program, machinery = self._build(software_graph=False)

        def driver():
            yield from machinery.charge_submission(soc.core(0),
                                                   program.tasks[0])

        run_on_core(soc, 0, driver())
        # The Nanos submission path costs thousands of cycles (Figure 7).
        assert soc.now > 3_000
        assert machinery.stats.counter("submissions") == 1

    def test_software_graph_round_trip(self):
        soc, program, machinery = self._build(software_graph=True)
        outcomes = []

        def driver():
            core = soc.core(0)
            for task in program.tasks:
                ready = yield from machinery.software_submit(core, task)
                outcomes.append(ready)
            popped = []
            while True:
                index = yield from machinery.pop_ready(core)
                if index is None:
                    break
                popped.append(index)
                yield from machinery.software_retire(core, index)
            return popped

        popped = run_on_core(soc, 0, driver())
        assert outcomes == [True] * 4      # independent tasks: all ready
        assert sorted(popped) == [0, 1, 2, 3]
        assert machinery.sw_graph.in_flight == 0

    def test_software_methods_rejected_on_hardware_machinery(self):
        soc, program, machinery = self._build(software_graph=False)
        from repro.common.errors import RuntimeModelError

        def driver():
            with pytest.raises(RuntimeModelError):
                yield from machinery.software_submit(soc.core(0),
                                                     program.tasks[0])

        run_on_core(soc, 0, driver())

    def test_idle_check_occasionally_pays_a_syscall(self):
        soc, program, machinery = self._build(software_graph=False)
        core = soc.core(0)

        def driver():
            for _ in range(machinery.costs.idle_checks_per_syscall):
                yield from machinery.charge_idle_check(core)

        run_on_core(soc, 0, driver())
        assert core.stats.counter("syscalls") == 1
