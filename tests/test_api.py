"""Tests for the unified Study API and the registry-aware CLI surface.

Exercises the ISSUE-4 tentpole end to end: the fluent builder dispatches
to the engine's sweep/grid/scaling machinery, returns a typed
:class:`~repro.api.StudyResult` that round-trips through the artifact
codec, and a workload registered only via ``@register_workload`` runs
through both :class:`Study` and ``python -m repro run`` with no edits to
the eval layer or the CLI.
"""

from __future__ import annotations

import json

import pytest

from repro import Study, registry
from repro.api import StudyResult, StudySweep
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import benchmark_cases
from repro.harness.artifacts import decode, encode
from repro.harness.bench import PerfTrajectory
from repro.harness.cli import main as cli_main
from repro.harness.engine import ExperimentEngine
from repro.registry import register_workload


@pytest.fixture(scope="module")
def tiny_config() -> SimConfig:
    return SimConfig(max_cycles=200_000_000).with_cores(4)


@pytest.fixture
def fib_workload():
    """A throwaway plugin workload (binary reduction), auto-unregistered."""
    from repro.runtime.task import Task, TaskProgram, in_dep, out_dep

    name = "test-fib"

    @register_workload(name, tags=("test-plugin",),
                       defaults={"levels": 3, "task_cycles": 500},
                       description="binary reduction test workload")
    def build(*, levels: int, task_cycles: int) -> TaskProgram:
        tasks = []
        base = 0x7000_0000
        previous: list = []
        for level in range(levels, -1, -1):
            current = []
            for slot in range(2 ** level):
                address = base + len(tasks) * 64
                deps = [out_dep(address)]
                if previous:
                    deps += [in_dep(previous[2 * slot]),
                             in_dep(previous[2 * slot + 1])]
                tasks.append(Task(index=len(tasks),
                                  payload_cycles=task_cycles,
                                  dependences=tuple(deps),
                                  name=f"n{level}_{slot}"))
                current.append(address)
            previous = current
        return TaskProgram(name="test-fib", tasks=tasks)

    try:
        yield name
    finally:
        registry.WORKLOADS.remove(name)


class TestStudyBuilder:
    def test_unknown_workload_fails_eagerly(self):
        with pytest.raises(Exception, match="did you mean 'jacobi'"):
            Study().workloads("jacobbi")

    def test_unknown_runtime_fails_eagerly(self):
        with pytest.raises(Exception, match="did you mean 'phentos'"):
            Study().runtimes("fentos")

    def test_serial_runtime_rejected(self):
        with pytest.raises(EvaluationError, match="serial baseline"):
            Study().runtimes("serial")

    def test_cores_validated(self):
        with pytest.raises(EvaluationError):
            Study().cores()
        with pytest.raises(EvaluationError):
            Study().cores(0)
        with pytest.raises(EvaluationError):
            Study().cores(2.5)  # type: ignore[arg-type]

    def test_scale_validated(self):
        with pytest.raises(EvaluationError):
            Study().scale(0)

    def test_methods_chain(self):
        study = Study().workloads("jacobi").runtimes("phentos") \
            .cores(2, 4).quick().scale(0.5).label("x")
        assert isinstance(study, Study)


class TestStudyRun:
    def test_single_count_study(self, tiny_config):
        result = (Study(tiny_config).workloads("jacobi")
                  .runtimes("phentos", "nanos-rv")
                  .quick().scale(0.1).run())
        assert isinstance(result, StudyResult)
        assert result.workloads == ("jacobi",)
        assert result.runtimes == ("phentos", "nanos-rv")
        assert result.core_counts == (4,)
        assert result.curves == ()
        assert result.case_keys == ["jacobi/N128 B1"]
        assert result.speedups("phentos")["jacobi/N128 B1"] > 1.0
        assert result.geomean("phentos") > 1.0

    def test_multi_count_study_builds_curves(self, tiny_config):
        result = (Study(tiny_config).workloads("jacobi")
                  .cores(2, 4).quick().scale(0.1).run())
        assert result.core_counts == (2, 4)
        assert [sweep.cores for sweep in result.sweeps] == [2, 4]
        # one curve per (case, compared runtime)
        assert len(result.curves) == 3
        assert {point.cores for point in result.curves[0].points} == {2, 4}
        assert result.sweep_at(2).runs[0].case.key == "jacobi/N128 B1"
        with pytest.raises(EvaluationError, match="no 16-core sweep"):
            result.sweep_at(16)

    def test_runs_defaults_to_widest_machine(self, tiny_config):
        result = (Study(tiny_config).workloads("jacobi")
                  .cores(2, 4).quick().scale(0.1).run())
        assert result.runs() == list(result.sweep_at(4).runs)

    def test_result_roundtrips_through_codec(self, tiny_config):
        result = (Study(tiny_config).workloads("jacobi")
                  .cores(2, 4).quick().scale(0.1).run())
        assert decode(encode(result)) == result

    def test_shared_engine_memoises_across_studies(self, tiny_config):
        engine = ExperimentEngine(config=tiny_config)
        study = Study(tiny_config).workloads("jacobi").quick().scale(0.1)
        first = study.run(engine=engine)
        assert engine.case_timings  # simulated something
        second = study.run(engine=engine)
        assert engine.case_timings == {}  # pure memo assembly
        assert first == second

    def test_explicit_cases(self, tiny_config):
        cases = benchmark_cases(quick=True, scale=0.1)[:1]
        result = Study(tiny_config).cases(*cases).run()
        assert result.case_keys == [cases[0].key]

    def test_study_archives_artifact(self, tiny_config, tmp_path):
        (Study(tiny_config).workloads("jacobi").quick().scale(0.1)
         .label("arch-test").artifacts(tmp_path / "art").run())
        from repro.harness.artifacts import ArtifactStore
        store = ArtifactStore(tmp_path / "art")
        names = store.names()
        assert names and "arch-test" in names[0]
        assert isinstance(store.load(names[0]), StudyResult)

    def test_bench_label_recorded(self, tiny_config, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        (Study(tiny_config).workloads("jacobi").quick().scale(0.1)
         .label("bench-label-test").bench(path).run())
        entries = PerfTrajectory(path).entries()
        assert entries
        assert entries[-1]["kind"] == "sweep"
        assert entries[-1]["label"] == "bench-label-test"
        assert entries[-1]["cases"]


class TestPluginWorkloadEndToEnd:
    """Acceptance: a new workload via @register_workload only."""

    def test_runs_through_study(self, fib_workload, tiny_config):
        result = (Study(tiny_config).workloads(fib_workload)
                  .runtimes("phentos").run())
        assert result.workloads == (fib_workload,)
        assert result.case_keys == [f"{fib_workload}/default"]
        assert result.runs()[0].results["phentos"].elapsed_cycles > 0

    def test_runs_through_cli(self, fib_workload, capsys):
        code = cli_main(["run", "figure9", "--workload", fib_workload,
                         "--no-cache", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert fib_workload in out

    def test_listed_by_cli(self, fib_workload, capsys):
        assert cli_main(["workloads", "--tag", "test-plugin"]) == 0
        out = capsys.readouterr().out
        assert fib_workload in out
        assert "binary reduction" in out


class TestPluginTransport:
    """Plugin registrations reach pool workers and fresh CLI processes."""

    def test_plugin_workload_survives_worker_boundary(self, tiny_config):
        # Simulate a spawned worker: the plugin is absent from the
        # registry when _execute_case runs, and the shipped builder
        # payload re-registers it.
        from repro.harness.runner import CaseUnit, _execute_case, \
            _plugin_payload, run_cases
        from tests.helpers import plugin_chain_builder

        name = "transport-wl"
        register_workload(name, defaults={"num_tasks": 4, "payload": 50})(
            plugin_chain_builder)
        try:
            cases = benchmark_cases(workloads=[name])
            unit = CaseUnit(tiny_config, cases[0], 2)
            builder, plugin_runtimes, plugin_files, plugin_scenarios = \
                _plugin_payload(unit)
            assert builder is plugin_chain_builder
            assert plugin_runtimes == {}
            assert plugin_files == ()
            # parallel path end to end (payload attached per future)
            runs = run_cases(tiny_config, cases, num_workers=2, jobs=2)
            assert runs[0].results["phentos"].elapsed_cycles > 0
        finally:
            registry.WORKLOADS.remove(name)
        # Worker side: registry no longer knows the name; the payload
        # must be enough to execute the unit.
        run, _seconds = _execute_case(tiny_config, cases[0], 2, None,
                                      plugin_chain_builder, None)
        try:
            assert run.results["serial"].elapsed_cycles > 0
        finally:
            registry.WORKLOADS.remove(name)

    def test_builtin_units_ship_no_payload(self, tiny_config):
        from repro.harness.runner import CaseUnit, _plugin_payload

        case = benchmark_cases(quick=True)[0]
        builder, plugin_runtimes, plugin_files, plugin_scenarios = \
            _plugin_payload(
                CaseUnit(tiny_config, case, 2, ("serial", "nanos-axi")))
        assert builder is None
        assert plugin_runtimes == {}
        assert plugin_files == ()

    def test_plugin_runtime_payload_carries_rank(self, tiny_config):
        from repro.harness.runner import CaseUnit, _plugin_payload
        from repro.registry import register_runtime
        from tests.helpers import PluginRuntime

        name = "ranked-rt"
        register_runtime(name, rank=5)(PluginRuntime)
        try:
            case = benchmark_cases(quick=True)[0]
            _builder, plugin_runtimes, _files, _scen = _plugin_payload(
                CaseUnit(tiny_config, case, 2, ("serial", name)))
            # rank travels with the class, so worker-side canonical
            # ordering matches the parent's
            assert plugin_runtimes == {name: (PluginRuntime, 5)}
        finally:
            registry.RUNTIMES.remove(name)

    def test_file_plugin_ships_as_path_and_reloads_in_worker(
            self, tiny_config, tmp_path):
        # A --plugin FILE.py workload lives in a synthetic module no other
        # process can import; its *path* must travel to workers, which
        # re-load the file (firing its @register_workload) before running.
        import sys

        from repro.harness.runner import CaseUnit, _execute_case, \
            _plugin_payload
        from repro.registry import PLUGIN_MODULE_PREFIX, load_plugin

        plugin = tmp_path / "file_plugin.py"
        plugin.write_text(
            "from repro.registry import register_workload\n"
            "from repro.apps.granularity import task_chain_program\n"
            "@register_workload('file-plug-wl', defaults={'num_tasks': 4})\n"
            "def build(num_tasks=4, num_dependences=1, payload_cycles=0,\n"
            "          name=None):\n"
            "    return task_chain_program(num_tasks, num_dependences,\n"
            "                              payload_cycles, name)\n",
            encoding="utf-8",
        )
        load_plugin(str(plugin))
        try:
            cases = benchmark_cases(workloads=["file-plug-wl"])
            builder, _runtimes, plugin_files, _scen = _plugin_payload(
                CaseUnit(tiny_config, cases[0], 2))
            assert builder is None  # not picklable by reference...
            assert plugin_files == (str(plugin),)  # ...so the path ships
            # Simulate a spawned worker: no synthetic module, no
            # registration — only the shipped path.
            for module_name in [m for m in sys.modules
                                if m.startswith(PLUGIN_MODULE_PREFIX)]:
                del sys.modules[module_name]
            registry.WORKLOADS.remove("file-plug-wl")
            run, _seconds = _execute_case(
                tiny_config, cases[0], 2, None, None, None, plugin_files)
            assert run.results["serial"].elapsed_cycles > 0
        finally:
            registry.WORKLOADS.remove("file-plug-wl")
            for module_name in [m for m in sys.modules
                                if m.startswith(PLUGIN_MODULE_PREFIX)]:
                del sys.modules[module_name]

    def test_cli_plugin_file_flag(self, tmp_path, capsys):
        plugin = tmp_path / "my_plugin.py"
        plugin.write_text(
            "from repro.registry import register_workload\n"
            "from repro.apps.granularity import task_chain_program\n"
            "register_workload('cli-plug-wl', tags=('cli-plug',),\n"
            "                  defaults={'num_tasks': 4})("
            "task_chain_program)\n",
            encoding="utf-8",
        )
        try:
            assert cli_main(["workloads", "--tag", "cli-plug",
                             "--plugin", str(plugin)]) == 0
            assert "cli-plug-wl" in capsys.readouterr().out
            assert cli_main(["run", "figure9", "--workload", "cli-plug-wl",
                             "--no-cache", "--quiet",
                             "--plugin", str(plugin)]) == 0
            assert "cli-plug-wl" in capsys.readouterr().out
        finally:
            registry.WORKLOADS.remove("cli-plug-wl")

    def test_cli_plugins_env_var(self, tmp_path, capsys, monkeypatch):
        plugin = tmp_path / "env_plugin.py"
        plugin.write_text(
            "from repro.registry import register_workload\n"
            "from repro.apps.granularity import task_free_program\n"
            "register_workload('env-plug-wl', tags=('env-plug',),\n"
            "                  defaults={'num_tasks': 4})("
            "task_free_program)\n",
            encoding="utf-8",
        )
        monkeypatch.setenv("REPRO_PLUGINS", str(plugin))
        try:
            assert cli_main(["workloads", "--tag", "env-plug"]) == 0
            assert "env-plug-wl" in capsys.readouterr().out
        finally:
            registry.WORKLOADS.remove("env-plug-wl")

    def test_cli_missing_plugin_fails_cleanly(self, capsys):
        assert cli_main(["workloads", "--plugin", "no_such_module_xyz"]) == 1
        assert "failed to import" in capsys.readouterr().err


class TestDerivedGridSelection:
    def test_derived_grid_points_ignore_runtime_selection(self, tiny_config,
                                                          monkeypatch):
        # A runtimes selection on a grid containing derived points must
        # not prime units the derived assembly never looks up: after
        # priming, assembly is pure memo lookup (no second sweep).
        import repro.harness.engine as engine_module
        from repro.harness.sweep import SweepGrid

        calls = {"run_cases": 0}
        real_run_cases = engine_module.run_cases

        def counting_run_cases(*args, **kwargs):
            calls["run_cases"] += 1
            return real_run_cases(*args, **kwargs)

        monkeypatch.setattr(engine_module, "run_cases", counting_run_cases)
        engine = ExperimentEngine(config=tiny_config)
        cases = benchmark_cases(quick=True, scale=0.1)[:1]
        results = engine.run_grid(SweepGrid.cores(("figure8",), [2]),
                                  cases=cases, runtimes=["nanos-axi"])
        assert calls["run_cases"] == 0  # assembly fully memo-served
        assert results[0].result  # granularity points came back


class TestCliRegistrySurface:
    def test_workloads_subcommand(self, capsys):
        assert cli_main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("blackscholes", "jacobi", "sparselu", "stream"):
            assert name in out

    def test_runtimes_subcommand(self, capsys):
        assert cli_main(["runtimes"]) == 0
        out = capsys.readouterr().out
        for name in ("serial", "nanos-sw", "nanos-rv", "nanos-axi",
                     "phentos"):
            assert name in out

    def test_runtimes_tag_filter(self, capsys):
        assert cli_main(["runtimes", "--tag", "compared"]) == 0
        out = capsys.readouterr().out
        assert "nanos-axi" not in out
        assert "phentos" in out

    def test_workloads_unmatched_tag_fails(self, capsys):
        assert cli_main(["workloads", "--tag", "no-such-tag"]) == 1

    def test_unknown_experiment_did_you_mean(self, capsys):
        assert cli_main(["run", "figure99", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'figure9'" in err

    def test_unknown_workload_did_you_mean(self, capsys):
        code = cli_main(["run", "figure9", "--workload", "jacobbi",
                         "--quick", "--no-cache", "--quiet"])
        assert code == 1
        err = capsys.readouterr().err
        assert "did you mean 'jacobi'" in err

    def test_unknown_runtime_did_you_mean(self, capsys):
        code = cli_main(["run", "figure9", "--runtime", "fentos",
                         "--quick", "--scale", "0.05", "--no-cache",
                         "--quiet"])
        assert code == 1
        err = capsys.readouterr().err
        assert "did you mean 'phentos'" in err

    def test_run_workload_and_runtime_filter(self, capsys):
        code = cli_main(["run", "figure9", "--workload", "jacobi",
                         "--runtime", "phentos", "--quick", "--scale",
                         "0.1", "--no-cache", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "jacobi" in out
        assert "Phentos" in out
        assert "Nanos-SW" not in out  # report narrowed to the selection

    def test_run_json_with_filters(self, capsys):
        code = cli_main(["run", "figure9", "--workload", "jacobi",
                         "--quick", "--scale", "0.1", "--no-cache",
                         "--quiet", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["figure9"]) == 1

    def test_sweep_workload_filter(self, capsys):
        code = cli_main(["sweep", "--experiment", "scaling_curves",
                         "--cores", "1,2", "--workload", "jacobi",
                         "--runtimes", "phentos", "--quick", "--scale",
                         "0.05", "--no-cache", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "jacobi" in out
        assert "blackscholes" not in out
