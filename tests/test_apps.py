"""Tests for the benchmark workload generators and their reference kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.blackscholes import (
    BlackscholesData,
    PAPER_INPUTS as BLACKSCHOLES_INPUTS,
    blackscholes_program,
    blackscholes_reference,
)
from repro.apps.granularity import task_chain_program, task_free_program
from repro.apps.jacobi import PAPER_INPUTS as JACOBI_INPUTS, jacobi_program, \
    jacobi_reference
from repro.apps.sparselu import (
    PAPER_INPUTS as SPARSELU_INPUTS,
    paper_input_parameters,
    sparselu_program,
    sparselu_reference,
)
from repro.apps.stream import (
    PAPER_INPUTS as STREAM_INPUTS,
    stream_program,
    stream_reference,
)
from repro.apps.workload import BlockSpace, KernelCosts
from repro.common.errors import WorkloadError
from repro.picos.dependence import TaskGraph
from repro.runtime import SerialRuntime


def run_kernels_in_dependence_order(program):
    """Execute every kernel respecting the program's dependences/taskwaits."""
    for phase in program.phases():
        graph = TaskGraph(capacity=len(phase) + 1)
        pending = {}
        for task in phase:
            graph_id, ready = graph.submit(task.index, task.dependences)
            pending[graph_id] = task
        # Repeatedly retire any ready task until the phase drains.
        while pending:
            ready_ids = [gid for gid, task in pending.items()
                         if graph.task(gid).is_ready
                         or graph.task(gid).state.name == "READY"]
            assert ready_ids, "dependence cycle in generated program"
            for gid in ready_ids:
                pending.pop(gid).run_kernel()
                graph.retire(gid)


class TestWorkloadHelpers:
    def test_block_space_is_stable_and_disjoint(self):
        space = BlockSpace(block_bytes=256)
        a0 = space.address("A", 0)
        a0_again = space.address("A", 0)
        a1 = space.address("A", 1)
        assert a0 == a0_again
        assert abs(a1 - a0) >= 256
        assert space.num_blocks == 2

    def test_kernel_costs_validation(self):
        with pytest.raises(WorkloadError):
            KernelCosts(stream_per_element=0)


class TestGranularityMicrobenchmarks:
    def test_task_free_has_no_dependent_tasks(self):
        program = task_free_program(num_tasks=20, num_dependences=3)
        assert program.num_tasks == 20
        assert all(task.num_dependences == 3 for task in program.tasks)
        assert program.critical_path_cycles() == 0
        graph = TaskGraph()
        ready_flags = [graph.submit(t.index, t.dependences)[1]
                       for t in program.tasks]
        assert all(ready_flags)

    def test_task_chain_is_a_single_chain(self):
        program = task_chain_program(num_tasks=10, num_dependences=2,
                                     payload_cycles=100)
        assert program.critical_path_cycles() == 10 * 100
        assert program.ideal_speedup(8) == pytest.approx(1.0)

    def test_argument_validation(self):
        with pytest.raises(WorkloadError):
            task_free_program(num_tasks=0)
        with pytest.raises(WorkloadError):
            task_chain_program(num_dependences=16)
        with pytest.raises(WorkloadError):
            task_free_program(payload_cycles=-1)


class TestBlackscholes:
    def test_paper_inputs_cover_both_portfolios(self):
        assert len(BLACKSCHOLES_INPUTS) == 12
        assert {label for label, _ in BLACKSCHOLES_INPUTS} == {"4K", "16K"}

    def test_block_decomposition(self):
        program = blackscholes_program("4K", block_size=64)
        assert program.num_tasks == 64
        assert all(task.num_dependences == 2 for task in program.tasks)
        assert program.parameters["num_options"] == 4096

    def test_tasks_are_independent(self):
        program = blackscholes_program("4K", block_size=512)
        graph = TaskGraph()
        assert all(graph.submit(t.index, t.dependences)[1]
                   for t in program.tasks)

    def test_granularity_scales_with_block_size(self):
        fine = blackscholes_program("4K", block_size=8)
        coarse = blackscholes_program("4K", block_size=256)
        assert coarse.mean_task_cycles == pytest.approx(
            32 * fine.mean_task_cycles)
        assert fine.num_tasks == 32 * coarse.num_tasks

    def test_kernels_match_reference(self):
        data = BlackscholesData(256)
        expected = blackscholes_reference(BlackscholesData(256))
        program = blackscholes_program("256", block_size=32,
                                       with_kernels=True, data=data)
        run_kernels_in_dependence_order(program)
        np.testing.assert_allclose(data.prices, expected, rtol=1e-10)

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            blackscholes_program("bogus", 8)
        with pytest.raises(WorkloadError):
            blackscholes_program("4K", 0)
        with pytest.raises(WorkloadError):
            blackscholes_program("4K", 5000)


class TestJacobi:
    def test_paper_inputs(self):
        assert JACOBI_INPUTS == [(128, 1), (256, 1), (512, 1)]

    def test_task_count_and_dependences(self):
        program = jacobi_program(grid_blocks=16, block_factor=1, iterations=3)
        assert program.num_tasks == 48
        assert program.max_dependences <= 4
        # Interior tasks read three blocks and write one.
        interior = program.tasks[5]
        assert interior.num_dependences == 4

    def test_iterations_chain_through_buffers(self):
        program = jacobi_program(grid_blocks=4, block_factor=1, iterations=2)
        # A task of iteration 1 must depend on iteration-0 output.
        graph = TaskGraph()
        ready = [graph.submit(t.index, t.dependences)[1] for t in program.tasks]
        assert all(ready[:4])
        assert not any(ready[4:])

    def test_kernels_match_reference(self):
        iterations = 3
        program = jacobi_program(grid_blocks=4, block_factor=1,
                                 iterations=iterations, with_kernels=True)
        state = program.parameters["state"]
        initial = state["buffers"][0].copy()
        source = state["source"].copy()
        expected = jacobi_reference(initial, source, iterations)
        run_kernels_in_dependence_order(program)
        result = state["buffers"][program.parameters["result_buffer"]]
        np.testing.assert_allclose(result[1:-1], expected[1:-1], rtol=1e-10)

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            jacobi_program(grid_blocks=0)
        with pytest.raises(WorkloadError):
            jacobi_program(grid_blocks=4, block_factor=8)


class TestSparseLU:
    def test_paper_inputs_map_to_parameters(self):
        assert len(SPARSELU_INPUTS) == 10
        blocks, dim = paper_input_parameters("N32", 4)
        assert blocks > 0 and dim > 0
        with pytest.raises(WorkloadError):
            paper_input_parameters("N7", 1)
        with pytest.raises(WorkloadError):
            paper_input_parameters("N32", 0)

    def test_task_kinds_and_dependences(self):
        program = sparselu_program(num_blocks=4, block_dim=8)
        names = {task.name.split("_")[0] for task in program.tasks}
        assert names == {"lu0", "fwd", "bdiv", "bmod"}
        assert program.max_dependences == 3
        # The first lu0 must be ready; later diagonal factorisations not.
        graph = TaskGraph()
        ready = {t.name: graph.submit(t.index, t.dependences)[1]
                 for t in program.tasks}
        assert ready["lu0_0"]
        assert not ready["lu0_1"]

    def test_granularity_scales_with_block_dim(self):
        small = sparselu_program(num_blocks=4, block_dim=4)
        large = sparselu_program(num_blocks=4, block_dim=16)
        assert large.mean_task_cycles > 20 * small.mean_task_cycles

    def test_kernels_factorise_diagonally_dominant_blocks(self):
        program = sparselu_program(num_blocks=3, block_dim=8,
                                   with_kernels=True)
        state = program.parameters["state"]
        # Assemble the dense matrix before factorisation.
        dim = 8
        n = 3 * dim
        dense = np.zeros((n, n))
        for (i, j), block in state.items():
            dense[i * dim:(i + 1) * dim, j * dim:(j + 1) * dim] = block
        expected = sparselu_reference(dense)
        run_kernels_in_dependence_order(program)
        factored = np.zeros((n, n))
        for (i, j), block in state.items():
            factored[i * dim:(i + 1) * dim, j * dim:(j + 1) * dim] = block
        # The blocked factorisation touches only allocated blocks; compare
        # the diagonal blocks, which are always allocated and fully updated.
        for k in range(3):
            np.testing.assert_allclose(
                factored[k * dim:(k + 1) * dim, k * dim:(k + 1) * dim],
                expected[k * dim:(k + 1) * dim, k * dim:(k + 1) * dim],
                rtol=1e-8,
            )

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            sparselu_program(num_blocks=0, block_dim=4)


class TestStream:
    def test_paper_inputs(self):
        assert len(STREAM_INPUTS) == 6

    def test_deps_and_barr_have_same_tasks_different_sync(self):
        deps = stream_program(8, 32, iterations=2, use_dependences=True)
        barr = stream_program(8, 32, iterations=2, use_dependences=False)
        assert deps.num_tasks == barr.num_tasks == 8 * 4 * 2
        assert deps.taskwait_after == set()
        assert len(barr.taskwait_after) == 4 * 2
        assert deps.max_dependences == 3
        assert barr.max_dependences == 1

    def test_stream_deps_chains_operations_blockwise(self):
        program = stream_program(2, 16, iterations=1, use_dependences=True)
        graph = TaskGraph()
        ready = [graph.submit(t.index, t.dependences)[1] for t in program.tasks]
        # copy tasks ready immediately; scale tasks depend on copy output.
        assert ready[0] and ready[1]
        assert not ready[2] and not ready[3]

    def test_kernels_match_reference(self):
        iterations = 2
        program = stream_program(4, 16, iterations=iterations,
                                 use_dependences=True, with_kernels=True)
        state = program.parameters["state"]
        expected = stream_reference(state["a"], state["b"], state["c"],
                                    iterations)
        run_kernels_in_dependence_order(program)
        for array, reference in zip(("a", "b", "c"), expected):
            np.testing.assert_allclose(state[array], reference, rtol=1e-12)

    def test_serial_runtime_executes_stream_kernels_correctly(self):
        iterations = 2
        program = stream_program(4, 16, iterations=iterations,
                                 use_dependences=False, with_kernels=True)
        state = program.parameters["state"]
        expected = stream_reference(state["a"], state["b"], state["c"],
                                    iterations)
        SerialRuntime().run(program)
        np.testing.assert_allclose(state["a"], expected[0], rtol=1e-12)

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            stream_program(0, 16)
