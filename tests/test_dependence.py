"""Tests for dependence inference (RAW/WAW/WAR) and the task graph."""

from __future__ import annotations

import pytest

from repro.common.errors import PicosError
from repro.picos.dependence import TaskGraph, TaskState
from repro.picos.packets import Direction, TaskDependence


def dep(address: int, direction: Direction) -> TaskDependence:
    return TaskDependence(address=address, direction=direction)


A, B, C = 0x1000, 0x2000, 0x3000


class TestDependenceInference:
    def test_raw_dependence(self):
        graph = TaskGraph()
        writer, ready_w = graph.submit(0, [dep(A, Direction.OUT)])
        reader, ready_r = graph.submit(1, [dep(A, Direction.IN)])
        assert ready_w and not ready_r
        assert reader in graph.task(writer).successors
        assert graph.tracker.raw_edges == 1

    def test_waw_dependence(self):
        graph = TaskGraph()
        first, _ = graph.submit(0, [dep(A, Direction.OUT)])
        second, ready = graph.submit(1, [dep(A, Direction.OUT)])
        assert not ready
        assert second in graph.task(first).successors
        assert graph.tracker.waw_edges == 1

    def test_war_dependence(self):
        graph = TaskGraph()
        graph.submit(0, [dep(A, Direction.OUT)])
        reader, _ = graph.submit(1, [dep(A, Direction.IN)])
        writer, ready = graph.submit(2, [dep(A, Direction.OUT)])
        assert not ready
        assert writer in graph.task(reader).successors
        assert graph.tracker.war_edges >= 1

    def test_independent_readers_do_not_depend_on_each_other(self):
        graph = TaskGraph()
        graph.submit(0, [dep(A, Direction.OUT)])
        r1, _ = graph.submit(1, [dep(A, Direction.IN)])
        r2, _ = graph.submit(2, [dep(A, Direction.IN)])
        assert r2 not in graph.task(r1).successors
        assert r1 not in graph.task(r2).successors

    def test_disjoint_addresses_are_independent(self):
        graph = TaskGraph()
        _, ready_a = graph.submit(0, [dep(A, Direction.OUT)])
        _, ready_b = graph.submit(1, [dep(B, Direction.OUT)])
        assert ready_a and ready_b

    def test_dependence_on_retired_task_is_satisfied(self):
        graph = TaskGraph()
        writer, _ = graph.submit(0, [dep(A, Direction.OUT)])
        graph.retire(writer)
        _, ready = graph.submit(1, [dep(A, Direction.IN)])
        assert ready

    def test_inout_chain(self):
        graph = TaskGraph()
        previous = None
        for index in range(5):
            task_id, ready = graph.submit(index, [dep(A, Direction.INOUT)])
            if index == 0:
                assert ready
            else:
                assert not ready
                assert task_id in graph.task(previous).successors
            previous = task_id


class TestTaskGraphLifecycle:
    def test_retirement_wakes_direct_successors(self):
        graph = TaskGraph()
        producer, _ = graph.submit(0, [dep(A, Direction.OUT)])
        consumer_1, _ = graph.submit(1, [dep(A, Direction.IN),
                                         dep(B, Direction.OUT)])
        consumer_2, _ = graph.submit(2, [dep(A, Direction.IN),
                                         dep(C, Direction.OUT)])
        newly_ready = graph.retire(producer)
        assert set(newly_ready) == {consumer_1, consumer_2}
        assert graph.task(consumer_1).state is TaskState.READY

    def test_task_with_multiple_predecessors_waits_for_all(self):
        graph = TaskGraph()
        p1, _ = graph.submit(0, [dep(A, Direction.OUT)])
        p2, _ = graph.submit(1, [dep(B, Direction.OUT)])
        join, ready = graph.submit(2, [dep(A, Direction.IN),
                                       dep(B, Direction.IN)])
        assert not ready
        assert graph.retire(p1) == []
        assert graph.retire(p2) == [join]

    def test_mark_running_requires_ready_state(self):
        graph = TaskGraph()
        first, _ = graph.submit(0, [dep(A, Direction.OUT)])
        blocked, _ = graph.submit(1, [dep(A, Direction.IN)])
        graph.mark_running(first)
        with pytest.raises(PicosError):
            graph.mark_running(blocked)

    def test_retire_unknown_task_raises(self):
        graph = TaskGraph()
        with pytest.raises(PicosError):
            graph.retire(123)

    def test_retire_pending_task_raises(self):
        graph = TaskGraph()
        graph.submit(0, [dep(A, Direction.OUT)])
        blocked, _ = graph.submit(1, [dep(A, Direction.IN)])
        with pytest.raises(PicosError):
            graph.retire(blocked)

    def test_capacity_backpressure(self):
        graph = TaskGraph(capacity=2)
        graph.submit(0, [])
        graph.submit(1, [])
        assert not graph.has_capacity()
        with pytest.raises(PicosError):
            graph.submit(2, [])

    def test_capacity_frees_on_retirement(self):
        graph = TaskGraph(capacity=1)
        task_id, _ = graph.submit(0, [])
        graph.retire(task_id)
        assert graph.has_capacity()
        graph.submit(1, [])

    def test_counters_and_bookkeeping(self):
        graph = TaskGraph()
        ids = [graph.submit(i, [dep(A, Direction.INOUT)])[0] for i in range(3)]
        assert graph.total_submitted == 3
        assert graph.in_flight == 3
        assert graph.max_concurrent == 3
        assert graph.pending_tasks() == ids[1:]
        graph.retire(ids[0])
        assert graph.total_retired == 1
        assert graph.in_flight == 2

    def test_tracker_forgets_retired_tasks(self):
        graph = TaskGraph()
        for index in range(10):
            task_id, _ = graph.submit(index, [dep(A + index * 64,
                                                  Direction.OUT)])
            graph.retire(task_id)
        assert graph.tracker.tracked_addresses == 0

    def test_sw_id_preserved(self):
        graph = TaskGraph()
        task_id, _ = graph.submit(777, [])
        assert graph.task(task_id).sw_id == 777

    def test_positive_capacity_required(self):
        with pytest.raises(PicosError):
            TaskGraph(capacity=0)
