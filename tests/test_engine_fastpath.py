"""Differential tests: the engine loop versus recorded golden traces.

The batched run loop batches same-timestamp heap pops, routes zero-delay
wake-ups through a same-cycle bucket, interns Delay commands and dispatches
through a handler table.  None of that may change observable behaviour, so
every scenario here is replayed against the golden traces in
``tests/data/engine_traces.json`` — recorded from the legacy
one-pop-per-event loop (``Engine(slow=True)``) at the commit that removed
it — and must reproduce the identical event trace, final time, outcome
summary and (for the deadlock scenarios) error message.

``tests/data/record_engine_traces.py`` regenerates the golden file when a
scenario is added; the scenarios themselves live there so the recorder and
the tests cannot drift apart.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Delay, Engine, Get
from repro.sim.queues import DecoupledQueue

from tests.data.record_engine_traces import (
    SCENARIOS,
    TRACES_PATH,
    record_scenario,
)


def _golden():
    document = json.loads(Path(TRACES_PATH).read_text(encoding="utf-8"))
    assert document["schema"] == 1
    return document["scenarios"]


GOLDEN = _golden()


def test_golden_file_covers_every_scenario():
    assert sorted(GOLDEN) == sorted(SCENARIOS)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_matches_recorded_legacy_trace(name):
    """Trace, final time, outcome and error all match the golden record."""
    replayed = record_scenario(name)
    expected = GOLDEN[name]
    assert replayed["trace"] == expected["trace"]
    assert replayed["now"] == expected["now"]
    assert replayed["outcome"] == expected["outcome"]
    assert replayed["error"] == expected["error"]


def test_deadlock_message_content():
    """The recorded deadlock lists waiters in (blocked cycle, pid) order."""
    message = GOLDEN["deadlock_report_order"]["error"]
    assert message is not None
    positions = [message.index(name) for name in ("w2", "w8", "w8b")]
    assert positions == sorted(positions)


def test_run_until_pauses_and_resumes_like_run():
    engine = Engine()

    def proc():
        yield Delay(50)
        return "late"

    process = engine.spawn(proc())
    assert engine.run_until(10) == 10
    assert not process.finished
    assert engine.now == 10
    engine.run()
    assert process.finished
    assert process.result == "late"


def test_run_until_rejects_negative_cycle():
    with pytest.raises(SimulationError):
        Engine().run_until(-1)


def test_delay_interning_and_value_semantics():
    assert Delay(1) is Delay(1)
    assert Delay(0) is Delay(0)
    # Large delays fall outside the cache but still behave identically.
    big = Delay(10_000_000)
    assert big is not Delay(10_000_000)
    assert big == Delay(10_000_000)
    assert Delay(5) == Delay(5)
    assert Delay(5) != Delay(6)
    assert hash(Delay(7)) == hash(Delay(7))
    assert repr(Delay(3)) == "Delay(cycles=3)"
    with pytest.raises(SimulationError):
        Delay(-2)


def test_deadlock_report_lists_waiters_in_cycle_pid_order():
    """The deadlock message orders waiters by (blocked cycle, pid)."""
    from repro.common.errors import DeadlockError
    from repro.sim.engine import Wait

    engine = Engine()

    def stuck_after(cycles):
        yield Delay(cycles)
        yield Wait(engine.event())

    # Spawn order (pid order) deliberately differs from blocking order:
    # "late" (pid 0) blocks at cycle 10, the others at cycle 5.
    engine.spawn(stuck_after(10), name="late")
    engine.spawn(stuck_after(5), name="early_a")
    engine.spawn(stuck_after(5), name="early_b")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    message = str(excinfo.value)
    positions = [message.index(name) for name in
                 ("early_a", "early_b", "late")]
    assert positions == sorted(positions)
    assert "3 process(es) blocked" in message


def test_schedule_callback_zero_delay_runs_this_cycle():
    engine = Engine()
    fired = []

    def proc():
        engine.schedule_callback(0, lambda: fired.append(engine.now))
        yield Delay(1)

    engine.spawn(proc())
    engine.run()
    assert fired == [0]


def test_lazy_completion_event_on_finished_process():
    engine = Engine()

    def proc():
        yield Delay(2)
        return "value"

    process = engine.spawn(proc())
    engine.run()
    # The completion event is created on first access, already triggered.
    assert process.completion.triggered
    assert process.completion.value == "value"


def test_waiting_on_renders_lazily():
    engine = Engine()
    queue = DecoupledQueue(engine, 1, name="q")

    def getter():
        yield Get(queue)

    process = engine.spawn(getter(), name="g")
    assert process.waiting_on == "start"
    engine.run_until(0)
    assert process.waiting_on.startswith("get(")
    assert "q" in process.waiting_on
