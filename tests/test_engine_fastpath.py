"""Differential tests: batched fast path vs the legacy engine loop.

The fast path batches same-timestamp heap pops, routes zero-delay wake-ups
through a same-cycle bucket, interns Delay commands and dispatches through
a handler table.  None of that may change observable behaviour, so every
scenario here runs twice — ``Engine(slow=False)`` and ``Engine(slow=True)``
(the pre-fast-path loop kept behind ``REPRO_ENGINE_SLOW=1``) — and asserts
identical traces, results and final times.
"""

from __future__ import annotations

import pytest

from repro.common.errors import DeadlockError, SimulationError
from repro.sim.engine import (
    Delay,
    Engine,
    Fork,
    Get,
    Join,
    Put,
    Wait,
)
from repro.sim.queues import DecoupledQueue


def run_both(build):
    """Run ``build(engine)`` on the fast and the legacy engine.

    ``build`` spawns processes on the engine and returns a picklable-ish
    summary object (collected via closures); the helper returns both
    engines and both summaries after running each engine to completion.
    """
    outcomes = []
    engines = []
    for slow in (False, True):
        engine = Engine(trace=True, slow=slow)
        summary = build(engine)
        engine.run()
        engines.append(engine)
        outcomes.append(summary)
    return engines, outcomes


def assert_identical(engines, outcomes):
    fast, slow = engines
    assert fast.trace_log == slow.trace_log
    assert fast.now == slow.now
    assert outcomes[0] == outcomes[1]


def test_same_cycle_event_ordering_matches_legacy_loop():
    """Many processes active in the same cycle wake in identical order."""

    def build(engine):
        order = []

        def proc(name, delays):
            for d in delays:
                yield Delay(d)
                order.append((engine.now, name))
            return name

        engine.spawn(proc("a", [0, 0, 1, 0]), name="a")
        engine.spawn(proc("b", [0, 1, 0, 0]), name="b")
        engine.spawn(proc("c", [1, 0, 0, 1]), name="c")
        return order

    engines, outcomes = run_both(build)
    assert_identical(engines, outcomes)


def test_zero_cycle_delay_chain_matches_legacy_loop():
    """Zero-cycle delays re-enter the current cycle in FIFO order."""

    def build(engine):
        order = []

        def spinner(name, spins):
            for i in range(spins):
                yield Delay(0)
                order.append((engine.now, name, i))

        engine.spawn(spinner("x", 3), name="x")
        engine.spawn(spinner("y", 5), name="y")
        return order

    engines, outcomes = run_both(build)
    assert_identical(engines, outcomes)
    # Everything happened at cycle zero.
    assert engines[0].now == 0


def test_fork_join_at_identical_timestamps_matches_legacy_loop():
    """Forks and joins landing in the same cycle keep their ordering."""

    def build(engine):
        results = []

        def child(n):
            yield Delay(n)
            return n * 10

        def parent(name):
            first = yield Fork(child(2), f"{name}.c2")
            second = yield Fork(child(2), f"{name}.c2b")
            third = yield Fork(child(0), f"{name}.c0")
            a = yield Join(first)
            b = yield Join(second)
            c = yield Join(third)
            results.append((engine.now, name, a + b + c))
            return a + b + c

        engine.spawn(parent("p"), name="p")
        engine.spawn(parent("q"), name="q")
        return results

    engines, outcomes = run_both(build)
    assert_identical(engines, outcomes)


def test_queue_contention_matches_legacy_loop():
    """Blocked putters/getters wake identically under both loops."""

    def build(engine):
        seen = []
        queue = DecoupledQueue(engine, 2, name="contended")

        def producer(name, items):
            for i in range(items):
                yield Put(queue, (name, i))
            return name

        def consumer(name, items):
            for _ in range(items):
                item = yield Get(queue)
                seen.append((engine.now, name, item))
                yield Delay(1)

        engine.spawn(producer("p1", 4), name="p1")
        engine.spawn(producer("p2", 4), name="p2")
        engine.spawn(consumer("c1", 5), name="c1")
        engine.spawn(consumer("c2", 3), name="c2")
        return seen

    engines, outcomes = run_both(build)
    assert_identical(engines, outcomes)


def test_event_trigger_wakes_waiters_in_same_order():
    def build(engine):
        woken = []
        event = engine.event("gate")

        def waiter(name):
            value = yield Wait(event)
            woken.append((engine.now, name, value))

        for i in range(5):
            engine.spawn(waiter(f"w{i}"), name=f"w{i}")

        def trigger():
            yield Delay(3)
            event.trigger("go")

        engine.spawn(trigger(), name="t")
        return woken

    engines, outcomes = run_both(build)
    assert_identical(engines, outcomes)


def test_run_until_pauses_and_resumes_like_run():
    engine = Engine()

    def proc():
        yield Delay(50)
        return "late"

    process = engine.spawn(proc())
    assert engine.run_until(10) == 10
    assert not process.finished
    assert engine.now == 10
    engine.run()
    assert process.finished
    assert process.result == "late"


def test_run_until_rejects_negative_cycle():
    with pytest.raises(SimulationError):
        Engine().run_until(-1)


def test_slow_env_guard_selects_legacy_loop(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_SLOW", "1")
    assert Engine()._slow is True
    monkeypatch.setenv("REPRO_ENGINE_SLOW", "0")
    assert Engine()._slow is False
    monkeypatch.delenv("REPRO_ENGINE_SLOW")
    assert Engine()._slow is False
    # The explicit argument wins over the environment.
    monkeypatch.setenv("REPRO_ENGINE_SLOW", "1")
    assert Engine(slow=False)._slow is False


def test_delay_interning_and_value_semantics():
    assert Delay(1) is Delay(1)
    assert Delay(0) is Delay(0)
    # Large delays fall outside the cache but still behave identically.
    big = Delay(10_000_000)
    assert big is not Delay(10_000_000)
    assert big == Delay(10_000_000)
    assert Delay(5) == Delay(5)
    assert Delay(5) != Delay(6)
    assert hash(Delay(7)) == hash(Delay(7))
    assert repr(Delay(3)) == "Delay(cycles=3)"
    with pytest.raises(SimulationError):
        Delay(-2)


def test_deadlock_report_lists_waiters_in_cycle_pid_order():
    """The deadlock message orders waiters by (blocked cycle, pid)."""
    engine = Engine()

    def stuck_after(cycles):
        yield Delay(cycles)
        yield Wait(engine.event())

    # Spawn order (pid order) deliberately differs from blocking order:
    # "late" (pid 0) blocks at cycle 10, the others at cycle 5.
    engine.spawn(stuck_after(10), name="late")
    engine.spawn(stuck_after(5), name="early_a")
    engine.spawn(stuck_after(5), name="early_b")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    message = str(excinfo.value)
    positions = [message.index(name) for name in
                 ("early_a", "early_b", "late")]
    assert positions == sorted(positions)
    assert "3 process(es) blocked" in message


def test_deadlock_report_order_is_stable_across_loops():
    def build_and_fail(slow):
        engine = Engine(slow=slow)

        def stuck_after(cycles):
            yield Delay(cycles)
            yield Wait(engine.event())

        engine.spawn(stuck_after(8), name="w8")
        engine.spawn(stuck_after(2), name="w2")
        engine.spawn(stuck_after(8), name="w8b")
        with pytest.raises(DeadlockError) as excinfo:
            engine.run()
        return str(excinfo.value)

    assert build_and_fail(False) == build_and_fail(True)


def test_schedule_callback_zero_delay_runs_this_cycle():
    engine = Engine()
    fired = []

    def proc():
        engine.schedule_callback(0, lambda: fired.append(engine.now))
        yield Delay(1)

    engine.spawn(proc())
    engine.run()
    assert fired == [0]


def test_lazy_completion_event_on_finished_process():
    engine = Engine()

    def proc():
        yield Delay(2)
        return "value"

    process = engine.spawn(proc())
    engine.run()
    # The completion event is created on first access, already triggered.
    assert process.completion.triggered
    assert process.completion.value == "value"


def test_waiting_on_renders_lazily():
    engine = Engine()
    queue = DecoupledQueue(engine, 1, name="q")

    def getter():
        yield Get(queue)

    process = engine.spawn(getter(), name="g")
    assert process.waiting_on == "start"
    engine.run_until(0)
    assert process.waiting_on.startswith("get(")
    assert "q" in process.waiting_on
