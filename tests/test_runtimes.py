"""Behavioural tests for the five runtime models."""

from __future__ import annotations

import pytest

from repro.common.config import SimConfig
from repro.runtime import (
    RUNTIMES,
    NanosAXIRuntime,
    NanosRVRuntime,
    NanosSWRuntime,
    PhentosRuntime,
    SerialRuntime,
)
from repro.runtime.task import Task, TaskProgram, out_dep

from tests.helpers import (
    make_chain_program,
    make_fork_join_program,
    make_independent_program,
)

ALL_PARALLEL_RUNTIMES = [NanosSWRuntime, NanosRVRuntime, NanosAXIRuntime,
                         PhentosRuntime]


@pytest.fixture(scope="module")
def four_core_config():
    return SimConfig(max_cycles=500_000_000).with_cores(4)


class TestSerialRuntime:
    def test_elapsed_matches_payloads_plus_loop_overhead(self):
        program = make_independent_program(num_tasks=10, payload=1000)
        result = SerialRuntime().run(program)
        assert result.num_cores == 1
        assert result.elapsed_cycles >= program.total_payload_cycles
        # Loop overhead is a few cycles per task, not more.
        assert result.elapsed_cycles <= program.total_payload_cycles + 10 * 20
        assert result.speedup_vs_serial == pytest.approx(
            program.serial_cycles / result.elapsed_cycles)

    def test_serial_sections_included(self):
        program = TaskProgram(
            name="with-serial",
            tasks=[Task(index=0, payload_cycles=100)],
            serial_sections_cycles=400,
        )
        result = SerialRuntime().run(program)
        assert result.elapsed_cycles >= 500


class TestRuntimeRegistry:
    def test_registry_contains_all_five_models(self):
        assert set(RUNTIMES) == {"serial", "nanos-sw", "nanos-rv", "nanos-axi",
                                 "phentos"}

    def test_registry_names_match_class_attribute(self):
        for name, cls in RUNTIMES.items():
            assert cls.name == name


@pytest.mark.parametrize("runtime_cls", ALL_PARALLEL_RUNTIMES)
class TestAllParallelRuntimes:
    def test_executes_every_task_of_independent_program(self, runtime_cls,
                                                         four_core_config):
        program = make_independent_program(num_tasks=12, payload=400)
        executed = []
        tasks = [
            Task(index=t.index, payload_cycles=t.payload_cycles,
                 dependences=t.dependences,
                 kernel=lambda i=t.index: executed.append(i))
            for t in program.tasks
        ]
        program = TaskProgram(name="tracked", tasks=tasks)
        result = runtime_cls(four_core_config).run(program, num_workers=4)
        assert sorted(executed) == list(range(12))
        assert result.tasks_executed == 12
        assert result.elapsed_cycles > 0

    def test_chain_preserves_order(self, runtime_cls, four_core_config):
        order = []
        base = make_chain_program(num_tasks=8, payload=100)
        tasks = [
            Task(index=t.index, payload_cycles=t.payload_cycles,
                 dependences=t.dependences,
                 kernel=lambda i=t.index: order.append(i))
            for t in base.tasks
        ]
        program = TaskProgram(name="ordered-chain", tasks=tasks)
        runtime_cls(four_core_config).run(program, num_workers=4)
        assert order == list(range(8))

    def test_fork_join_respects_dependences(self, runtime_cls,
                                            four_core_config):
        events = []
        base = make_fork_join_program(width=4, payload=200)
        tasks = [
            Task(index=t.index, payload_cycles=t.payload_cycles,
                 dependences=t.dependences,
                 kernel=lambda i=t.index: events.append(i))
            for t in base.tasks
        ]
        program = TaskProgram(name="fork-join-tracked", tasks=tasks)
        runtime_cls(four_core_config).run(program, num_workers=4)
        assert events[0] == 0                       # producer first
        assert events[-1] == len(tasks) - 1         # reducer last
        assert set(events) == set(range(len(tasks)))

    def test_taskwait_barrier_orders_phases(self, runtime_cls,
                                            four_core_config):
        events = []
        tasks = []
        for index in range(6):
            tasks.append(Task(
                index=index, payload_cycles=150,
                dependences=(out_dep(0xC000_0000 + 4096 * index),),
                kernel=lambda i=index: events.append(i),
            ))
        program = TaskProgram(name="two-phases", tasks=tasks,
                              taskwait_after={2})
        runtime_cls(four_core_config).run(program, num_workers=4)
        first_phase = set(events[:3])
        second_phase = set(events[3:])
        assert first_phase == {0, 1, 2}
        assert second_phase == {3, 4, 5}

    def test_single_worker_run_completes(self, runtime_cls, four_core_config):
        program = make_independent_program(num_tasks=6, payload=300)
        result = runtime_cls(four_core_config).run(program, num_workers=1)
        assert result.num_cores == 1
        assert result.elapsed_cycles > program.total_payload_cycles


class TestRelativePerformance:
    """The orderings the paper's evaluation hinges on."""

    @pytest.fixture(scope="class")
    def results(self):
        config = SimConfig(max_cycles=500_000_000).with_cores(4)
        program = make_independent_program(num_tasks=24, payload=3000)
        out = {}
        for name in ("serial", "nanos-sw", "nanos-rv", "phentos"):
            runtime = RUNTIMES[name](config)
            out[name] = runtime.run(
                program, num_workers=1 if name == "serial" else 4
            )
        return out

    def test_phentos_faster_than_nanos_rv(self, results):
        assert results["phentos"].elapsed_cycles < \
            results["nanos-rv"].elapsed_cycles

    def test_nanos_rv_faster_than_nanos_sw(self, results):
        assert results["nanos-rv"].elapsed_cycles < \
            results["nanos-sw"].elapsed_cycles

    def test_phentos_achieves_parallel_speedup(self, results):
        assert results["phentos"].speedup_vs_serial > 2.0

    def test_utilization_bounded_by_one(self, results):
        for result in results.values():
            assert 0.0 <= result.utilization <= 1.0


class TestPhentosSpecifics:
    def test_role_switching_survives_reservation_station_pressure(self):
        """More in-flight tasks than Picos capacity with a single worker.

        Without the paper's role-switching (Section IV-C) the main thread
        would spin forever on failing submissions; with it the run finishes.
        """
        config = SimConfig(max_cycles=2_000_000_000).with_cores(1)
        capacity = config.costs.picos.max_in_flight_tasks
        program = make_independent_program(num_tasks=capacity + 40, payload=50,
                                           name="overflow")
        result = PhentosRuntime(config).run(program, num_workers=1)
        assert result.tasks_executed == capacity + 40

    def test_metadata_element_size_follows_dependence_count(self):
        config = SimConfig().with_cores(2)
        runtime = PhentosRuntime(config)
        small = make_chain_program(num_tasks=4, payload=10, num_deps=7,
                                   name="small-deps")
        large = make_chain_program(num_tasks=4, payload=10, num_deps=15,
                                   name="large-deps")
        # Run both; the large-dependence program must still complete (two
        # cache-line metadata elements) and take at least as long per task.
        result_small = runtime.run(small, num_workers=2)
        result_large = PhentosRuntime(config).run(large, num_workers=2)
        assert result_large.elapsed_cycles > result_small.elapsed_cycles


class TestNanosSpecifics:
    def test_nanos_sw_runs_without_picos_hardware(self, four_core_config):
        program = make_independent_program(num_tasks=8, payload=100)
        runtime = NanosSWRuntime(four_core_config)
        soc = runtime.build_soc(4)
        assert soc.picos is None
        result = runtime.run(program, num_workers=4)
        assert result.tasks_executed == 8

    def test_nanos_axi_builds_soc_without_rocc_path(self, four_core_config):
        runtime = NanosAXIRuntime(four_core_config)
        soc = runtime.build_soc(4)
        assert soc.picos is not None
        assert soc.manager is None

    def test_nanos_overhead_dominates_fine_grained_tasks(self,
                                                         four_core_config):
        program = make_independent_program(num_tasks=10, payload=100,
                                           name="tiny-tasks")
        serial = SerialRuntime(four_core_config).run(program)
        nanos = NanosSWRuntime(four_core_config).run(program, num_workers=4)
        # Fine-grained tasks under Nanos-SW are far slower than serial.
        assert nanos.elapsed_cycles > 10 * serial.elapsed_cycles
