"""Tests for the RoCC instruction format and the task-scheduling ISA."""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.cpu.rocc import (
    CUSTOM0,
    CUSTOM1,
    FAILURE_FLAG,
    RoccCommand,
    RoccInstruction,
    RoccResponse,
    TaskSchedulingFunct,
)


class TestInstructionEncoding:
    def test_figure1_field_layout(self):
        """The bit positions must follow Figure 1 of the paper."""
        instruction = RoccInstruction(
            funct7=0x7F, rs2=0x1F, rs1=0x1F, xd=True, xs1=True, xs2=True,
            rd=0x1F, opcode=CUSTOM0,
        )
        word = instruction.encode()
        assert word & 0x7F == CUSTOM0
        assert (word >> 7) & 0x1F == 0x1F          # rd
        assert (word >> 12) & 0x1 == 1             # xs2
        assert (word >> 13) & 0x1 == 1             # xs1
        assert (word >> 14) & 0x1 == 1             # xd
        assert (word >> 15) & 0x1F == 0x1F         # rs1
        assert (word >> 20) & 0x1F == 0x1F         # rs2
        assert (word >> 25) & 0x7F == 0x7F         # funct7

    def test_encode_decode_roundtrip(self):
        original = RoccInstruction(funct7=0x12, rs2=3, rs1=7, xd=True,
                                   xs1=True, xs2=False, rd=11, opcode=CUSTOM1)
        assert RoccInstruction.decode(original.encode()) == original

    def test_decode_rejects_non_custom_opcode(self):
        # 0b0110011 is the standard OP opcode, not a RoCC custom opcode.
        with pytest.raises(ProtocolError):
            RoccInstruction.decode(0b0110011)

    def test_out_of_range_fields_rejected(self):
        with pytest.raises(ProtocolError):
            RoccInstruction(funct7=128, rs2=0, rs1=0, xd=False, xs1=False,
                            xs2=False, rd=0)
        with pytest.raises(ProtocolError):
            RoccInstruction(funct7=0, rs2=32, rs1=0, xd=False, xs1=False,
                            xs2=False, rd=0)
        with pytest.raises(ProtocolError):
            RoccInstruction(funct7=0, rs2=0, rs1=0, xd=False, xs1=False,
                            xs2=False, rd=0, opcode=0b0000011)

    def test_for_funct_sets_operand_flags(self):
        submit3 = RoccInstruction.for_funct(
            TaskSchedulingFunct.SUBMIT_THREE_PACKETS)
        assert submit3.xs1 and submit3.xs2 and submit3.xd
        fetch = RoccInstruction.for_funct(TaskSchedulingFunct.FETCH_SW_ID)
        assert not fetch.xs1 and not fetch.xs2 and fetch.xd
        retire = RoccInstruction.for_funct(TaskSchedulingFunct.RETIRE_TASK)
        assert retire.xs1 and not retire.xs2 and not retire.xd


class TestTaskSchedulingFunct:
    def test_table1_lists_exactly_seven_instructions(self):
        assert len(TaskSchedulingFunct) == 7
        names = {funct.name for funct in TaskSchedulingFunct}
        assert names == {
            "SUBMISSION_REQUEST", "SUBMIT_PACKET", "SUBMIT_THREE_PACKETS",
            "READY_TASK_REQUEST", "FETCH_SW_ID", "FETCH_PICOS_ID",
            "RETIRE_TASK",
        }

    def test_only_retire_task_is_blocking(self):
        blocking = [f for f in TaskSchedulingFunct if f.is_blocking]
        assert blocking == [TaskSchedulingFunct.RETIRE_TASK]

    def test_operand_usage(self):
        assert TaskSchedulingFunct.SUBMIT_THREE_PACKETS.uses_rs2
        assert not TaskSchedulingFunct.SUBMIT_PACKET.uses_rs2
        assert not TaskSchedulingFunct.RETIRE_TASK.uses_rd
        assert TaskSchedulingFunct.READY_TASK_REQUEST.uses_rd
        assert not TaskSchedulingFunct.READY_TASK_REQUEST.uses_rs1


class TestCommandsAndResponses:
    def test_command_validates_64bit_operands(self):
        RoccCommand(TaskSchedulingFunct.SUBMIT_PACKET, rs1_value=(1 << 64) - 1)
        with pytest.raises(ProtocolError):
            RoccCommand(TaskSchedulingFunct.SUBMIT_PACKET, rs1_value=1 << 64)
        with pytest.raises(ProtocolError):
            RoccCommand(TaskSchedulingFunct.SUBMIT_PACKET, rs2_value=-1)

    def test_failure_response_uses_flag_value(self):
        failure = RoccResponse.failure()
        assert failure.failed
        assert failure.value == FAILURE_FLAG
        success = RoccResponse(value=7)
        assert success.success and not success.failed
