"""Tests for the application-facing task model (Task, TaskProgram)."""

from __future__ import annotations

import pytest

from repro.common.errors import WorkloadError
from repro.picos.packets import Direction
from repro.runtime.task import (
    Task,
    TaskProgram,
    dependence,
    in_dep,
    inout_dep,
    out_dep,
)

A, B, C = 0x1000, 0x2000, 0x3000


class TestTask:
    def test_dependence_helpers(self):
        assert in_dep(A).direction is Direction.IN
        assert out_dep(A).direction is Direction.OUT
        assert inout_dep(A).direction is Direction.INOUT
        assert dependence(A, Direction.IN) == in_dep(A)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            Task(index=-1, payload_cycles=0)
        with pytest.raises(WorkloadError):
            Task(index=0, payload_cycles=-1)
        with pytest.raises(WorkloadError):
            Task(index=0, payload_cycles=0,
                 dependences=tuple(out_dep(64 * i) for i in range(16)))

    def test_kernel_invocation(self):
        seen = []
        task = Task(index=0, payload_cycles=10, kernel=lambda: seen.append(1))
        task.run_kernel()
        assert seen == [1]
        Task(index=1, payload_cycles=10).run_kernel()  # no kernel: no-op


class TestTaskProgramValidation:
    def test_indices_must_match_positions(self):
        with pytest.raises(WorkloadError):
            TaskProgram(name="bad", tasks=[Task(index=1, payload_cycles=1)])

    def test_taskwait_indices_checked(self):
        with pytest.raises(WorkloadError):
            TaskProgram(name="bad",
                        tasks=[Task(index=0, payload_cycles=1)],
                        taskwait_after={5})

    def test_name_required(self):
        with pytest.raises(WorkloadError):
            TaskProgram(name="", tasks=[])

    def test_negative_serial_sections_rejected(self):
        with pytest.raises(WorkloadError):
            TaskProgram(name="p", tasks=[], serial_sections_cycles=-1)


class TestTaskProgramMetrics:
    def make_program(self):
        tasks = [
            Task(index=0, payload_cycles=100, dependences=(out_dep(A),)),
            Task(index=1, payload_cycles=200,
                 dependences=(in_dep(A), out_dep(B))),
            Task(index=2, payload_cycles=300,
                 dependences=(in_dep(A), out_dep(C))),
            Task(index=3, payload_cycles=100,
                 dependences=(in_dep(B), in_dep(C))),
        ]
        return TaskProgram(name="diamond", tasks=tasks,
                           serial_sections_cycles=50)

    def test_totals_and_means(self):
        program = self.make_program()
        assert program.num_tasks == 4
        assert program.total_payload_cycles == 700
        assert program.serial_cycles == 750
        assert program.mean_task_cycles == pytest.approx(175.0)
        assert program.max_dependences == 2

    def test_critical_path_of_diamond(self):
        program = self.make_program()
        # 100 (producer) + 300 (slow branch) + 100 (join) + 50 serial = 550.
        assert program.critical_path_cycles() == 550

    def test_ideal_speedup_bounded_by_dag_and_cores(self):
        program = self.make_program()
        ideal = program.ideal_speedup(8)
        assert ideal == pytest.approx(750 / 550)
        wide = TaskProgram(
            name="wide",
            tasks=[Task(index=i, payload_cycles=100,
                        dependences=(out_dep(0x9000 + 64 * i),))
                   for i in range(64)],
        )
        assert wide.ideal_speedup(8) == pytest.approx(8.0)

    def test_phases_split_at_taskwaits(self):
        tasks = [Task(index=i, payload_cycles=10) for i in range(6)]
        program = TaskProgram(name="phased", tasks=tasks,
                              taskwait_after={1, 3})
        phases = program.phases()
        assert [len(phase) for phase in phases] == [2, 2, 2]

    def test_critical_path_respects_taskwait_barriers(self):
        # Two independent tasks separated by a taskwait cannot overlap.
        tasks = [
            Task(index=0, payload_cycles=100, dependences=(out_dep(A),)),
            Task(index=1, payload_cycles=100, dependences=(out_dep(B),)),
        ]
        with_barrier = TaskProgram(name="barrier", tasks=list(tasks),
                                   taskwait_after={0})
        without_barrier = TaskProgram(name="free", tasks=list(tasks))
        assert with_barrier.critical_path_cycles() == 200
        assert without_barrier.critical_path_cycles() == 100

    def test_empty_program_metrics(self):
        program = TaskProgram(name="empty", tasks=[])
        assert program.mean_task_cycles == 0.0
        assert program.critical_path_cycles() == 0
        assert program.ideal_speedup(8) == 1.0

    def test_chain_critical_path_equals_serial(self):
        tasks = [
            Task(index=i, payload_cycles=50, dependences=(inout_dep(A),))
            for i in range(10)
        ]
        program = TaskProgram(name="chain", tasks=tasks)
        assert program.critical_path_cycles() == 500
        assert program.ideal_speedup(8) == pytest.approx(1.0)
