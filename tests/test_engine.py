"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.common.errors import DeadlockError, SimulationError
from repro.sim.engine import (
    Delay,
    Engine,
    Fork,
    Get,
    Join,
    Put,
    Wait,
)
from repro.sim.queues import DecoupledQueue


def test_delay_advances_time():
    engine = Engine()

    def proc():
        yield Delay(10)
        yield Delay(5)
        return engine.now

    process = engine.spawn(proc())
    engine.run()
    assert process.finished
    assert process.result == 15
    assert engine.now == 15


def test_zero_delay_is_allowed():
    engine = Engine()

    def proc():
        yield Delay(0)
        return "done"

    process = engine.spawn(proc())
    engine.run()
    assert process.result == "done"
    assert engine.now == 0


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Delay(-1)


def test_processes_interleave_by_time():
    engine = Engine()
    order = []

    def proc(name, delay):
        yield Delay(delay)
        order.append((engine.now, name))

    engine.spawn(proc("slow", 20))
    engine.spawn(proc("fast", 5))
    engine.spawn(proc("medium", 10))
    engine.run()
    assert order == [(5, "fast"), (10, "medium"), (20, "slow")]


def test_event_wait_and_trigger():
    engine = Engine()
    event = engine.event("go")
    results = []

    def waiter():
        value = yield Wait(event)
        results.append((engine.now, value))

    def trigger():
        yield Delay(7)
        event.trigger("payload")

    engine.spawn(waiter())
    engine.spawn(trigger())
    engine.run()
    assert results == [(7, "payload")]
    assert event.triggered
    assert event.value == "payload"


def test_event_double_trigger_raises():
    engine = Engine()
    event = engine.event()
    event.trigger(1)
    with pytest.raises(SimulationError):
        event.trigger(2)


def test_wait_on_already_triggered_event_returns_immediately():
    engine = Engine()
    event = engine.event()
    event.trigger(42)

    def proc():
        value = yield Wait(event)
        return value

    process = engine.spawn(proc())
    engine.run()
    assert process.result == 42


def test_event_callback_runs_on_trigger_and_immediately_if_late():
    engine = Engine()
    event = engine.event()
    seen = []
    event.add_callback(seen.append)
    event.trigger("early")
    event.add_callback(seen.append)
    assert seen == ["early", "early"]


def test_fork_and_join():
    engine = Engine()

    def child(n):
        yield Delay(n)
        return n * 2

    def parent():
        first = yield Fork(child(5), "c5")
        second = yield Fork(child(3), "c3")
        a = yield Join(first)
        b = yield Join(second)
        return a + b

    process = engine.spawn(parent())
    engine.run()
    assert process.result == 16
    assert engine.now == 5


def test_join_on_finished_process_returns_result():
    engine = Engine()

    def quick():
        yield Delay(1)
        return "done"

    def parent(child_proc):
        yield Delay(10)
        result = yield Join(child_proc)
        return result

    child_process = engine.spawn(quick())
    parent_process = engine.spawn(parent(child_process))
    engine.run()
    assert parent_process.result == "done"


def test_yield_from_composes_subgenerators():
    engine = Engine()

    def sub(n):
        yield Delay(n)
        return n + 1

    def main():
        a = yield from sub(3)
        b = yield from sub(4)
        return a + b

    process = engine.spawn(main())
    engine.run()
    assert process.result == 9
    assert engine.now == 7


def test_yielding_non_command_raises():
    engine = Engine()

    def bad():
        yield 42

    engine.spawn(bad())
    with pytest.raises(SimulationError):
        engine.run()


def test_deadlock_detection_reports_blocked_process():
    engine = Engine()
    event = engine.event("never")

    def stuck():
        yield Wait(event)

    engine.spawn(stuck(), name="stuck_process")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    assert "stuck_process" in str(excinfo.value)


def test_daemon_processes_do_not_count_as_deadlock():
    engine = Engine()
    queue = DecoupledQueue(engine, 4)

    def daemon():
        while True:
            yield Get(queue)

    def worker():
        yield Delay(3)
        return "ok"

    engine.spawn(daemon(), name="hw", daemon=True)
    process = engine.spawn(worker())
    engine.run()
    assert process.result == "ok"


def test_run_until_complete_stops_at_watched_processes():
    engine = Engine()
    queue = DecoupledQueue(engine, 4)

    def daemon():
        while True:
            yield Get(queue)
            yield Delay(1)

    def worker():
        yield Put(queue, 1)
        yield Delay(5)
        return "finished"

    engine.spawn(daemon(), name="daemon", daemon=True)
    worker_process = engine.spawn(worker())
    elapsed = engine.run_until_complete([worker_process])
    assert worker_process.finished
    assert elapsed == 5


def test_run_until_complete_detects_deadlock_of_watched():
    engine = Engine()
    event = engine.event("never")

    def stuck():
        yield Wait(event)

    process = engine.spawn(stuck(), name="stuck")
    with pytest.raises(DeadlockError):
        engine.run_until_complete([process])


def test_max_cycles_guard():
    engine = Engine(max_cycles=100)

    def runaway():
        while True:
            yield Delay(10)

    engine.spawn(runaway())
    with pytest.raises(SimulationError):
        engine.run()


def test_run_until_horizon_pauses_and_resumes():
    engine = Engine()

    def proc():
        yield Delay(50)
        return "late"

    process = engine.spawn(proc())
    engine.run(until=10)
    assert not process.finished
    assert engine.now == 10
    engine.run()
    assert process.finished


def test_schedule_callback_runs_at_requested_time():
    engine = Engine()
    fired = []
    engine.schedule_callback(25, lambda: fired.append(engine.now))

    def proc():
        yield Delay(100)

    engine.spawn(proc())
    engine.run()
    assert fired == [25]


def test_completion_event_carries_return_value():
    engine = Engine()

    def proc():
        yield Delay(2)
        return {"answer": 42}

    process = engine.spawn(proc())
    engine.run()
    assert process.completion.triggered
    assert process.completion.value == {"answer": 42}


def test_engine_rejects_bad_max_cycles():
    with pytest.raises(SimulationError):
        Engine(max_cycles=0)


def test_trace_log_records_when_enabled():
    engine = Engine(trace=True)

    def proc():
        yield Delay(1)

    engine.spawn(proc(), name="traced")
    engine.run()
    assert any("traced" in line for line in engine.trace_log)
