"""An always-failing workload: the crash-injection smoke plugin.

CI loads this through ``--plugin tests/plugins/poison_workload.py`` and
sweeps it next to a healthy workload: under ``--keep-going`` the sweep
must complete every other unit and report exactly one failure; without it
the sweep must exit non-zero naming the poisoned unit.
"""

from repro.registry import register_workload


@register_workload("poison", tags=("smoke",),
                   description="Always-failing workload (crash-injection "
                               "smoke)")
def poison_program(**params):
    """Raise unconditionally — this workload never builds a program."""
    raise RuntimeError("poisoned unit (injected failure for the crash "
                       "smoke)")
