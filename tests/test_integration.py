"""End-to-end integration tests across applications, runtimes and harness.

These tests exercise the whole stack the way the benchmark harness does, but
on small instances: every runtime must execute the real numpy kernels of the
applications in an order consistent with the annotated dependences (so the
numerical results equal the serial reference), and the relative-performance
structure the paper reports must be visible even at small scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.blackscholes import (
    BlackscholesData,
    blackscholes_program,
    blackscholes_reference,
)
from repro.apps.jacobi import jacobi_program, jacobi_reference
from repro.apps.stream import stream_program, stream_reference
from repro.common.config import SimConfig
from repro.runtime import (
    NanosRVRuntime,
    NanosSWRuntime,
    PhentosRuntime,
    SerialRuntime,
)

RUNTIME_CLASSES = [SerialRuntime, NanosSWRuntime, NanosRVRuntime,
                   PhentosRuntime]


@pytest.fixture
def config():
    return SimConfig(max_cycles=500_000_000).with_cores(4)


@pytest.mark.parametrize("runtime_cls", RUNTIME_CLASSES)
class TestKernelCorrectnessAcrossRuntimes:
    """Any dependence-respecting schedule must give the serial answer."""

    def test_blackscholes_prices_match_reference(self, runtime_cls, config):
        data = BlackscholesData(128)
        expected = blackscholes_reference(BlackscholesData(128))
        program = blackscholes_program("128", block_size=16,
                                       with_kernels=True, data=data)
        runtime_cls(config).run(program, num_workers=4)
        np.testing.assert_allclose(data.prices, expected, rtol=1e-10)

    def test_jacobi_iterates_match_reference(self, runtime_cls, config):
        iterations = 3
        program = jacobi_program(grid_blocks=4, block_factor=1,
                                 iterations=iterations, with_kernels=True)
        state = program.parameters["state"]
        expected = jacobi_reference(state["buffers"][0].copy(),
                                    state["source"].copy(), iterations)
        runtime_cls(config).run(program, num_workers=4)
        result = state["buffers"][program.parameters["result_buffer"]]
        np.testing.assert_allclose(result[1:-1], expected[1:-1], rtol=1e-10)

    def test_stream_deps_matches_reference(self, runtime_cls, config):
        iterations = 2
        program = stream_program(4, 32, iterations=iterations,
                                 use_dependences=True, with_kernels=True)
        state = program.parameters["state"]
        expected = stream_reference(state["a"], state["b"], state["c"],
                                    iterations)
        runtime_cls(config).run(program, num_workers=4)
        for name, reference in zip(("a", "b", "c"), expected):
            np.testing.assert_allclose(state[name], reference, rtol=1e-12)


class TestCrossRuntimeStructure:
    """Small-scale version of the paper's performance structure."""

    @pytest.fixture(scope="class")
    def blackscholes_results(self):
        config = SimConfig(max_cycles=500_000_000).with_cores(4)
        program = blackscholes_program("1024", block_size=16)
        results = {}
        for cls in RUNTIME_CLASSES:
            runtime = cls(config)
            results[cls.name] = runtime.run(
                program, num_workers=1 if cls is SerialRuntime else 4
            )
        return results

    def test_ranking_matches_paper(self, blackscholes_results):
        results = blackscholes_results
        assert results["phentos"].elapsed_cycles \
            < results["nanos-rv"].elapsed_cycles \
            < results["nanos-sw"].elapsed_cycles

    def test_phentos_beats_serial_at_fine_granularity(self,
                                                      blackscholes_results):
        results = blackscholes_results
        assert results["phentos"].elapsed_cycles \
            < results["serial"].elapsed_cycles

    def test_every_runtime_reports_full_stats(self, blackscholes_results):
        for name, result in blackscholes_results.items():
            assert result.tasks_executed == 64
            assert result.stats, f"{name} produced no statistics"
            assert result.busy_cycles > 0

    def test_hw_runtimes_touch_picos(self, blackscholes_results):
        for name in ("nanos-rv", "phentos"):
            stats = blackscholes_results[name].stats
            assert stats.get("picos.tasks_accepted") == 64
            assert stats.get("picos.tasks_retired") == 64

    def test_nanos_sw_never_touches_picos(self, blackscholes_results):
        stats = blackscholes_results["nanos-sw"].stats
        assert not any(key.startswith("picos.") for key in stats)


class TestScalingWithCores:
    def test_phentos_scales_with_core_count(self):
        program = blackscholes_program("2048", block_size=32)
        elapsed = {}
        for cores in (1, 2, 4, 8):
            config = SimConfig(max_cycles=500_000_000).with_cores(cores)
            result = PhentosRuntime(config).run(program, num_workers=cores)
            elapsed[cores] = result.elapsed_cycles
        assert elapsed[2] < elapsed[1]
        assert elapsed[4] < elapsed[2]
        assert elapsed[8] < elapsed[4]
        # Speedup from 1 to 8 workers is substantial but below linear
        # (memory-path contention), as in the paper.
        ratio = elapsed[1] / elapsed[8]
        assert 3.0 < ratio <= 8.0

    def test_nanos_sw_does_not_scale_for_fine_tasks(self):
        program = blackscholes_program("512", block_size=8, )
        config1 = SimConfig(max_cycles=500_000_000).with_cores(1)
        config8 = SimConfig(max_cycles=500_000_000).with_cores(8)
        one = NanosSWRuntime(config1).run(program, num_workers=1)
        eight = NanosSWRuntime(config8).run(program, num_workers=8)
        # Adding cores barely helps when the software runtime is the
        # bottleneck (scheduling throughput, not compute, limits progress).
        assert eight.elapsed_cycles > one.elapsed_cycles / 2
